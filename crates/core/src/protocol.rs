//! The four synchronization protocols and their static properties.
//!
//! A synchronization protocol governs *when* an instance of subtask
//! `T_{i,j+1}` may be released once the corresponding instance of
//! `T_{i,j}` has completed (§3 of the paper):
//!
//! * [`Protocol::DirectSync`] — release immediately on the completion
//!   signal.
//! * [`Protocol::PhaseModification`] — release strictly periodically at
//!   phase `f_i + Σ_{k<j} R_{i,k}` (needs clock synchronization and
//!   strictly periodic first subtasks).
//! * [`Protocol::ModifiedPhaseModification`] — the predecessor's host sets
//!   a timer `R_{i,j}` after each release and signals at the timer; works
//!   off local clocks.
//! * [`Protocol::ReleaseGuard`] — release at
//!   `max(signal time, release guard)`; see [`crate::release_guard`].
//!
//! The protocol-behavioral machinery lives in the simulator crate; this
//! module captures the protocol identity plus the implementation-complexity
//! facts of §3.3 (interrupt support, per-subtask state, interrupts per
//! instance) which the paper tabulates and we encode as tested constants.

use std::fmt;

/// A synchronization protocol identity.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Protocol {
    /// Direct Synchronization (DS).
    DirectSync,
    /// Phase Modification (PM), after Bettati.
    PhaseModification,
    /// Modified Phase Modification (MPM).
    ModifiedPhaseModification,
    /// Release Guard (RG).
    ReleaseGuard,
}

impl Protocol {
    /// All four protocols, in the paper's order of presentation.
    pub const ALL: [Protocol; 4] = [
        Protocol::DirectSync,
        Protocol::PhaseModification,
        Protocol::ModifiedPhaseModification,
        Protocol::ReleaseGuard,
    ];

    /// Short uppercase tag, e.g. `"DS"`.
    pub fn tag(self) -> &'static str {
        match self {
            Protocol::DirectSync => "DS",
            Protocol::PhaseModification => "PM",
            Protocol::ModifiedPhaseModification => "MPM",
            Protocol::ReleaseGuard => "RG",
        }
    }

    /// `true` if the protocol needs inter-processor synchronization-signal
    /// interrupt support (§3.3).
    pub fn needs_sync_interrupt(self) -> bool {
        !matches!(self, Protocol::PhaseModification)
    }

    /// `true` if the protocol needs timer interrupt support (§3.3).
    pub fn needs_timer_interrupt(self) -> bool {
        !matches!(self, Protocol::DirectSync)
    }

    /// `true` if the protocol requires a centralized clock or strict global
    /// clock synchronization (§3.1: only PM does).
    pub fn needs_clock_sync(self) -> bool {
        matches!(self, Protocol::PhaseModification)
    }

    /// Number of per-subtask scheduler variables the protocol maintains
    /// (§3.3): PM/MPM store the response-time bound, RG stores the release
    /// guard, DS stores nothing.
    pub fn variables_per_subtask(self) -> usize {
        match self {
            Protocol::DirectSync => 0,
            Protocol::PhaseModification
            | Protocol::ModifiedPhaseModification
            | Protocol::ReleaseGuard => 1,
        }
    }

    /// Number of interrupts per subtask instance (§3.3): one for DS and PM,
    /// two for MPM and RG.
    pub fn interrupts_per_instance(self) -> usize {
        match self {
            Protocol::DirectSync | Protocol::PhaseModification => 1,
            Protocol::ModifiedPhaseModification | Protocol::ReleaseGuard => 2,
        }
    }

    /// `true` if the scheduler needs *global* load information (response
    /// bounds of subtasks on other processors) to operate — the key
    /// operational drawback of PM and MPM (§3.1) that RG avoids.
    pub fn needs_global_load_information(self) -> bool {
        matches!(
            self,
            Protocol::PhaseModification | Protocol::ModifiedPhaseModification
        )
    }

    /// `true` if subtasks released under this protocol are strictly
    /// periodic inside every busy period, i.e. Algorithm SA/PM bounds
    /// apply (PM, MPM and — via the paper's Theorem 1 — RG).
    pub fn busy_period_analysis_applies(self) -> bool {
        !matches!(self, Protocol::DirectSync)
    }
}

impl fmt::Display for Protocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Protocol::DirectSync => "direct synchronization",
            Protocol::PhaseModification => "phase modification",
            Protocol::ModifiedPhaseModification => "modified phase modification",
            Protocol::ReleaseGuard => "release guard",
        };
        write!(f, "{name}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn section_3_3_interrupt_table() {
        use Protocol::*;
        // "The DS protocol only requires the synchronization interrupt
        // support; the PM protocol requires the timer interrupt support;
        // and the MPM and RG protocols require both."
        assert!(DirectSync.needs_sync_interrupt());
        assert!(!DirectSync.needs_timer_interrupt());
        assert!(!PhaseModification.needs_sync_interrupt());
        assert!(PhaseModification.needs_timer_interrupt());
        for p in [ModifiedPhaseModification, ReleaseGuard] {
            assert!(p.needs_sync_interrupt());
            assert!(p.needs_timer_interrupt());
        }
    }

    #[test]
    fn section_3_3_state_and_interrupt_counts() {
        use Protocol::*;
        // "the PM and MPM protocol need one variable for each subtask …
        // the RG protocol needs one … The DS protocol does not need any."
        assert_eq!(DirectSync.variables_per_subtask(), 0);
        assert_eq!(PhaseModification.variables_per_subtask(), 1);
        assert_eq!(ModifiedPhaseModification.variables_per_subtask(), 1);
        assert_eq!(ReleaseGuard.variables_per_subtask(), 1);
        // "In the case of the DS and PM protocols, there is one interrupt
        // per instance … MPM and RG … two interrupts."
        assert_eq!(DirectSync.interrupts_per_instance(), 1);
        assert_eq!(PhaseModification.interrupts_per_instance(), 1);
        assert_eq!(ModifiedPhaseModification.interrupts_per_instance(), 2);
        assert_eq!(ReleaseGuard.interrupts_per_instance(), 2);
    }

    #[test]
    fn clock_and_load_requirements() {
        use Protocol::*;
        assert!(PhaseModification.needs_clock_sync());
        for p in [DirectSync, ModifiedPhaseModification, ReleaseGuard] {
            assert!(!p.needs_clock_sync());
        }
        assert!(PhaseModification.needs_global_load_information());
        assert!(ModifiedPhaseModification.needs_global_load_information());
        assert!(!ReleaseGuard.needs_global_load_information());
        assert!(!DirectSync.needs_global_load_information());
    }

    #[test]
    fn analysis_dispatch_property() {
        assert!(!Protocol::DirectSync.busy_period_analysis_applies());
        assert!(Protocol::ReleaseGuard.busy_period_analysis_applies());
        assert!(Protocol::PhaseModification.busy_period_analysis_applies());
    }

    #[test]
    fn tags_and_display() {
        assert_eq!(Protocol::DirectSync.tag(), "DS");
        assert_eq!(Protocol::PhaseModification.tag(), "PM");
        assert_eq!(Protocol::ModifiedPhaseModification.tag(), "MPM");
        assert_eq!(Protocol::ReleaseGuard.tag(), "RG");
        assert_eq!(Protocol::ReleaseGuard.to_string(), "release guard");
        assert_eq!(Protocol::ALL.len(), 4);
    }
}
