//! A plain-text format for describing distributed task sets.
//!
//! The format is line-oriented; `#` starts a comment. One `processors`
//! line, an optional `priorities` line, then `task` blocks whose indented
//! (or not — indentation is cosmetic) `subtask` lines form the chain:
//!
//! ```text
//! # Example 2 of Sun & Liu 1996
//! processors 2
//! priorities explicit        # explicit | pdm | dm | rm
//!
//! task period=4
//!   subtask proc=0 exec=2 prio=0
//!
//! task period=6
//!   subtask proc=0 exec=2 prio=1
//!   subtask proc=1 exec=3 prio=0
//!
//! task period=6 phase=4     # deadline defaults to the period
//!   subtask proc=1 exec=2 prio=1
//! ```
//!
//! With `priorities pdm` (or `dm` / `rm`) the `prio=` fields are omitted
//! and priorities are assigned by the named policy
//! ([`crate::priority`]). All quantities are integer ticks.
//!
//! # Examples
//!
//! ```
//! use rtsync_core::textfmt::{parse, to_text};
//! use rtsync_core::examples::example2;
//!
//! let text = to_text(&example2());
//! let parsed = parse(&text)?;
//! assert_eq!(parsed, example2());
//! # Ok::<(), rtsync_core::textfmt::ParseTaskSetError>(())
//! ```

use std::error::Error;
use std::fmt;
use std::fmt::Write as _;

use crate::error::ValidateTaskSetError;
use crate::priority::{
    build_with_policy, ChainSpec, DeadlineMonotonic, ProportionalDeadlineMonotonic, RateMonotonic,
};
use crate::task::{Priority, TaskSet};
use crate::time::{Dur, Time};

/// An error while parsing the text format.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ParseTaskSetError {
    /// A line could not be understood; carries the 1-based line number and
    /// a description.
    Syntax {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// The described system failed task-set validation.
    Invalid(ValidateTaskSetError),
}

impl ParseTaskSetError {
    fn syntax(line: usize, message: impl Into<String>) -> ParseTaskSetError {
        ParseTaskSetError::Syntax {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseTaskSetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseTaskSetError::Syntax { line, message } => {
                write!(f, "line {line}: {message}")
            }
            ParseTaskSetError::Invalid(e) => write!(f, "invalid task set: {e}"),
        }
    }
}

impl Error for ParseTaskSetError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ParseTaskSetError::Invalid(e) => Some(e),
            ParseTaskSetError::Syntax { .. } => None,
        }
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum PriorityMode {
    Explicit,
    Pdm,
    Dm,
    Rm,
}

#[derive(Debug)]
struct PendingTask {
    chain: ChainSpec,
    priorities: Vec<Option<Priority>>,
}

/// Parses the text format into a validated [`TaskSet`].
///
/// # Errors
///
/// [`ParseTaskSetError::Syntax`] with a line number for malformed input;
/// [`ParseTaskSetError::Invalid`] if the described system violates a model
/// invariant (duplicate priorities, consecutive subtasks sharing a
/// processor, …).
pub fn parse(text: &str) -> Result<TaskSet, ParseTaskSetError> {
    let mut processors: Option<usize> = None;
    let mut mode = PriorityMode::Explicit;
    let mut tasks: Vec<PendingTask> = Vec::new();

    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut words = line.split_whitespace();
        let keyword = words.next().expect("non-empty line has a first word");
        match keyword {
            "processors" => {
                let value = words.next().ok_or_else(|| {
                    ParseTaskSetError::syntax(line_no, "processors needs a count")
                })?;
                let n: usize = value.parse().map_err(|e| {
                    ParseTaskSetError::syntax(line_no, format!("bad processor count: {e}"))
                })?;
                if processors.replace(n).is_some() {
                    return Err(ParseTaskSetError::syntax(
                        line_no,
                        "duplicate processors line",
                    ));
                }
            }
            "priorities" => {
                let value = words.next().ok_or_else(|| {
                    ParseTaskSetError::syntax(line_no, "priorities needs a policy name")
                })?;
                mode = match value {
                    "explicit" => PriorityMode::Explicit,
                    "pdm" => PriorityMode::Pdm,
                    "dm" => PriorityMode::Dm,
                    "rm" => PriorityMode::Rm,
                    other => {
                        return Err(ParseTaskSetError::syntax(
                            line_no,
                            format!(
                            "unknown priority policy `{other}` (expected explicit, pdm, dm or rm)"
                        ),
                        ))
                    }
                };
                if !tasks.is_empty() {
                    return Err(ParseTaskSetError::syntax(
                        line_no,
                        "priorities must come before the first task",
                    ));
                }
            }
            "task" => {
                let fields = parse_fields(line_no, words)?;
                let period = require_field(line_no, &fields, "period")?;
                let mut chain = ChainSpec::new(Dur::from_ticks(period), Vec::new());
                for (key, value) in &fields {
                    match key.as_str() {
                        "period" => {}
                        "phase" => chain.phase = Time::from_ticks(int_value(line_no, key, value)?),
                        "deadline" => {
                            chain.deadline = Dur::from_ticks(int_value(line_no, key, value)?)
                        }
                        other => {
                            return Err(ParseTaskSetError::syntax(
                                line_no,
                                format!("unknown task field `{other}`"),
                            ))
                        }
                    }
                }
                tasks.push(PendingTask {
                    chain,
                    priorities: Vec::new(),
                });
            }
            "subtask" => {
                let task = tasks.last_mut().ok_or_else(|| {
                    ParseTaskSetError::syntax(line_no, "subtask before any task line")
                })?;
                let fields = parse_fields(line_no, words)?;
                let proc = require_field(line_no, &fields, "proc")?;
                let exec = require_field(line_no, &fields, "exec")?;
                let mut prio: Option<Priority> = None;
                let mut preemptible = true;
                let mut sections: Vec<(i64, i64, i64)> = Vec::new();
                for (key, value) in &fields {
                    match key.as_str() {
                        "proc" | "exec" => {}
                        "nonpreempt" => preemptible = int_value(line_no, key, value)? == 0,
                        "prio" => {
                            let level =
                                u32::try_from(int_value(line_no, key, value)?).map_err(|_| {
                                    ParseTaskSetError::syntax(line_no, "prio must be non-negative")
                                })?;
                            prio = Some(Priority::new(level));
                        }
                        // cs=RESOURCE:START:LEN — a critical section
                        // (repeatable).
                        "cs" => {
                            let parts: Vec<&str> = value.split(':').collect();
                            if parts.len() != 3 {
                                return Err(ParseTaskSetError::syntax(
                                    line_no,
                                    "cs needs resource:start:len",
                                ));
                            }
                            sections.push((
                                int_value(line_no, "cs resource", parts[0])?,
                                int_value(line_no, "cs start", parts[1])?,
                                int_value(line_no, "cs len", parts[2])?,
                            ));
                        }
                        other => {
                            return Err(ParseTaskSetError::syntax(
                                line_no,
                                format!("unknown subtask field `{other}`"),
                            ))
                        }
                    }
                }
                match (mode, prio) {
                    (PriorityMode::Explicit, None) => {
                        return Err(ParseTaskSetError::syntax(
                            line_no,
                            "prio= is required with explicit priorities",
                        ))
                    }
                    (PriorityMode::Explicit, Some(_)) => {}
                    (_, Some(_)) => {
                        return Err(ParseTaskSetError::syntax(
                            line_no,
                            "prio= conflicts with a priority policy",
                        ))
                    }
                    (_, None) => {}
                }
                let proc = usize::try_from(proc)
                    .map_err(|_| ParseTaskSetError::syntax(line_no, "proc must be non-negative"))?;
                if !preemptible {
                    task.chain.nonpreemptive.push(task.chain.subtasks.len());
                }
                for (resource, start, len) in sections {
                    let resource = usize::try_from(resource).map_err(|_| {
                        ParseTaskSetError::syntax(line_no, "cs resource must be non-negative")
                    })?;
                    task.chain
                        .critical_sections
                        .push((task.chain.subtasks.len(), rtsync_cs(resource, start, len)));
                }
                task.chain.subtasks.push((proc, Dur::from_ticks(exec)));
                task.priorities.push(prio);
            }
            other => {
                return Err(ParseTaskSetError::syntax(
                    line_no,
                    format!("unknown keyword `{other}`"),
                ))
            }
        }
    }

    let processors = processors.ok_or_else(|| {
        ParseTaskSetError::syntax(text.lines().count().max(1), "missing processors line")
    })?;

    let chains: Vec<ChainSpec> = tasks.iter().map(|t| t.chain.clone()).collect();
    match mode {
        PriorityMode::Pdm => build_with_policy(processors, &chains, &ProportionalDeadlineMonotonic),
        PriorityMode::Dm => build_with_policy(processors, &chains, &DeadlineMonotonic),
        PriorityMode::Rm => build_with_policy(processors, &chains, &RateMonotonic),
        PriorityMode::Explicit => {
            let mut builder = TaskSet::builder(processors);
            for task in &tasks {
                let mut tb = builder
                    .task(task.chain.period)
                    .phase(task.chain.phase)
                    .deadline(task.chain.deadline);
                for (si, (&(proc, exec), prio)) in
                    task.chain.subtasks.iter().zip(&task.priorities).enumerate()
                {
                    let prio = prio.expect("explicit mode checked per line");
                    tb = if task.chain.nonpreemptive.contains(&si) {
                        tb.nonpreemptive_subtask(proc, exec, prio)
                    } else {
                        tb.subtask(proc, exec, prio)
                    };
                    for &(csi, cs) in &task.chain.critical_sections {
                        if csi == si {
                            tb = tb.critical_section(cs.resource.index(), cs.start, cs.len);
                        }
                    }
                }
                builder = tb.finish_task();
            }
            builder.build()
        }
    }
    .map_err(ParseTaskSetError::Invalid)
}

/// Renders a task set in the text format (always with explicit
/// priorities, so the output is self-contained).
pub fn to_text(set: &TaskSet) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "processors {}", set.num_processors());
    let _ = writeln!(out, "priorities explicit");
    for task in set.tasks() {
        let _ = writeln!(out);
        let _ = write!(out, "task period={}", task.period().ticks());
        if task.phase() != Time::ZERO {
            let _ = write!(out, " phase={}", task.phase().ticks());
        }
        if task.deadline() != task.period() {
            let _ = write!(out, " deadline={}", task.deadline().ticks());
        }
        let _ = writeln!(out);
        for sub in task.subtasks() {
            let _ = write!(
                out,
                "  subtask proc={} exec={} prio={}",
                sub.processor().index(),
                sub.execution().ticks(),
                sub.priority().level()
            );
            if !sub.is_preemptible() {
                let _ = write!(out, " nonpreempt=1");
            }
            for cs in sub.critical_sections() {
                let _ = write!(
                    out,
                    " cs={}:{}:{}",
                    cs.resource.index(),
                    cs.start.ticks(),
                    cs.len.ticks()
                );
            }
            let _ = writeln!(out);
        }
    }
    out
}

fn rtsync_cs(resource: usize, start: i64, len: i64) -> crate::task::CriticalSection {
    crate::task::CriticalSection {
        resource: crate::task::ResourceId::new(resource),
        start: Dur::from_ticks(start),
        len: Dur::from_ticks(len),
    }
}

type Fields = Vec<(String, String)>;

fn parse_fields<'a>(
    line_no: usize,
    words: impl Iterator<Item = &'a str>,
) -> Result<Fields, ParseTaskSetError> {
    let mut fields = Vec::new();
    for word in words {
        let (key, value) = word.split_once('=').ok_or_else(|| {
            ParseTaskSetError::syntax(line_no, format!("expected key=value, got `{word}`"))
        })?;
        fields.push((key.to_string(), value.to_string()));
    }
    Ok(fields)
}

fn int_value(line_no: usize, key: &str, value: &str) -> Result<i64, ParseTaskSetError> {
    value
        .parse()
        .map_err(|e| ParseTaskSetError::syntax(line_no, format!("bad value for `{key}`: {e}")))
}

fn require_field(line_no: usize, fields: &Fields, key: &str) -> Result<i64, ParseTaskSetError> {
    let (_, v) = fields
        .iter()
        .find(|(k, _)| k == key)
        .ok_or_else(|| ParseTaskSetError::syntax(line_no, format!("missing `{key}=`")))?;
    int_value(line_no, key, v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::examples::{example1, example2};
    use crate::task::{SubtaskId, TaskId};

    #[test]
    fn roundtrip_examples() {
        for set in [example1(), example2()] {
            let text = to_text(&set);
            let parsed = parse(&text).unwrap();
            assert_eq!(parsed, set);
        }
    }

    #[test]
    fn parses_the_documented_example() {
        let text = "\
# Example 2 of Sun & Liu 1996
processors 2
priorities explicit

task period=4
  subtask proc=0 exec=2 prio=0

task period=6
  subtask proc=0 exec=2 prio=1
  subtask proc=1 exec=3 prio=0

task period=6 phase=4     # deadline defaults to the period
  subtask proc=1 exec=2 prio=1
";
        assert_eq!(parse(text).unwrap(), example2());
    }

    #[test]
    fn pdm_mode_assigns_priorities() {
        let text = "\
processors 2
priorities pdm
task period=100
  subtask proc=0 exec=10
  subtask proc=1 exec=30
task period=200
  subtask proc=1 exec=20
  subtask proc=0 exec=20
";
        let set = parse(text).unwrap();
        let t00 = set.subtask(SubtaskId::new(TaskId::new(0), 0));
        let t11 = set.subtask(SubtaskId::new(TaskId::new(1), 1));
        assert!(t00.priority().is_higher_than(t11.priority()));
    }

    #[test]
    fn deadline_and_phase_fields() {
        let text = "\
processors 1
task period=10 phase=3 deadline=8
  subtask proc=0 exec=2 prio=0
";
        let set = parse(text).unwrap();
        let task = &set.tasks()[0];
        assert_eq!(task.phase(), Time::from_ticks(3));
        assert_eq!(task.deadline(), Dur::from_ticks(8));
        // And the writer emits them back.
        let text2 = to_text(&set);
        assert!(text2.contains("phase=3"));
        assert!(text2.contains("deadline=8"));
        assert_eq!(parse(&text2).unwrap(), set);
    }

    #[test]
    fn error_lines_are_reported() {
        let cases: Vec<(&str, usize, &str)> = vec![
            ("processors 1\nbogus line\n", 2, "unknown keyword"),
            (
                "processors 1\nsubtask proc=0 exec=1 prio=0\n",
                2,
                "before any task",
            ),
            ("processors 1\ntask\n", 2, "missing `period="),
            (
                "processors 1\ntask period=5\n  subtask proc=0 exec=1\n",
                3,
                "prio= is required",
            ),
            ("processors x\n", 1, "bad processor count"),
            ("processors 1\nprocessors 2\n", 2, "duplicate processors"),
            (
                "processors 1\npriorities nope\n",
                2,
                "unknown priority policy",
            ),
            (
                "processors 1\ntask period=5 bogus=1\n",
                2,
                "unknown task field",
            ),
            (
                "processors 1\ntask period=5\n subtask proc=0 exec=1 prio=0 extra=2\n",
                3,
                "unknown subtask field",
            ),
            (
                "processors 1\npriorities pdm\ntask period=5\n subtask proc=0 exec=1 prio=0\n",
                4,
                "conflicts with a priority policy",
            ),
            (
                "processors 1\ntask period=5\n subtask proc=0\n",
                3,
                "missing `exec=",
            ),
            (
                "processors 1\ntask period=5\n subtask proc zero\n",
                3,
                "expected key=value",
            ),
        ];
        for (text, line, needle) in cases {
            match parse(text) {
                Err(ParseTaskSetError::Syntax { line: l, message }) => {
                    assert_eq!(l, line, "{text}");
                    assert!(message.contains(needle), "`{message}` vs `{needle}`");
                }
                other => panic!("expected syntax error for {text:?}, got {other:?}"),
            }
        }
    }

    #[test]
    fn missing_processors_line() {
        let err = parse("task period=5\n  subtask proc=0 exec=1 prio=0\n").unwrap_err();
        assert!(err.to_string().contains("missing processors"));
    }

    #[test]
    fn validation_errors_propagate() {
        let text = "\
processors 1
task period=5
  subtask proc=0 exec=1 prio=0
  subtask proc=0 exec=1 prio=1
";
        match parse(text) {
            Err(ParseTaskSetError::Invalid(ValidateTaskSetError::ConsecutiveOnSameProcessor(
                ..,
            ))) => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn priorities_line_must_precede_tasks() {
        let text = "\
processors 1
task period=5
  subtask proc=0 exec=1 prio=0
priorities pdm
";
        let err = parse(text).unwrap_err();
        assert!(err.to_string().contains("before the first task"));
    }

    #[test]
    fn nonpreemptive_roundtrip() {
        let text = "\
processors 1
task period=10
  subtask proc=0 exec=2 prio=0
task period=20
  subtask proc=0 exec=5 prio=1 nonpreempt=1
";
        let set = parse(text).unwrap();
        assert!(set.tasks()[0].subtask(0).is_preemptible());
        assert!(!set.tasks()[1].subtask(0).is_preemptible());
        let printed = to_text(&set);
        assert!(printed.contains("nonpreempt=1"));
        assert_eq!(parse(&printed).unwrap(), set);
        // nonpreempt=0 is explicit preemptibility.
        let text0 = text.replace("nonpreempt=1", "nonpreempt=0");
        let set0 = parse(&text0).unwrap();
        assert!(set0.tasks()[1].subtask(0).is_preemptible());
    }

    #[test]
    fn critical_sections_roundtrip() {
        let text = "\
processors 1
task period=20
  subtask proc=0 exec=5 prio=0 cs=0:1:2
task period=30
  subtask proc=0 exec=8 prio=1 cs=0:0:3 cs=1:4:2
";
        let set = parse(text).unwrap();
        let high = set.tasks()[0].subtask(0);
        assert_eq!(high.critical_sections().len(), 1);
        assert_eq!(high.critical_sections()[0].start, Dur::from_ticks(1));
        let low = set.tasks()[1].subtask(0);
        assert_eq!(low.critical_sections().len(), 2);
        let printed = to_text(&set);
        assert!(printed.contains("cs=0:1:2"), "{printed}");
        assert!(printed.contains("cs=1:4:2"));
        assert_eq!(parse(&printed).unwrap(), set);
    }

    #[test]
    fn malformed_cs_fields_rejected() {
        let base = "processors 1\ntask period=20\n  subtask proc=0 exec=5 prio=0 ";
        for (field, needle) in [
            ("cs=1:2", "resource:start:len"),
            ("cs=a:0:1", "bad value"),
            ("cs=-1:0:1", "non-negative"),
        ] {
            let err = parse(&format!("{base}{field}\n")).unwrap_err();
            assert!(err.to_string().contains(needle), "{field}: {err}");
        }
        // Out-of-budget sections surface as validation errors.
        let err = parse(&format!("{base}cs=0:4:9\n")).unwrap_err();
        assert!(matches!(err, ParseTaskSetError::Invalid(_)), "{err}");
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "
# leading comment

processors 1   # trailing comment

task period=5  # another
  subtask proc=0 exec=1 prio=0
";
        assert!(parse(text).is_ok());
    }
}
