//! The release-guard state machine of the RG protocol (§3.2).
//!
//! For each subtask `T_{i,j}` (with `j > 1`) the scheduler of its host
//! processor keeps a variable `g_{i,j}`, the *release guard*: the earliest
//! instant the next instance of the subtask may be released. Two update
//! rules:
//!
//! 1. when an instance of `T_{i,j}` is released, `g_{i,j} ← now + p_i`;
//! 2. at an *idle point* of the processor (an instant by which every
//!    instance released before it has completed), `g_{i,j} ← now`.
//!
//! When the completion signal for a predecessor instance arrives at `t`,
//! the instance is released at `max(t, g_{i,j})` — immediately if the
//! guard has passed, otherwise deferred. Because predecessor completions
//! can clump (that is the whole point of the protocol), several signals may
//! arrive within one guard window; deferred instances queue FIFO and are
//! released one per guard window (or early, at idle points).
//!
//! [`ReleaseGuard`] is a pure, event-driven state machine: a simulator or a
//! real scheduler feeds it signals, guard expiries and idle points, and
//! acts on the returned decisions. Every mutation that queues or dequeues a
//! deferred instance bumps a *generation* counter; a scheduled guard-expiry
//! timer carries the generation it was scheduled under and is ignored if
//! stale ([`ReleaseGuard::take_due`]). The discipline for the caller:
//! after **every** call that returns or may create a pending head, consult
//! [`ReleaseGuard::next_expiry`] and (re)schedule a timer for it.
//!
//! # Examples
//!
//! The `T_{2,2}` guard of the paper's Figure 7: first instance released at
//! 4 (guard → 10); the second signal arrives at 8 and is deferred; the
//! processor idles at 9, lowering the guard, and the deferred instance is
//! released at 9.
//!
//! ```
//! use rtsync_core::release_guard::{GuardDecision, ReleaseGuard};
//! use rtsync_core::time::{Dur, Time};
//!
//! let mut g = ReleaseGuard::new(Dur::from_ticks(6));
//! let t = Time::from_ticks;
//!
//! assert_eq!(g.offer(t(4)), GuardDecision::ReleaseNow);
//! g.on_release(t(4)); // rule 1: guard = 10
//! assert_eq!(g.offer(t(8)), GuardDecision::DeferUntil(t(10)));
//! assert!(g.on_idle_point(t(9))); // rule 2 frees the deferred head at 9
//! g.on_release(t(9));
//! assert_eq!(g.guard(), t(15));
//! assert_eq!(g.next_expiry(), None);
//! ```

use std::collections::VecDeque;
use std::fmt;

use crate::time::{Dur, Time};

/// What to do with a predecessor-completion signal.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum GuardDecision {
    /// The guard has passed and nothing is queued: release the instance
    /// now (then call [`ReleaseGuard::on_release`]).
    ReleaseNow,
    /// The instance became the queue head; it is due at the given instant —
    /// schedule a guard-expiry timer for it (see
    /// [`ReleaseGuard::next_expiry`]).
    DeferUntil(Time),
    /// The instance queued behind earlier deferred instances; no new timer
    /// is needed beyond the one for the head.
    Queued,
}

/// Release-guard state for **one** subtask.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ReleaseGuard {
    period: Dur,
    guard: Time,
    /// Signal times of deferred, not-yet-released instances (FIFO).
    pending: VecDeque<Time>,
    /// Bumped on every queue/dequeue; stamps scheduled expiries.
    gen: u64,
    /// Instant of the most recent release (rule 1 application).
    armed_at: Option<Time>,
}

impl ReleaseGuard {
    /// Creates the guard for a subtask of the given period. Initially
    /// `g = 0` so the first instance is never delayed (§3.2).
    ///
    /// # Panics
    ///
    /// Panics if `period` is not strictly positive.
    pub fn new(period: Dur) -> ReleaseGuard {
        assert!(
            period.is_positive(),
            "release guard needs a positive period"
        );
        ReleaseGuard {
            period,
            guard: Time::ZERO,
            pending: VecDeque::new(),
            gen: 0,
            armed_at: None,
        }
    }

    /// The current guard value `g_{i,j}`.
    pub fn guard(&self) -> Time {
        self.guard
    }

    /// The subtask's period.
    pub fn period(&self) -> Dur {
        self.period
    }

    /// Number of deferred instances waiting on the guard.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// The timer the caller should have scheduled for the queue head:
    /// `Some((due, generation))` while any instance is deferred. A fired
    /// timer is only honored by [`ReleaseGuard::take_due`] if its
    /// generation is still current.
    pub fn next_expiry(&self) -> Option<(Time, u64)> {
        (!self.pending.is_empty()).then_some((self.guard, self.gen))
    }

    /// A predecessor-completion signal arrives at `now`.
    pub fn offer(&mut self, now: Time) -> GuardDecision {
        if self.pending.is_empty() && now >= self.guard {
            return GuardDecision::ReleaseNow;
        }
        self.pending.push_back(now);
        self.gen += 1;
        if self.pending.len() == 1 {
            GuardDecision::DeferUntil(self.guard)
        } else {
            GuardDecision::Queued
        }
    }

    /// Rule 1: an instance was released at `now`; `g ← now + period`.
    pub fn on_release(&mut self, now: Time) {
        self.guard = now + self.period;
        self.armed_at = Some(now);
        self.gen += 1;
    }

    /// Rule 2: `now` is an idle point of the host processor; `g ← now`
    /// (the paper's literal rule — raising a guard that is already in the
    /// past is harmless, since future signals arrive at ≥ `now`). Returns
    /// `true` if a deferred head instance becomes releasable *now*: the
    /// caller must release it, call [`ReleaseGuard::on_release`], and
    /// reschedule via [`ReleaseGuard::next_expiry`].
    ///
    /// When an instance of this subtask was released at this very instant,
    /// rule 1 wins and the idle point leaves the guard armed: the two
    /// rules' outcome is then independent of the order the instant's
    /// events are processed in, and releases inside one busy period stay
    /// at least a period apart — the property the SA/PM bounds (Theorem 1)
    /// rest on. (The busy period around `now` begins *with* that release;
    /// the idle point marks the end of the previous one.)
    pub fn on_idle_point(&mut self, now: Time) -> bool {
        if self.armed_at == Some(now) {
            return false; // rule 1 at the same instant takes precedence
        }
        self.guard = now;
        self.gen += 1;
        self.pending.pop_front().is_some()
    }

    /// Fail-stop crash of the host processor: every deferred signal dies
    /// with the node. Clears the pending queue and bumps the generation so
    /// any in-flight guard-expiry timer is ignored on replay. The guard
    /// value itself is left alone — it is re-derived at recovery by
    /// [`ReleaseGuard::reinitialize`].
    pub fn on_crash(&mut self) {
        self.pending.clear();
        self.gen += 1;
        self.armed_at = None;
    }

    /// Recovery rule: `g ← now`. A processor that just rejoined holds no
    /// released-incomplete instances, so the recovery instant is an idle
    /// point in the paper's sense and rule 2 applies literally — the guard
    /// must not carry a pre-crash value forward (a stale `g` in the future
    /// would delay the first post-recovery release for no reason; one in
    /// the past is merely raised to `now`, which is harmless because
    /// future signals arrive at ≥ `now`).
    pub fn reinitialize(&mut self, now: Time) {
        self.guard = now;
        self.pending.clear();
        self.gen += 1;
        self.armed_at = None;
    }

    /// A guard-expiry timer stamped with `gen` fired at `now`. Returns
    /// `true` if it is still current and a deferred head is due: the caller
    /// releases it, calls [`ReleaseGuard::on_release`], and reschedules via
    /// [`ReleaseGuard::next_expiry`]. Stale timers return `false`.
    pub fn take_due(&mut self, now: Time, gen: u64) -> bool {
        if gen != self.gen || self.pending.is_empty() || now < self.guard {
            return false;
        }
        self.pending.pop_front();
        self.gen += 1;
        true
    }
}

impl fmt::Display for ReleaseGuard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "guard@{}", self.guard.ticks())?;
        if !self.pending.is_empty() {
            write!(f, " ({} pending)", self.pending.len())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(x: i64) -> Time {
        Time::from_ticks(x)
    }

    fn guard6() -> ReleaseGuard {
        ReleaseGuard::new(Dur::from_ticks(6))
    }

    #[test]
    fn first_instance_is_never_delayed() {
        let mut g = guard6();
        assert_eq!(g.guard(), Time::ZERO);
        assert_eq!(g.offer(t(0)), GuardDecision::ReleaseNow);
        assert_eq!(g.offer(t(3)), GuardDecision::ReleaseNow);
        assert_eq!(g.next_expiry(), None);
    }

    #[test]
    fn rule1_spaces_releases_by_the_period() {
        let mut g = guard6();
        g.on_release(t(4));
        assert_eq!(g.guard(), t(10));
        // Early signal at 8 is deferred to 10.
        assert_eq!(g.offer(t(8)), GuardDecision::DeferUntil(t(10)));
        let (due, gen) = g.next_expiry().unwrap();
        assert_eq!(due, t(10));
        // The deferral becomes due at 10.
        assert!(!g.take_due(t(10), gen + 99), "stale generation ignored");
        assert!(g.take_due(t(10), gen));
        g.on_release(t(10));
        assert_eq!(g.guard(), t(16));
        assert_eq!(g.next_expiry(), None);
    }

    #[test]
    fn figure7_idle_point_releases_pending_early() {
        // The exact §3.2 walk-through: release at 4 → guard 10; signal at 8
        // deferred; idle point at 9 lowers the guard and frees the pending
        // instance at 9.
        let mut g = guard6();
        assert_eq!(g.offer(t(4)), GuardDecision::ReleaseNow);
        g.on_release(t(4));
        let d = g.offer(t(8));
        assert_eq!(d, GuardDecision::DeferUntil(t(10)));
        let stale = g.next_expiry().unwrap();
        assert!(g.on_idle_point(t(9)));
        g.on_release(t(9));
        assert_eq!(g.guard(), t(15));
        // The timer scheduled for t=10 is now stale and must not fire a
        // second release.
        assert!(!g.take_due(t(10), stale.1));
    }

    #[test]
    fn clumped_signals_queue_fifo() {
        let mut g = guard6();
        g.on_release(t(0)); // guard 6
        assert_eq!(g.offer(t(1)), GuardDecision::DeferUntil(t(6)));
        assert_eq!(g.offer(t(2)), GuardDecision::Queued);
        assert_eq!(g.offer(t(3)), GuardDecision::Queued);
        assert_eq!(g.pending_len(), 3);
        // Head due at 6.
        let (due, gen) = g.next_expiry().unwrap();
        assert_eq!(due, t(6));
        assert!(g.take_due(t(6), gen));
        g.on_release(t(6)); // guard 12
                            // Next head waits for the *new* guard.
        let (due, gen) = g.next_expiry().unwrap();
        assert_eq!(due, t(12));
        assert!(g.take_due(t(12), gen));
        g.on_release(t(12));
        assert_eq!(g.pending_len(), 1);
        // Idle point releases the last one early.
        assert!(g.on_idle_point(t(14)));
        g.on_release(t(14));
        assert_eq!(g.pending_len(), 0);
        assert_eq!(g.next_expiry(), None);
    }

    #[test]
    fn idle_point_sets_guard_to_now() {
        let mut g = guard6();
        g.on_release(t(0)); // guard 6
        assert!(!g.on_idle_point(t(3)));
        assert_eq!(g.guard(), t(3));
        assert!(!g.on_idle_point(t(5)));
        assert_eq!(g.guard(), t(5)); // rule 2 is literal: g := now
                                     // Raising a past guard to now is harmless.
        let mut g2 = guard6();
        g2.on_release(t(10)); // guard 16
        g2.on_idle_point(t(20));
        assert_eq!(g2.guard(), t(20));
        assert_eq!(g2.offer(t(20)), GuardDecision::ReleaseNow);
    }

    #[test]
    fn late_signal_releases_immediately() {
        let mut g = guard6();
        g.on_release(t(0)); // guard 6
        assert_eq!(g.offer(t(7)), GuardDecision::ReleaseNow);
        assert_eq!(g.offer(t(6)), GuardDecision::ReleaseNow, "boundary");
    }

    #[test]
    fn signal_behind_nonempty_queue_defers_even_after_guard() {
        let mut g = guard6();
        g.on_release(t(0)); // guard 6
        let _ = g.offer(t(1)); // deferred head
                               // Guard passes, head not yet taken (timer in flight); a new signal
                               // at 7 must queue behind, not jump ahead.
        assert_eq!(g.offer(t(7)), GuardDecision::Queued);
        assert_eq!(g.pending_len(), 2);
    }

    #[test]
    fn take_due_respects_guard_time_and_emptiness() {
        let mut g = guard6();
        g.on_release(t(0));
        let _ = g.offer(t(1));
        let (_, gen) = g.next_expiry().unwrap();
        assert!(!g.take_due(t(5), gen), "not due yet");
        assert!(g.take_due(t(6), gen));
        assert!(!g.take_due(t(6), gen), "generation consumed");
        let mut empty = guard6();
        assert!(!empty.take_due(t(0), 0), "nothing pending");
    }

    #[test]
    #[should_panic(expected = "positive period")]
    fn zero_period_rejected() {
        let _ = ReleaseGuard::new(Dur::ZERO);
    }

    #[test]
    fn display_mentions_pending() {
        let mut g = guard6();
        g.on_release(t(0));
        assert_eq!(g.to_string(), "guard@6");
        let _ = g.offer(t(2));
        let _ = g.offer(t(3));
        assert!(g.to_string().contains("2 pending"));
    }

    #[test]
    fn crash_drops_deferred_signals_and_stales_timers() {
        let mut g = guard6();
        g.on_release(t(0)); // guard 6
        let _ = g.offer(t(1));
        let _ = g.offer(t(2));
        let (due, gen) = g.next_expiry().unwrap();
        assert_eq!(due, t(6));
        g.on_crash();
        assert_eq!(g.pending_len(), 0);
        assert_eq!(g.next_expiry(), None);
        assert!(!g.take_due(t(6), gen), "pre-crash timer must be stale");
    }

    #[test]
    fn reinitialize_sets_guard_to_recovery_instant() {
        // Future guard is pulled back: a signal right after recovery
        // releases immediately (the recovery instant is an idle point).
        let mut g = guard6();
        g.on_release(t(100)); // guard 106
        let _ = g.offer(t(101)); // deferred, dies with the crash
        g.reinitialize(t(103));
        assert_eq!(g.guard(), t(103));
        assert_eq!(g.pending_len(), 0);
        assert_eq!(g.offer(t(103)), GuardDecision::ReleaseNow);
        // Past guard is raised to now (harmless, same as rule 2).
        let mut g2 = guard6();
        g2.reinitialize(t(50));
        assert_eq!(g2.guard(), t(50));
        // Rule-1-wins bookkeeping does not leak across the crash: an idle
        // point at the recovery instant still applies rule 2.
        let mut g3 = guard6();
        g3.on_release(t(10));
        g3.on_crash();
        assert!(!g3.on_idle_point(t(10)), "nothing pending to free");
        assert_eq!(g3.guard(), t(10));
    }

    #[test]
    fn inter_release_separation_invariant() {
        // Drive a long signal sequence; consecutive releases must never be
        // closer than the period unless an idle point intervened (rule 2).
        let mut g = guard6();
        let mut releases: Vec<(Time, bool)> = Vec::new(); // (time, via idle)
        let mut now = Time::ZERO;
        for step in 0..60 {
            now += Dur::from_ticks(1 + (step % 5));
            match g.offer(now) {
                GuardDecision::ReleaseNow => {
                    g.on_release(now);
                    releases.push((now, false));
                }
                GuardDecision::DeferUntil(_) | GuardDecision::Queued => {
                    if step % 3 == 0 {
                        let idle = now + Dur::from_ticks(1);
                        if g.on_idle_point(idle) {
                            g.on_release(idle);
                            releases.push((idle, true));
                        }
                    } else if let Some((due, gen)) = g.next_expiry() {
                        if due <= now + Dur::from_ticks(2) && g.take_due(due.max(now), gen) {
                            let at = due.max(now);
                            g.on_release(at);
                            releases.push((at, false));
                        }
                    }
                }
            }
        }
        assert!(releases.len() > 5, "scenario exercised releases");
        for pair in releases.windows(2) {
            let (prev, _) = pair[0];
            let (next, via_idle) = pair[1];
            assert!(
                next - prev >= Dur::from_ticks(6) || via_idle,
                "release at {next:?} too close to {prev:?} without an idle point"
            );
        }
    }
}
