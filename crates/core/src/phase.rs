//! Phase computation for the Phase Modification protocol (§3.1).
//!
//! PM makes every subtask strictly periodic by giving subtask `T_{i,j}` its
//! own phase
//!
//! ```text
//! f_{i,j} = f_i + Σ_{k<j} R_{i,k}
//! ```
//!
//! — the parent task's phase plus the summed response-time bounds of all
//! predecessors. If clocks are synchronized and first subtasks are strictly
//! periodic, an instance's predecessors are guaranteed complete by its
//! (purely clock-driven) release.
//!
//! The same offsets drive the MPM protocol's per-release timers: MPM sets a
//! timer `R_{i,j}` after each release of `T_{i,j}` and signals the
//! successor's processor when it fires, producing the identical schedule
//! without global clocks.

use crate::analysis::sa_pm::PmBounds;
use crate::task::{SubtaskId, TaskSet};
use crate::time::Time;

/// The per-subtask phases used by the PM protocol, derived from SA/PM
/// response-time bounds.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PmPhases {
    /// `phases[i][j] = f_{i,j}`.
    phases: Vec<Vec<Time>>,
}

impl PmPhases {
    /// Computes `f_{i,j} = f_i + Σ_{k<j} R_{i,k}` for every subtask.
    pub fn compute(set: &TaskSet, bounds: &PmBounds) -> PmPhases {
        let phases = set
            .tasks()
            .iter()
            .map(|task| {
                task.subtasks()
                    .iter()
                    .map(|s| task.phase() + bounds.cumulative_before(s.id()))
                    .collect()
            })
            .collect();
        PmPhases { phases }
    }

    /// The phase `f_{i,j}` of one subtask.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn phase(&self, id: SubtaskId) -> Time {
        self.phases[id.task().index()][id.index()]
    }

    /// Release time of the `m`-th (0-based) instance of subtask `id`:
    /// `f_{i,j} + m·p_i`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn release(&self, set: &TaskSet, id: SubtaskId, m: u64) -> Time {
        self.phase(id) + set.task(id.task()).period() * (m as i64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::sa_pm::analyze_pm;
    use crate::analysis::AnalysisConfig;
    use crate::examples::example2;
    use crate::task::TaskId;
    use crate::time::Dur;

    fn sid(t: usize, j: usize) -> SubtaskId {
        SubtaskId::new(TaskId::new(t), j)
    }

    #[test]
    fn example2_phases_match_figure5() {
        let set = example2();
        let bounds = analyze_pm(&set, &AnalysisConfig::default()).unwrap();
        let phases = PmPhases::compute(&set, &bounds);
        // Figure 5: f_{2,2} = 4 (R_{2,1} = 4); first subtasks keep the
        // parent phases.
        assert_eq!(phases.phase(sid(1, 0)), Time::ZERO);
        assert_eq!(phases.phase(sid(1, 1)), Time::from_ticks(4));
        assert_eq!(phases.phase(sid(0, 0)), Time::ZERO);
        assert_eq!(phases.phase(sid(2, 0)), Time::from_ticks(4));
    }

    #[test]
    fn releases_are_periodic_from_the_phase() {
        let set = example2();
        let bounds = analyze_pm(&set, &AnalysisConfig::default()).unwrap();
        let phases = PmPhases::compute(&set, &bounds);
        let id = sid(1, 1);
        assert_eq!(phases.release(&set, id, 0), Time::from_ticks(4));
        assert_eq!(phases.release(&set, id, 1), Time::from_ticks(10));
        assert_eq!(phases.release(&set, id, 4), Time::from_ticks(28));
    }

    #[test]
    fn task_phase_offsets_whole_chain() {
        // A task with phase 3: every subtask phase shifts by 3.
        use crate::task::{Priority, TaskSet};
        let set = TaskSet::builder(2)
            .task(Dur::from_ticks(10))
            .phase(Time::from_ticks(3))
            .subtask(0, Dur::from_ticks(2), Priority::new(0))
            .subtask(1, Dur::from_ticks(4), Priority::new(0))
            .finish_task()
            .build()
            .unwrap();
        let bounds = analyze_pm(&set, &AnalysisConfig::default()).unwrap();
        let phases = PmPhases::compute(&set, &bounds);
        assert_eq!(phases.phase(sid(0, 0)), Time::from_ticks(3));
        assert_eq!(phases.phase(sid(0, 1)), Time::from_ticks(5)); // 3 + R=2
    }
}
