//! Priority assignment policies for subtasks.
//!
//! The paper assumes subtask priorities "have been assigned according to
//! some priority assignment algorithm" and uses
//! **Proportional-Deadline-Monotonic** (PDM) in its evaluation (§5.1): each
//! subtask gets a *proportional deadline*
//!
//! ```text
//! PD_{i,j} = c_{i,j} / (Σ_k c_{i,k}) · D_i
//! ```
//!
//! and, on each processor, shorter proportional deadline means higher
//! priority. This module provides PDM plus the classic global
//! deadline-monotonic and rate-monotonic orders, all as [`PriorityPolicy`]
//! implementations, and [`build_with_policy`] which turns raw [`ChainSpec`]s
//! into a validated [`TaskSet`] with policy-assigned priorities.
//!
//! Keys are compared with exact rational arithmetic (`i128` cross
//! multiplication) — no floating point enters a priority decision. Ties are
//! broken deterministically by (task id, chain index).
//!
//! # Examples
//!
//! ```
//! use rtsync_core::priority::{build_with_policy, ChainSpec, ProportionalDeadlineMonotonic};
//! use rtsync_core::time::Dur;
//!
//! let chains = vec![
//!     ChainSpec::new(Dur::from_ticks(100), vec![(0, Dur::from_ticks(10)), (1, Dur::from_ticks(30))]),
//!     ChainSpec::new(Dur::from_ticks(200), vec![(1, Dur::from_ticks(20)), (0, Dur::from_ticks(20))]),
//! ];
//! let set = build_with_policy(2, &chains, &ProportionalDeadlineMonotonic)?;
//! assert_eq!(set.num_tasks(), 2);
//! # Ok::<(), rtsync_core::error::ValidateTaskSetError>(())
//! ```

use std::cmp::Ordering;
use std::fmt;

use crate::error::ValidateTaskSetError;
use crate::task::{CriticalSection, Priority, TaskSet};
use crate::time::{Dur, Time};

/// A raw, priority-free description of one end-to-end task: its timing
/// parameters and the (processor, execution time) chain.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ChainSpec {
    /// Period `p_i`.
    pub period: Dur,
    /// Phase `f_i` (default [`Time::ZERO`]).
    pub phase: Time,
    /// End-to-end relative deadline `D_i` (default: the period).
    pub deadline: Dur,
    /// The chain: `(processor index, execution time)` per subtask.
    pub subtasks: Vec<(usize, Dur)>,
    /// Chain indices of subtasks that are **non-preemptive** (default
    /// none — the paper's fully preemptive model).
    pub nonpreemptive: Vec<usize>,
    /// Critical sections, as `(chain index, section)` pairs (default none).
    pub critical_sections: Vec<(usize, CriticalSection)>,
}

impl ChainSpec {
    /// Creates a spec with phase 0 and deadline equal to the period.
    pub fn new(period: Dur, subtasks: Vec<(usize, Dur)>) -> ChainSpec {
        ChainSpec {
            period,
            phase: Time::ZERO,
            deadline: period,
            subtasks,
            nonpreemptive: Vec::new(),
            critical_sections: Vec::new(),
        }
    }

    /// Marks the given chain indices as non-preemptive.
    pub fn with_nonpreemptive(mut self, indices: Vec<usize>) -> ChainSpec {
        self.nonpreemptive = indices;
        self
    }

    /// Attaches a critical section to the subtask at `index`.
    pub fn with_critical_section(mut self, index: usize, section: CriticalSection) -> ChainSpec {
        self.critical_sections.push((index, section));
        self
    }

    /// Sets the phase.
    pub fn with_phase(mut self, phase: Time) -> ChainSpec {
        self.phase = phase;
        self
    }

    /// Sets the end-to-end relative deadline.
    pub fn with_deadline(mut self, deadline: Dur) -> ChainSpec {
        self.deadline = deadline;
        self
    }

    /// Sum of the chain's execution times.
    pub fn total_execution(&self) -> Dur {
        self.subtasks.iter().map(|&(_, c)| c).sum()
    }
}

/// An exact rational priority key: **smaller key ⇒ higher priority**.
///
/// Represented as `num/den` with `den > 0`; comparison is by `i128` cross
/// multiplication, so keys of the magnitudes produced by realistic tick
/// scales (≤ 2⁶³ ticks) compare exactly.
#[derive(Clone, Copy, Debug)]
pub struct PriorityKey {
    num: i128,
    den: i128,
}

impl PriorityKey {
    /// Creates the key `num/den`.
    ///
    /// # Panics
    ///
    /// Panics if `den` is not strictly positive.
    pub fn ratio(num: i128, den: i128) -> PriorityKey {
        assert!(den > 0, "priority key denominator must be positive");
        PriorityKey { num, den }
    }

    /// Creates an integer-valued key.
    pub fn integer(value: i128) -> PriorityKey {
        PriorityKey { num: value, den: 1 }
    }
}

impl PartialEq for PriorityKey {
    fn eq(&self, other: &PriorityKey) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for PriorityKey {}

impl PartialOrd for PriorityKey {
    fn partial_cmp(&self, other: &PriorityKey) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for PriorityKey {
    fn cmp(&self, other: &PriorityKey) -> Ordering {
        // den > 0 on both sides, so cross multiplication preserves order.
        (self.num * other.den).cmp(&(other.num * self.den))
    }
}

/// A rule that ranks subtasks for priority assignment.
///
/// On each processor, subtasks are sorted by the key this policy returns
/// (smaller = higher priority, ties broken by task id then chain index) and
/// given distinct [`Priority`] levels `0, 1, 2, …`.
pub trait PriorityPolicy: fmt::Debug {
    /// Human-readable policy name (for reports).
    fn name(&self) -> &'static str;

    /// The ranking key of subtask `subtask_index` of `chains[task_index]`.
    fn key(&self, chains: &[ChainSpec], task_index: usize, subtask_index: usize) -> PriorityKey;
}

/// The paper's evaluation policy (§5.1): rank by proportional deadline
/// `PD_{i,j} = c_{i,j}·D_i / Σ_k c_{i,k}`.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct ProportionalDeadlineMonotonic;

impl PriorityPolicy for ProportionalDeadlineMonotonic {
    fn name(&self) -> &'static str {
        "proportional-deadline-monotonic"
    }

    fn key(&self, chains: &[ChainSpec], task_index: usize, subtask_index: usize) -> PriorityKey {
        let chain = &chains[task_index];
        let c = chain.subtasks[subtask_index].1.ticks() as i128;
        let d = chain.deadline.ticks() as i128;
        let total = chain.total_execution().ticks() as i128;
        PriorityKey::ratio(c * d, total)
    }
}

/// Rank by the parent task's end-to-end deadline (shorter = higher).
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct DeadlineMonotonic;

impl PriorityPolicy for DeadlineMonotonic {
    fn name(&self) -> &'static str {
        "deadline-monotonic"
    }

    fn key(&self, chains: &[ChainSpec], task_index: usize, _subtask_index: usize) -> PriorityKey {
        PriorityKey::integer(chains[task_index].deadline.ticks() as i128)
    }
}

/// Rank by the parent task's period (shorter = higher).
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct RateMonotonic;

impl PriorityPolicy for RateMonotonic {
    fn name(&self) -> &'static str {
        "rate-monotonic"
    }

    fn key(&self, chains: &[ChainSpec], task_index: usize, _subtask_index: usize) -> PriorityKey {
        PriorityKey::integer(chains[task_index].period.ticks() as i128)
    }
}

/// Builds a validated [`TaskSet`] from raw chains, assigning per-processor
/// priorities with `policy`.
///
/// # Errors
///
/// Returns any [`ValidateTaskSetError`] the resulting set violates (empty
/// chains, bad periods, consecutive subtasks sharing a processor, …).
/// Priority uniqueness always holds by construction.
pub fn build_with_policy(
    num_processors: usize,
    chains: &[ChainSpec],
    policy: &dyn PriorityPolicy,
) -> Result<TaskSet, ValidateTaskSetError> {
    // Rank subtasks per processor.
    let mut per_proc: Vec<Vec<(PriorityKey, usize, usize)>> = vec![Vec::new(); num_processors];
    for (ti, chain) in chains.iter().enumerate() {
        for (si, &(proc, _)) in chain.subtasks.iter().enumerate() {
            if proc < num_processors {
                per_proc[proc].push((policy.key(chains, ti, si), ti, si));
            }
            // Out-of-range processors fall through to builder validation.
        }
    }
    let mut priorities: Vec<Vec<Priority>> = chains
        .iter()
        .map(|c| vec![Priority::HIGHEST; c.subtasks.len()])
        .collect();
    for ranked in &mut per_proc {
        ranked.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));
        for (level, &(_, ti, si)) in ranked.iter().enumerate() {
            priorities[ti][si] = Priority::new(level as u32);
        }
    }

    let mut builder = TaskSet::builder(num_processors);
    for (ti, chain) in chains.iter().enumerate() {
        let mut tb = builder
            .task(chain.period)
            .phase(chain.phase)
            .deadline(chain.deadline);
        for (si, &(proc, exec)) in chain.subtasks.iter().enumerate() {
            tb = if chain.nonpreemptive.contains(&si) {
                tb.nonpreemptive_subtask(proc, exec, priorities[ti][si])
            } else {
                tb.subtask(proc, exec, priorities[ti][si])
            };
            for &(csi, cs) in &chain.critical_sections {
                if csi == si {
                    tb = tb.critical_section(cs.resource.index(), cs.start, cs.len);
                }
            }
        }
        builder = tb.finish_task();
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::{ProcessorId, SubtaskId, TaskId};

    fn d(t: i64) -> Dur {
        Dur::from_ticks(t)
    }

    #[test]
    fn priority_key_cross_multiplication() {
        // 1/3 < 2/5  because 5 < 6.
        assert!(PriorityKey::ratio(1, 3) < PriorityKey::ratio(2, 5));
        assert_eq!(PriorityKey::ratio(2, 4), PriorityKey::ratio(1, 2));
        assert!(PriorityKey::integer(7) > PriorityKey::ratio(13, 2));
        assert!(PriorityKey::ratio(-1, 2) < PriorityKey::integer(0));
    }

    #[test]
    #[should_panic(expected = "denominator must be positive")]
    fn priority_key_rejects_bad_denominator() {
        let _ = PriorityKey::ratio(1, 0);
    }

    #[test]
    fn pdm_matches_paper_definition() {
        // Task 0: period/deadline 100, chain (c=10 on P0, c=30 on P1).
        //   PD_{0,0} = 10/40*100 = 25 ; PD_{0,1} = 30/40*100 = 75.
        // Task 1: period/deadline 200, chain (c=20 on P1, c=20 on P0).
        //   PD_{1,0} = 20/40*200 = 100 ; PD_{1,1} = 100.
        let chains = vec![
            ChainSpec::new(d(100), vec![(0, d(10)), (1, d(30))]),
            ChainSpec::new(d(200), vec![(1, d(20)), (0, d(20))]),
        ];
        let set = build_with_policy(2, &chains, &ProportionalDeadlineMonotonic).unwrap();
        // P0 hosts T0.0 (PD 25) and T1.1 (PD 100): T0.0 higher.
        let t00 = set.subtask(SubtaskId::new(TaskId::new(0), 0));
        let t11 = set.subtask(SubtaskId::new(TaskId::new(1), 1));
        assert!(t00.priority().is_higher_than(t11.priority()));
        // P1 hosts T0.1 (PD 75) and T1.0 (PD 100): T0.1 higher.
        let t01 = set.subtask(SubtaskId::new(TaskId::new(0), 1));
        let t10 = set.subtask(SubtaskId::new(TaskId::new(1), 0));
        assert!(t01.priority().is_higher_than(t10.priority()));
    }

    #[test]
    fn pdm_tie_breaks_by_task_id() {
        // Identical tasks: PD keys equal, so task 0 must win on both procs.
        let chains = vec![
            ChainSpec::new(d(100), vec![(0, d(10)), (1, d(10))]),
            ChainSpec::new(d(100), vec![(0, d(10)), (1, d(10))]),
        ];
        let set = build_with_policy(2, &chains, &ProportionalDeadlineMonotonic).unwrap();
        for proc in 0..2 {
            let mut on: Vec<_> = set
                .subtasks_on(ProcessorId::new(proc))
                .map(|s| (s.priority(), s.id().task()))
                .collect();
            on.sort();
            assert_eq!(on[0].1, TaskId::new(0));
        }
    }

    #[test]
    fn priorities_are_dense_per_processor() {
        let chains = vec![
            ChainSpec::new(d(50), vec![(0, d(5)), (1, d(5))]),
            ChainSpec::new(d(60), vec![(1, d(6)), (0, d(6))]),
            ChainSpec::new(d(70), vec![(0, d(7)), (1, d(7))]),
        ];
        let set = build_with_policy(2, &chains, &RateMonotonic).unwrap();
        for proc in 0..2 {
            let mut levels: Vec<u32> = set
                .subtasks_on(ProcessorId::new(proc))
                .map(|s| s.priority().level())
                .collect();
            levels.sort_unstable();
            assert_eq!(levels, vec![0, 1, 2]);
        }
    }

    #[test]
    fn rate_monotonic_orders_by_period() {
        let chains = vec![
            ChainSpec::new(d(200), vec![(0, d(5))]),
            ChainSpec::new(d(100), vec![(0, d(5))]),
        ];
        let set = build_with_policy(1, &chains, &RateMonotonic).unwrap();
        let slow = set.subtask(SubtaskId::new(TaskId::new(0), 0));
        let fast = set.subtask(SubtaskId::new(TaskId::new(1), 0));
        assert!(fast.priority().is_higher_than(slow.priority()));
    }

    #[test]
    fn deadline_monotonic_uses_deadline_not_period() {
        let chains = vec![
            ChainSpec::new(d(100), vec![(0, d(5))]).with_deadline(d(30)),
            ChainSpec::new(d(50), vec![(0, d(5))]).with_deadline(d(50)),
        ];
        let set = build_with_policy(1, &chains, &DeadlineMonotonic).unwrap();
        let tight = set.subtask(SubtaskId::new(TaskId::new(0), 0));
        let loose = set.subtask(SubtaskId::new(TaskId::new(1), 0));
        assert!(tight.priority().is_higher_than(loose.priority()));
    }

    #[test]
    fn chain_spec_builders() {
        let spec = ChainSpec::new(d(10), vec![(0, d(1)), (1, d(2))])
            .with_phase(Time::from_ticks(3))
            .with_deadline(d(8));
        assert_eq!(spec.phase, Time::from_ticks(3));
        assert_eq!(spec.deadline, d(8));
        assert_eq!(spec.total_execution(), d(3));
    }

    #[test]
    fn build_with_policy_propagates_validation_errors() {
        // Consecutive subtasks on the same processor.
        let chains = vec![ChainSpec::new(d(10), vec![(0, d(1)), (0, d(1))])];
        let err = build_with_policy(1, &chains, &RateMonotonic).unwrap_err();
        assert!(matches!(
            err,
            ValidateTaskSetError::ConsecutiveOnSameProcessor(..)
        ));
        // Unknown processor index.
        let chains = vec![ChainSpec::new(d(10), vec![(5, d(1))])];
        let err = build_with_policy(1, &chains, &RateMonotonic).unwrap_err();
        assert!(matches!(err, ValidateTaskSetError::UnknownProcessor(..)));
    }

    #[test]
    fn policy_names() {
        assert_eq!(
            ProportionalDeadlineMonotonic.name(),
            "proportional-deadline-monotonic"
        );
        assert_eq!(DeadlineMonotonic.name(), "deadline-monotonic");
        assert_eq!(RateMonotonic.name(), "rate-monotonic");
    }
}
