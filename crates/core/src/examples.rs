//! The paper's two running examples, as ready-made [`TaskSet`]s.
//!
//! These are used throughout the documentation, the golden-trace tests
//! (Figures 3–7 of the paper) and the quickstart example.

use crate::task::{Priority, TaskSet};
use crate::time::{Dur, Time};

/// **Example 1** (Figure 1): the monitor task — a single chain
/// `sample → transfer → display` across three processors (the middle one
/// modeling the communication link).
///
/// The paper's figure is schematic and gives no numbers; the parameters
/// here (period 10; execution times 2, 3, 2) are chosen so that the PM/MPM
/// schedules of Figures 4 and 6 can be rendered concretely.
///
/// ```
/// use rtsync_core::examples::example1;
/// let system = example1();
/// assert_eq!(system.num_processors(), 3);
/// assert_eq!(system.tasks()[0].chain_len(), 3);
/// ```
pub fn example1() -> TaskSet {
    TaskSet::builder(3)
        .task(Dur::from_ticks(10))
        .subtask(0, Dur::from_ticks(2), Priority::new(0)) // sample, field processor
        .subtask(1, Dur::from_ticks(3), Priority::new(0)) // transfer, "link" processor
        .subtask(2, Dur::from_ticks(2), Priority::new(0)) // display, central processor
        .finish_task()
        .build()
        .expect("example 1 is a valid task set")
}

/// **Example 2** (Figure 2): two processors, three tasks.
///
/// * `T₀` (the paper's `T₁`): period 4, one subtask of cost 2 on `P₀`,
///   higher priority there.
/// * `T₁` (the paper's `T₂`): period 6, chain `P₀ (cost 2) → P₁ (cost 3)`,
///   lower priority on `P₀`, higher on `P₁`.
/// * `T₂` (the paper's `T₃`): period 6, phase 4, one subtask of cost 2 on
///   `P₁`, lower priority there.
///
/// Under the DS protocol `T₂` misses its deadline at time 10 (Figure 3);
/// under PM (Figure 5) and RG (Figure 7) it meets it.
///
/// ```
/// use rtsync_core::examples::example2;
/// let system = example2();
/// assert_eq!(system.num_tasks(), 3);
/// ```
pub fn example2() -> TaskSet {
    TaskSet::builder(2)
        .task(Dur::from_ticks(4))
        .subtask(0, Dur::from_ticks(2), Priority::new(0))
        .finish_task()
        .task(Dur::from_ticks(6))
        .subtask(0, Dur::from_ticks(2), Priority::new(1))
        .subtask(1, Dur::from_ticks(3), Priority::new(0))
        .finish_task()
        .task(Dur::from_ticks(6))
        .phase(Time::from_ticks(4))
        .subtask(1, Dur::from_ticks(2), Priority::new(1))
        .finish_task()
        .build()
        .expect("example 2 is a valid task set")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::ProcessorId;

    #[test]
    fn example1_is_one_chain_across_three_processors() {
        let s = example1();
        assert_eq!(s.num_tasks(), 1);
        assert_eq!(s.num_subtasks(), 3);
        for (j, sub) in s.tasks()[0].subtasks().iter().enumerate() {
            assert_eq!(sub.processor(), ProcessorId::new(j));
        }
    }

    #[test]
    fn example2_matches_figure2_parameters() {
        let s = example2();
        let periods: Vec<i64> = s.tasks().iter().map(|t| t.period().ticks()).collect();
        assert_eq!(periods, vec![4, 6, 6]);
        let phases: Vec<i64> = s.tasks().iter().map(|t| t.phase().ticks()).collect();
        assert_eq!(phases, vec![0, 0, 4]);
        // T1 outranks T2's first subtask on P0; T2's second subtask
        // outranks T3 on P1.
        let t1 = s.tasks()[0].subtask(0);
        let t21 = s.tasks()[1].subtask(0);
        assert!(t1.priority().is_higher_than(t21.priority()));
        let t22 = s.tasks()[1].subtask(1);
        let t3 = s.tasks()[2].subtask(0);
        assert!(t22.priority().is_higher_than(t3.priority()));
    }
}
