//! Error types for model validation and schedulability analysis.

use std::error::Error;
use std::fmt;

use crate::task::{ProcessorId, ResourceId, SubtaskId, TaskId};
use crate::time::Dur;

/// An error raised while constructing or validating a task set.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ValidateTaskSetError {
    /// A task has no subtasks; a chain must contain at least one.
    EmptyChain(TaskId),
    /// A task's period is not strictly positive.
    NonPositivePeriod(TaskId, Dur),
    /// A task's relative deadline is not strictly positive.
    NonPositiveDeadline(TaskId, Dur),
    /// A subtask's execution time is not strictly positive.
    NonPositiveExecution(SubtaskId, Dur),
    /// A subtask references a processor outside the system.
    UnknownProcessor(SubtaskId, ProcessorId),
    /// Two consecutive subtasks of the same task share a processor. The
    /// model of Sun & Liu places consecutive subtasks on different
    /// processors (a same-processor pair should be merged into one subtask).
    ConsecutiveOnSameProcessor(SubtaskId, ProcessorId),
    /// Two subtasks on the same processor have the same priority but
    /// priorities were declared unique.
    DuplicatePriority(SubtaskId, SubtaskId),
    /// A task's phase is negative; phases are non-negative offsets from the
    /// timeline origin.
    NegativePhase(TaskId),
    /// The system declares zero processors.
    NoProcessors,
    /// A critical section extends outside its subtask's execution budget
    /// or has non-positive length.
    CriticalSectionOutOfRange(SubtaskId, ResourceId),
    /// Two critical sections of one subtask overlap (sections must be
    /// non-nested and disjoint).
    CriticalSectionsOverlap(SubtaskId),
    /// A resource is used by subtasks on two different processors;
    /// resources are processor-local (remote blocking is out of scope).
    ResourceSpansProcessors(ResourceId, ProcessorId, ProcessorId),
}

impl fmt::Display for ValidateTaskSetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateTaskSetError::EmptyChain(t) => {
                write!(f, "task {t} has an empty subtask chain")
            }
            ValidateTaskSetError::NonPositivePeriod(t, p) => {
                write!(f, "task {t} has non-positive period {p}")
            }
            ValidateTaskSetError::NonPositiveDeadline(t, d) => {
                write!(f, "task {t} has non-positive relative deadline {d}")
            }
            ValidateTaskSetError::NonPositiveExecution(s, c) => {
                write!(f, "subtask {s} has non-positive execution time {c}")
            }
            ValidateTaskSetError::UnknownProcessor(s, p) => {
                write!(f, "subtask {s} references unknown processor {p}")
            }
            ValidateTaskSetError::ConsecutiveOnSameProcessor(s, p) => write!(
                f,
                "subtask {s} runs on the same processor {p} as its immediate predecessor"
            ),
            ValidateTaskSetError::DuplicatePriority(a, b) => write!(
                f,
                "subtasks {a} and {b} share a processor and a priority level"
            ),
            ValidateTaskSetError::NegativePhase(t) => {
                write!(f, "task {t} has a negative phase")
            }
            ValidateTaskSetError::NoProcessors => {
                write!(f, "system has no processors")
            }
            ValidateTaskSetError::CriticalSectionOutOfRange(s, r) => write!(
                f,
                "critical section on {r} of subtask {s} lies outside its execution budget"
            ),
            ValidateTaskSetError::CriticalSectionsOverlap(s) => {
                write!(f, "subtask {s} has overlapping critical sections")
            }
            ValidateTaskSetError::ResourceSpansProcessors(r, a, b) => write!(
                f,
                "resource {r} is used on both {a} and {b}; resources are processor-local"
            ),
        }
    }
}

impl Error for ValidateTaskSetError {}

/// An error raised by a schedulability-analysis algorithm.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum AnalyzeError {
    /// The equal-and-higher-priority demand at some subtask's priority level
    /// exceeds the processor capacity, so the level-`φ` busy period is
    /// unbounded and no finite response-time bound exists.
    Overload {
        /// The subtask whose priority level is overloaded.
        subtask: SubtaskId,
        /// Utilization of the overloading set, scaled by 10⁶
        /// (`1_000_000` = 100%), computed exactly from tick arithmetic.
        utilization_ppm: u64,
    },
    /// A fixed-point iteration exceeded the configured bound cap: the bound
    /// grew beyond `failure_factor × period` and is treated as infinite
    /// (the paper's "failure" criterion, 300 × period by default).
    BoundExceedsCap {
        /// The subtask whose bound blew past the cap.
        subtask: SubtaskId,
        /// The cap that was exceeded.
        cap: Dur,
    },
    /// A fixed-point iteration failed to converge within the iteration
    /// budget. With integer ticks and monotone demand this indicates a
    /// pathological configuration rather than numerics.
    IterationLimit {
        /// The subtask being analyzed when the budget ran out.
        subtask: SubtaskId,
        /// The iteration budget that was exhausted.
        limit: u64,
    },
    /// Arithmetic overflowed `i64` ticks while evaluating a demand function;
    /// the workload's parameters are too large for the tick scale in use.
    ArithmeticOverflow {
        /// The subtask being analyzed when the overflow occurred.
        subtask: SubtaskId,
    },
}

impl AnalyzeError {
    /// The subtask the error is attributed to.
    pub fn subtask(&self) -> SubtaskId {
        match *self {
            AnalyzeError::Overload { subtask, .. }
            | AnalyzeError::BoundExceedsCap { subtask, .. }
            | AnalyzeError::IterationLimit { subtask, .. }
            | AnalyzeError::ArithmeticOverflow { subtask } => subtask,
        }
    }

    /// `true` if the error means "no finite bound exists / was found" (the
    /// paper's *failure* outcome) as opposed to a usage or numeric problem.
    pub fn is_failure(&self) -> bool {
        matches!(
            self,
            AnalyzeError::Overload { .. }
                | AnalyzeError::BoundExceedsCap { .. }
                | AnalyzeError::IterationLimit { .. }
        )
    }
}

impl fmt::Display for AnalyzeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalyzeError::Overload {
                subtask,
                utilization_ppm,
            } => write!(
                f,
                "priority level of subtask {subtask} is overloaded ({}.{:04}% utilization)",
                utilization_ppm / 10_000,
                utilization_ppm % 10_000
            ),
            AnalyzeError::BoundExceedsCap { subtask, cap } => write!(
                f,
                "bound for subtask {subtask} exceeded the failure cap of {cap} ticks"
            ),
            AnalyzeError::IterationLimit { subtask, limit } => write!(
                f,
                "fixed-point iteration for subtask {subtask} did not converge within {limit} steps"
            ),
            AnalyzeError::ArithmeticOverflow { subtask } => write!(
                f,
                "tick arithmetic overflowed while analyzing subtask {subtask}"
            ),
        }
    }
}

impl Error for AnalyzeError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::{ProcessorId, SubtaskId, TaskId};

    fn sid(t: usize, j: usize) -> SubtaskId {
        SubtaskId::new(TaskId::new(t), j)
    }

    #[test]
    fn display_messages_are_lowercase_and_nonempty() {
        let errors: Vec<Box<dyn Error>> = vec![
            Box::new(ValidateTaskSetError::EmptyChain(TaskId::new(0))),
            Box::new(ValidateTaskSetError::NonPositivePeriod(
                TaskId::new(1),
                Dur::ZERO,
            )),
            Box::new(ValidateTaskSetError::UnknownProcessor(
                sid(0, 0),
                ProcessorId::new(9),
            )),
            Box::new(ValidateTaskSetError::NoProcessors),
            Box::new(AnalyzeError::Overload {
                subtask: sid(2, 1),
                utilization_ppm: 1_050_000,
            }),
            Box::new(AnalyzeError::BoundExceedsCap {
                subtask: sid(2, 1),
                cap: Dur::from_ticks(300),
            }),
        ];
        for e in errors {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            let first = msg.chars().next().unwrap();
            assert!(first.is_lowercase() || first.is_numeric(), "{msg}");
            assert!(!msg.ends_with('.'), "{msg}");
        }
    }

    #[test]
    fn analyze_error_accessors() {
        let e = AnalyzeError::Overload {
            subtask: sid(3, 2),
            utilization_ppm: 1_200_000,
        };
        assert_eq!(e.subtask(), sid(3, 2));
        assert!(e.is_failure());
        let e = AnalyzeError::ArithmeticOverflow { subtask: sid(0, 0) };
        assert!(!e.is_failure());
        let e = AnalyzeError::IterationLimit {
            subtask: sid(0, 0),
            limit: 10,
        };
        assert!(e.is_failure());
        assert!(e.to_string().contains("10"));
    }

    #[test]
    fn overload_display_formats_percentage() {
        let e = AnalyzeError::Overload {
            subtask: sid(0, 0),
            utilization_ppm: 1_234_567,
        };
        let msg = e.to_string();
        assert!(msg.contains("123.4567%"), "{msg}");
    }
}
