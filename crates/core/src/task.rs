//! The end-to-end periodic task model of Sun & Liu.
//!
//! A [`TaskSet`] describes a distributed real-time system: a number of
//! processors and a set of independent periodic [`Task`]s. Each task is a
//! *chain* of [`Subtask`]s; consecutive subtasks of the same task execute on
//! different processors, and every subtask has a fixed priority on its host
//! processor.
//!
//! Instances of a task's *first* subtask are released periodically (one
//! every `period` ticks, starting at the task's `phase`); when the later
//! subtasks are released is decided by the synchronization protocol in use
//! (see [`crate::protocol`]).
//!
//! # Examples
//!
//! Example 2 of the paper — two processors, three tasks, `T₂` spanning both
//! processors:
//!
//! ```
//! use rtsync_core::task::{Priority, TaskSet};
//! use rtsync_core::time::{Dur, Time};
//!
//! let system = TaskSet::builder(2)
//!     // T1: one subtask on P0, period 4, execution 2, higher priority on P0.
//!     .task(Dur::from_ticks(4))
//!     .subtask(0, Dur::from_ticks(2), Priority::new(0))
//!     .finish_task()
//!     // T2: chain P0 -> P1, period 6.
//!     .task(Dur::from_ticks(6))
//!     .subtask(0, Dur::from_ticks(2), Priority::new(1))
//!     .subtask(1, Dur::from_ticks(3), Priority::new(0))
//!     .finish_task()
//!     // T3: one subtask on P1, period 6, phase 4, lower priority on P1.
//!     .task(Dur::from_ticks(6))
//!     .phase(Time::from_ticks(4))
//!     .subtask(1, Dur::from_ticks(2), Priority::new(1))
//!     .finish_task()
//!     .build()?;
//!
//! assert_eq!(system.num_tasks(), 3);
//! assert_eq!(system.num_processors(), 2);
//! # Ok::<(), rtsync_core::error::ValidateTaskSetError>(())
//! ```

use std::fmt;

use crate::error::ValidateTaskSetError;
use crate::time::{Dur, Time};

/// Identifies a task within a [`TaskSet`] (dense index, 0-based).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TaskId(usize);

impl TaskId {
    /// Creates a task id from a dense 0-based index.
    #[inline]
    pub const fn new(index: usize) -> TaskId {
        TaskId(index)
    }

    /// The dense 0-based index.
    #[inline]
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// Identifies a processor within a [`TaskSet`] (dense index, 0-based).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ProcessorId(usize);

impl ProcessorId {
    /// Creates a processor id from a dense 0-based index.
    #[inline]
    pub const fn new(index: usize) -> ProcessorId {
        ProcessorId(index)
    }

    /// The dense 0-based index.
    #[inline]
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for ProcessorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// Identifies a shared resource (dense index, 0-based). Resources model
/// critical sections — the paper's §6 "resource contention" future work —
/// under the Highest Locker (immediate priority ceiling) protocol: while a
/// job executes a critical section on resource `R`, it runs at `R`'s
/// priority ceiling (the highest priority of any subtask using `R`).
/// Every resource is local to one processor (remote blocking is out of
/// scope, as in the paper's model where links are processors).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ResourceId(usize);

impl ResourceId {
    /// Creates a resource id from a dense 0-based index.
    #[inline]
    pub const fn new(index: usize) -> ResourceId {
        ResourceId(index)
    }

    /// The dense 0-based index.
    #[inline]
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for ResourceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R{}", self.0)
    }
}

/// One critical section inside a subtask's execution: the job holds
/// `resource` while its *executed* amount is in `[start, start + len)`.
/// Sections are non-nested and lie strictly inside the execution budget.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct CriticalSection {
    /// The resource held.
    pub resource: ResourceId,
    /// Offset (in executed ticks) where the section begins.
    pub start: Dur,
    /// Length of the section in ticks.
    pub len: Dur,
}

impl CriticalSection {
    /// Offset one past the section's last tick.
    pub fn end(&self) -> Dur {
        self.start + self.len
    }
}

/// Identifies one subtask: the `index`-th link (0-based) in task `task`'s
/// chain. The paper writes this `T_{i,j}` with `j` 1-based; our `index` is
/// `j − 1`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct SubtaskId {
    task: TaskId,
    index: usize,
}

impl SubtaskId {
    /// Creates a subtask id.
    #[inline]
    pub const fn new(task: TaskId, index: usize) -> SubtaskId {
        SubtaskId { task, index }
    }

    /// The parent task.
    #[inline]
    pub const fn task(self) -> TaskId {
        self.task
    }

    /// Position in the chain, 0-based.
    #[inline]
    pub const fn index(self) -> usize {
        self.index
    }

    /// The immediate predecessor in the chain, if any.
    #[inline]
    pub fn predecessor(self) -> Option<SubtaskId> {
        self.index
            .checked_sub(1)
            .map(|i| SubtaskId::new(self.task, i))
    }

    /// The immediate successor in the chain. The caller must know the chain
    /// length to tell whether the successor exists; see
    /// [`Task::successor_of`].
    #[inline]
    pub fn successor_unchecked(self) -> SubtaskId {
        SubtaskId::new(self.task, self.index + 1)
    }

    /// `true` if this is the first subtask of its chain.
    #[inline]
    pub const fn is_first(self) -> bool {
        self.index == 0
    }
}

impl fmt::Display for SubtaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.task, self.index)
    }
}

/// A fixed priority level on a processor. **Lower numeric value means higher
/// priority** (deadline-monotonic convention): priority 0 preempts
/// priority 1.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Priority(u32);

impl Priority {
    /// The highest possible priority.
    pub const HIGHEST: Priority = Priority(0);

    /// Creates a priority level. Lower `level` = higher priority.
    #[inline]
    pub const fn new(level: u32) -> Priority {
        Priority(level)
    }

    /// The raw level (lower = higher priority).
    #[inline]
    pub const fn level(self) -> u32 {
        self.0
    }

    /// `true` if `self` strictly preempts `other`.
    #[inline]
    pub const fn is_higher_than(self, other: Priority) -> bool {
        self.0 < other.0
    }

    /// `true` if `self` is at least as high as `other` (the "`≥ φ`" test of
    /// the busy-period definitions).
    #[inline]
    pub const fn is_at_least(self, other: Priority) -> bool {
        self.0 <= other.0
    }
}

impl fmt::Display for Priority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "prio{}", self.0)
    }
}

/// One link of a task chain: a unit of work pinned to a processor with a
/// fixed priority and a worst-case execution time `c_{i,j}`.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Subtask {
    id: SubtaskId,
    processor: ProcessorId,
    execution: Dur,
    priority: Priority,
    preemptible: bool,
    critical_sections: Vec<CriticalSection>,
}

impl Subtask {
    /// The subtask's identity.
    #[inline]
    pub fn id(&self) -> SubtaskId {
        self.id
    }

    /// Host processor.
    #[inline]
    pub fn processor(&self) -> ProcessorId {
        self.processor
    }

    /// Worst-case execution time `c_{i,j}`.
    #[inline]
    pub fn execution(&self) -> Dur {
        self.execution
    }

    /// Fixed priority on the host processor.
    #[inline]
    pub fn priority(&self) -> Priority {
        self.priority
    }

    /// `true` if instances may be preempted mid-execution (the paper's
    /// base model). Non-preemptive subtasks — the extension of the paper's
    /// §6 future work — run to completion once started, and lower-priority
    /// non-preemptive work appears as a blocking term in the analyses.
    #[inline]
    pub fn is_preemptible(&self) -> bool {
        self.preemptible
    }

    /// Critical sections inside this subtask's execution, sorted by start
    /// offset (empty in the paper's base model).
    #[inline]
    pub fn critical_sections(&self) -> &[CriticalSection] {
        &self.critical_sections
    }
}

/// A periodic end-to-end task: a chain of subtasks with a period, a phase
/// (release time of the very first instance of the first subtask) and an
/// end-to-end relative deadline.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Task {
    id: TaskId,
    period: Dur,
    phase: Time,
    deadline: Dur,
    subtasks: Vec<Subtask>,
}

impl Task {
    /// The task's identity.
    #[inline]
    pub fn id(&self) -> TaskId {
        self.id
    }

    /// Period `p_i` — the minimum inter-release time of the first subtask.
    #[inline]
    pub fn period(&self) -> Dur {
        self.period
    }

    /// Phase `f_i` — release time of the first instance of the first
    /// subtask.
    #[inline]
    pub fn phase(&self) -> Time {
        self.phase
    }

    /// End-to-end relative deadline `D_i`.
    #[inline]
    pub fn deadline(&self) -> Dur {
        self.deadline
    }

    /// The chain of subtasks, in precedence order.
    #[inline]
    pub fn subtasks(&self) -> &[Subtask] {
        &self.subtasks
    }

    /// Number of subtasks `n_i` in the chain.
    #[inline]
    pub fn chain_len(&self) -> usize {
        self.subtasks.len()
    }

    /// The `index`-th subtask (0-based).
    ///
    /// # Panics
    ///
    /// Panics if `index >= chain_len()`.
    #[inline]
    pub fn subtask(&self, index: usize) -> &Subtask {
        &self.subtasks[index]
    }

    /// The last subtask of the chain.
    #[inline]
    pub fn last_subtask(&self) -> &Subtask {
        self.subtasks
            .last()
            .expect("validated chains are non-empty")
    }

    /// The successor of `id` within this chain, or `None` for the last link.
    pub fn successor_of(&self, id: SubtaskId) -> Option<SubtaskId> {
        debug_assert_eq!(id.task(), self.id);
        if id.index() + 1 < self.subtasks.len() {
            Some(id.successor_unchecked())
        } else {
            None
        }
    }

    /// Sum of the execution times of the whole chain, `Σ_j c_{i,j}` — a
    /// trivial lower bound on the end-to-end response time.
    pub fn total_execution(&self) -> Dur {
        self.subtasks.iter().map(Subtask::execution).sum()
    }

    /// Release time of the `m`-th (0-based) periodic instance of the first
    /// subtask: `phase + m · period`.
    pub fn nominal_release(&self, m: u64) -> Time {
        self.phase + self.period * (m as i64)
    }
}

/// A complete distributed system description: processors plus tasks.
///
/// `TaskSet` is immutable after construction and upholds the model
/// invariants (validated by [`TaskSetBuilder::build`]):
///
/// * every chain is non-empty, periods/deadlines/execution times positive;
/// * consecutive subtasks sit on different processors;
/// * per processor, priorities are unique.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TaskSet {
    num_processors: usize,
    tasks: Vec<Task>,
}

impl TaskSet {
    /// Starts building a task set for a system with `num_processors`
    /// processors.
    pub fn builder(num_processors: usize) -> TaskSetBuilder {
        TaskSetBuilder::new(num_processors)
    }

    /// Number of processors.
    #[inline]
    pub fn num_processors(&self) -> usize {
        self.num_processors
    }

    /// Number of tasks.
    #[inline]
    pub fn num_tasks(&self) -> usize {
        self.tasks.len()
    }

    /// All tasks, indexed by [`TaskId::index`].
    #[inline]
    pub fn tasks(&self) -> &[Task] {
        &self.tasks
    }

    /// Looks up a task.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this set.
    #[inline]
    pub fn task(&self, id: TaskId) -> &Task {
        &self.tasks[id.index()]
    }

    /// Looks up a subtask.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this set.
    #[inline]
    pub fn subtask(&self, id: SubtaskId) -> &Subtask {
        self.task(id.task()).subtask(id.index())
    }

    /// Iterates over every subtask in the system, in (task, chain) order.
    pub fn subtasks(&self) -> impl Iterator<Item = &Subtask> + '_ {
        self.tasks.iter().flat_map(|t| t.subtasks.iter())
    }

    /// Total number of subtasks across all tasks.
    pub fn num_subtasks(&self) -> usize {
        self.tasks.iter().map(Task::chain_len).sum()
    }

    /// Iterates over the subtasks hosted on `proc`.
    pub fn subtasks_on(&self, proc: ProcessorId) -> impl Iterator<Item = &Subtask> + '_ {
        self.subtasks().filter(move |s| s.processor() == proc)
    }

    /// The interference set `H_{i,j}` of the paper: subtasks on the same
    /// processor as `id` whose priority is **equal to or higher than**
    /// `id`'s, excluding `id` itself. (With unique per-processor priorities,
    /// "equal" never fires, but the definition is kept faithful.)
    pub fn interference_set(&self, id: SubtaskId) -> Vec<SubtaskId> {
        let me = self.subtask(id);
        self.subtasks_on(me.processor())
            .filter(|s| s.id() != id && s.priority().is_at_least(me.priority()))
            .map(Subtask::id)
            .collect()
    }

    /// Number of distinct resources referenced by the system
    /// (`max id + 1`; ids need not be dense in use).
    pub fn num_resources(&self) -> usize {
        self.subtasks()
            .flat_map(|s| s.critical_sections())
            .map(|cs| cs.resource.index() + 1)
            .max()
            .unwrap_or(0)
    }

    /// The priority ceiling of a resource: the highest priority of any
    /// subtask with a critical section on it (`None` if unused). Under the
    /// Highest Locker protocol a job inside a section runs at this
    /// ceiling.
    pub fn resource_ceiling(&self, resource: ResourceId) -> Option<Priority> {
        self.subtasks()
            .filter(|s| {
                s.critical_sections()
                    .iter()
                    .any(|cs| cs.resource == resource)
            })
            .map(Subtask::priority)
            .min() // numerically smallest = highest priority
    }

    /// The blocking bound `B_{i,j}` of a subtask — the longest time
    /// lower-priority work on the same processor can delay it, combining:
    ///
    /// * **non-preemptive blocking**: `max(c_k − 1, 0)` over lower-priority
    ///   non-preemptive subtasks (a blocker must have *started* at least a
    ///   tick before the victim's release);
    /// * **ceiling blocking** (Highest Locker): the longest critical
    ///   section of a lower-priority subtask on a resource whose ceiling
    ///   is at least this subtask's priority (entry can coincide with the
    ///   victim's release, so the full section length counts).
    ///
    /// Zero in the paper's fully preemptive, resource-free base model.
    pub fn blocking_bound(&self, id: SubtaskId) -> Dur {
        let me = self.subtask(id);
        let np = self
            .subtasks_on(me.processor())
            .filter(|s| !s.is_preemptible() && me.priority().is_higher_than(s.priority()))
            .map(|s| (s.execution() - Dur::from_ticks(1)).max(Dur::ZERO))
            .max()
            .unwrap_or(Dur::ZERO);
        let ceiling = self
            .subtasks_on(me.processor())
            .filter(|s| me.priority().is_higher_than(s.priority()))
            .flat_map(|s| s.critical_sections())
            .filter(|cs| {
                self.resource_ceiling(cs.resource)
                    .is_some_and(|c| c.is_at_least(me.priority()))
            })
            .map(|cs| cs.len)
            .max()
            .unwrap_or(Dur::ZERO);
        np.max(ceiling)
    }

    /// Approximate utilization of processor `proc` in parts-per-million
    /// (per-subtask truncating division; the error is below one ppm per
    /// subtask).
    ///
    /// Flooring can only *under*state the true utilization, so this
    /// number is safe for one kind of decision only: a **reject-only
    /// gate** that fires when the result strictly exceeds `1_000_000`
    /// (then the true utilization certainly exceeds 100% and no priority
    /// assignment is schedulable) — the admission engine's quick-reject
    /// uses exactly that direction. Never treat a value `≤ 1_000_000` as
    /// evidence of headroom; a saturated processor can floor to
    /// `999_999`. For a sum that never understates, see the
    /// ceiling-rounding
    /// [`utilization_ppm`](crate::analysis::busy_period::utilization_ppm).
    pub fn processor_utilization_ppm(&self, proc: ProcessorId) -> u64 {
        self.subtasks_on(proc)
            .map(|s| {
                let c = s.execution().ticks() as i128 * 1_000_000;
                let p = self.task(s.id().task()).period().ticks() as i128;
                (c / p) as u64
            })
            .sum()
    }

    /// The highest utilization over all processors, in ppm.
    pub fn max_processor_utilization_ppm(&self) -> u64 {
        (0..self.num_processors)
            .map(|p| self.processor_utilization_ppm(ProcessorId::new(p)))
            .max()
            .unwrap_or(0)
    }
}

/// Builder for a [`TaskSet`]; see the [module docs](self) for an example.
///
/// Tasks are added with [`TaskSetBuilder::task`], which hands back a
/// [`TaskChainBuilder`] for describing the chain; `finish_task` returns to
/// the set builder. [`TaskSetBuilder::build`] validates every model
/// invariant.
#[derive(Clone, Debug)]
pub struct TaskSetBuilder {
    num_processors: usize,
    tasks: Vec<Task>,
}

impl TaskSetBuilder {
    /// Creates a builder for a system with `num_processors` processors.
    pub fn new(num_processors: usize) -> TaskSetBuilder {
        TaskSetBuilder {
            num_processors,
            tasks: Vec::new(),
        }
    }

    /// Starts a new task with the given period. Phase defaults to
    /// [`Time::ZERO`] and the relative deadline defaults to the period
    /// (the paper's simulation setting).
    pub fn task(self, period: Dur) -> TaskChainBuilder {
        let id = TaskId::new(self.tasks.len());
        TaskChainBuilder {
            set: self,
            task: Task {
                id,
                period,
                phase: Time::ZERO,
                deadline: period,
                subtasks: Vec::new(),
            },
        }
    }

    /// Validates and produces the immutable [`TaskSet`].
    ///
    /// # Errors
    ///
    /// Returns the first [`ValidateTaskSetError`] violated, if any.
    pub fn build(self) -> Result<TaskSet, ValidateTaskSetError> {
        let set = TaskSet {
            num_processors: self.num_processors,
            tasks: self.tasks,
        };
        validate(&set)?;
        Ok(set)
    }
}

/// Builder for one task's chain; produced by [`TaskSetBuilder::task`].
#[derive(Clone, Debug)]
pub struct TaskChainBuilder {
    set: TaskSetBuilder,
    task: Task,
}

impl TaskChainBuilder {
    /// Sets the task's phase (default `Time::ZERO`).
    pub fn phase(mut self, phase: Time) -> TaskChainBuilder {
        self.task.phase = phase;
        self
    }

    /// Sets the end-to-end relative deadline (default: the period).
    pub fn deadline(mut self, deadline: Dur) -> TaskChainBuilder {
        self.task.deadline = deadline;
        self
    }

    /// Appends a (preemptible) subtask executing on processor `processor`
    /// for `execution` ticks at the given fixed priority.
    pub fn subtask(self, processor: usize, execution: Dur, priority: Priority) -> TaskChainBuilder {
        self.push_subtask(processor, execution, priority, true)
    }

    /// Appends a **non-preemptive** subtask: once an instance starts
    /// executing it runs to completion, blocking even higher-priority work
    /// on its processor (accounted as a blocking term by the analyses).
    pub fn nonpreemptive_subtask(
        self,
        processor: usize,
        execution: Dur,
        priority: Priority,
    ) -> TaskChainBuilder {
        self.push_subtask(processor, execution, priority, false)
    }

    /// Adds a critical section to the **most recently added** subtask: the
    /// job holds `resource` while its executed amount is in
    /// `[start, start + len)`, running at the resource's priority ceiling
    /// (Highest Locker protocol).
    ///
    /// # Panics
    ///
    /// Panics if no subtask has been added to this task yet. Range and
    /// overlap violations are reported by [`TaskSetBuilder::build`].
    pub fn critical_section(mut self, resource: usize, start: Dur, len: Dur) -> TaskChainBuilder {
        let sub = self
            .task
            .subtasks
            .last_mut()
            .expect("critical_section applies to the last added subtask");
        sub.critical_sections.push(CriticalSection {
            resource: ResourceId::new(resource),
            start,
            len,
        });
        self
    }

    fn push_subtask(
        mut self,
        processor: usize,
        execution: Dur,
        priority: Priority,
        preemptible: bool,
    ) -> TaskChainBuilder {
        let id = SubtaskId::new(self.task.id, self.task.subtasks.len());
        self.task.subtasks.push(Subtask {
            id,
            processor: ProcessorId::new(processor),
            execution,
            priority,
            preemptible,
            critical_sections: Vec::new(),
        });
        self
    }

    /// Finishes this task and returns to the set builder.
    pub fn finish_task(mut self) -> TaskSetBuilder {
        self.set.tasks.push(self.task);
        self.set
    }
}

fn validate(set: &TaskSet) -> Result<(), ValidateTaskSetError> {
    if set.num_processors == 0 {
        return Err(ValidateTaskSetError::NoProcessors);
    }
    for task in &set.tasks {
        if task.subtasks.is_empty() {
            return Err(ValidateTaskSetError::EmptyChain(task.id));
        }
        if !task.period.is_positive() {
            return Err(ValidateTaskSetError::NonPositivePeriod(
                task.id,
                task.period,
            ));
        }
        if !task.deadline.is_positive() {
            return Err(ValidateTaskSetError::NonPositiveDeadline(
                task.id,
                task.deadline,
            ));
        }
        if task.phase < Time::ZERO {
            return Err(ValidateTaskSetError::NegativePhase(task.id));
        }
        let mut prev_proc: Option<ProcessorId> = None;
        for sub in &task.subtasks {
            if !sub.execution.is_positive() {
                return Err(ValidateTaskSetError::NonPositiveExecution(
                    sub.id,
                    sub.execution,
                ));
            }
            if sub.processor.index() >= set.num_processors {
                return Err(ValidateTaskSetError::UnknownProcessor(
                    sub.id,
                    sub.processor,
                ));
            }
            if prev_proc == Some(sub.processor) {
                return Err(ValidateTaskSetError::ConsecutiveOnSameProcessor(
                    sub.id,
                    sub.processor,
                ));
            }
            prev_proc = Some(sub.processor);
        }
    }
    // Critical sections: positive length, inside the budget, disjoint and
    // sorted; resources local to one processor.
    let mut resource_home: Vec<Option<ProcessorId>> = vec![None; set.num_resources()];
    for task in &set.tasks {
        for sub in &task.subtasks {
            let mut prev_end = Dur::ZERO;
            let mut sections = sub.critical_sections.clone();
            sections.sort_by_key(|cs| cs.start);
            for cs in &sections {
                if !cs.len.is_positive() || cs.start < Dur::ZERO || cs.end() > sub.execution {
                    return Err(ValidateTaskSetError::CriticalSectionOutOfRange(
                        sub.id,
                        cs.resource,
                    ));
                }
                if cs.start < prev_end {
                    return Err(ValidateTaskSetError::CriticalSectionsOverlap(sub.id));
                }
                prev_end = cs.end();
                let home = &mut resource_home[cs.resource.index()];
                match home {
                    None => *home = Some(sub.processor),
                    Some(p) if *p != sub.processor => {
                        return Err(ValidateTaskSetError::ResourceSpansProcessors(
                            cs.resource,
                            *p,
                            sub.processor,
                        ))
                    }
                    Some(_) => {}
                }
            }
        }
    }

    // Unique priorities per processor.
    for proc in 0..set.num_processors {
        let proc = ProcessorId::new(proc);
        let mut seen: Vec<(Priority, SubtaskId)> = set
            .subtasks_on(proc)
            .map(|s| (s.priority(), s.id()))
            .collect();
        seen.sort();
        for pair in seen.windows(2) {
            if pair[0].0 == pair[1].0 {
                return Err(ValidateTaskSetError::DuplicatePriority(
                    pair[0].1, pair[1].1,
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(t: i64) -> Dur {
        Dur::from_ticks(t)
    }

    /// Example 2 of the paper (Figure 2).
    pub(crate) fn example2() -> TaskSet {
        TaskSet::builder(2)
            .task(d(4))
            .subtask(0, d(2), Priority::new(0))
            .finish_task()
            .task(d(6))
            .subtask(0, d(2), Priority::new(1))
            .subtask(1, d(3), Priority::new(0))
            .finish_task()
            .task(d(6))
            .phase(Time::from_ticks(4))
            .subtask(1, d(2), Priority::new(1))
            .finish_task()
            .build()
            .expect("example 2 is valid")
    }

    #[test]
    fn example2_shape() {
        let s = example2();
        assert_eq!(s.num_tasks(), 3);
        assert_eq!(s.num_processors(), 2);
        assert_eq!(s.num_subtasks(), 4);
        let t2 = s.task(TaskId::new(1));
        assert_eq!(t2.chain_len(), 2);
        assert_eq!(t2.period(), d(6));
        assert_eq!(t2.deadline(), d(6)); // defaults to period
        assert_eq!(t2.total_execution(), d(5));
        assert_eq!(s.task(TaskId::new(2)).phase(), Time::from_ticks(4));
    }

    #[test]
    fn subtask_lookup_and_ids() {
        let s = example2();
        let id = SubtaskId::new(TaskId::new(1), 1);
        let sub = s.subtask(id);
        assert_eq!(sub.id(), id);
        assert_eq!(sub.processor(), ProcessorId::new(1));
        assert_eq!(sub.execution(), d(3));
        assert_eq!(sub.priority(), Priority::new(0));
        assert_eq!(id.predecessor(), Some(SubtaskId::new(TaskId::new(1), 0)));
        assert_eq!(SubtaskId::new(TaskId::new(1), 0).predecessor(), None);
        assert!(SubtaskId::new(TaskId::new(1), 0).is_first());
        assert!(!id.is_first());
    }

    #[test]
    fn successor_of_respects_chain_end() {
        let s = example2();
        let t2 = s.task(TaskId::new(1));
        let first = SubtaskId::new(TaskId::new(1), 0);
        let second = SubtaskId::new(TaskId::new(1), 1);
        assert_eq!(t2.successor_of(first), Some(second));
        assert_eq!(t2.successor_of(second), None);
    }

    #[test]
    fn priority_ordering_convention() {
        let hi = Priority::new(0);
        let lo = Priority::new(5);
        assert!(hi.is_higher_than(lo));
        assert!(!lo.is_higher_than(hi));
        assert!(hi.is_at_least(hi));
        assert!(hi.is_at_least(lo));
        assert!(!lo.is_at_least(hi));
        assert_eq!(Priority::HIGHEST, Priority::new(0));
    }

    #[test]
    fn interference_set_excludes_self_and_lower() {
        let s = example2();
        // On P0: T0.0 (prio 0) and T1.0 (prio 1).
        let t00 = SubtaskId::new(TaskId::new(0), 0);
        let t10 = SubtaskId::new(TaskId::new(1), 0);
        assert_eq!(s.interference_set(t00), vec![]);
        assert_eq!(s.interference_set(t10), vec![t00]);
        // On P1: T1.1 (prio 0) and T2.0 (prio 1).
        let t11 = SubtaskId::new(TaskId::new(1), 1);
        let t20 = SubtaskId::new(TaskId::new(2), 0);
        assert_eq!(s.interference_set(t11), vec![]);
        assert_eq!(s.interference_set(t20), vec![t11]);
    }

    #[test]
    fn utilization_ppm() {
        let s = example2();
        // P0: 2/4 + 2/6 = 0.8333..
        let u0 = s.processor_utilization_ppm(ProcessorId::new(0));
        assert!((833_332..=833_334).contains(&u0), "{u0}");
        // P1: 3/6 + 2/6 = 0.8333..
        let u1 = s.processor_utilization_ppm(ProcessorId::new(1));
        assert!((833_332..=833_334).contains(&u1), "{u1}");
        assert_eq!(s.max_processor_utilization_ppm(), u0.max(u1));
    }

    #[test]
    fn nominal_release_times() {
        let s = example2();
        let t3 = s.task(TaskId::new(2));
        assert_eq!(t3.nominal_release(0), Time::from_ticks(4));
        assert_eq!(t3.nominal_release(1), Time::from_ticks(10));
        assert_eq!(t3.nominal_release(3), Time::from_ticks(22));
    }

    #[test]
    fn rejects_empty_chain() {
        let err = TaskSet::builder(1)
            .task(d(10))
            .finish_task()
            .build()
            .unwrap_err();
        assert_eq!(err, ValidateTaskSetError::EmptyChain(TaskId::new(0)));
    }

    #[test]
    fn rejects_bad_period_and_deadline() {
        let err = TaskSet::builder(1)
            .task(d(0))
            .subtask(0, d(1), Priority::new(0))
            .finish_task()
            .build()
            .unwrap_err();
        assert!(matches!(err, ValidateTaskSetError::NonPositivePeriod(..)));

        let err = TaskSet::builder(1)
            .task(d(5))
            .deadline(d(-1))
            .subtask(0, d(1), Priority::new(0))
            .finish_task()
            .build()
            .unwrap_err();
        assert!(matches!(err, ValidateTaskSetError::NonPositiveDeadline(..)));
    }

    #[test]
    fn rejects_zero_execution() {
        let err = TaskSet::builder(1)
            .task(d(5))
            .subtask(0, d(0), Priority::new(0))
            .finish_task()
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            ValidateTaskSetError::NonPositiveExecution(..)
        ));
    }

    #[test]
    fn rejects_unknown_processor() {
        let err = TaskSet::builder(1)
            .task(d(5))
            .subtask(3, d(1), Priority::new(0))
            .finish_task()
            .build()
            .unwrap_err();
        assert!(matches!(err, ValidateTaskSetError::UnknownProcessor(..)));
    }

    #[test]
    fn rejects_consecutive_same_processor() {
        let err = TaskSet::builder(2)
            .task(d(10))
            .subtask(0, d(1), Priority::new(0))
            .subtask(0, d(1), Priority::new(1))
            .finish_task()
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            ValidateTaskSetError::ConsecutiveOnSameProcessor(..)
        ));
    }

    #[test]
    fn allows_nonconsecutive_same_processor() {
        // A -> B -> A is legal: only *consecutive* subtasks must differ.
        let set = TaskSet::builder(2)
            .task(d(10))
            .subtask(0, d(1), Priority::new(0))
            .subtask(1, d(1), Priority::new(0))
            .subtask(0, d(1), Priority::new(1))
            .finish_task()
            .build();
        assert!(set.is_ok());
    }

    #[test]
    fn rejects_duplicate_priorities_on_processor() {
        let err = TaskSet::builder(1)
            .task(d(5))
            .subtask(0, d(1), Priority::new(0))
            .finish_task()
            .task(d(7))
            .subtask(0, d(1), Priority::new(0))
            .finish_task()
            .build()
            .unwrap_err();
        assert!(matches!(err, ValidateTaskSetError::DuplicatePriority(..)));
    }

    #[test]
    fn allows_same_priority_on_different_processors() {
        let set = TaskSet::builder(2)
            .task(d(5))
            .subtask(0, d(1), Priority::new(0))
            .finish_task()
            .task(d(7))
            .subtask(1, d(1), Priority::new(0))
            .finish_task()
            .build();
        assert!(set.is_ok());
    }

    #[test]
    fn rejects_negative_phase_and_no_processors() {
        let err = TaskSet::builder(1)
            .task(d(5))
            .phase(Time::from_ticks(-1))
            .subtask(0, d(1), Priority::new(0))
            .finish_task()
            .build()
            .unwrap_err();
        assert!(matches!(err, ValidateTaskSetError::NegativePhase(..)));

        let err = TaskSet::builder(0).build().unwrap_err();
        assert_eq!(err, ValidateTaskSetError::NoProcessors);
    }

    #[test]
    fn display_formats() {
        assert_eq!(TaskId::new(2).to_string(), "T2");
        assert_eq!(ProcessorId::new(1).to_string(), "P1");
        assert_eq!(SubtaskId::new(TaskId::new(2), 1).to_string(), "T2.1");
        assert_eq!(Priority::new(3).to_string(), "prio3");
    }

    #[test]
    fn nonpreemptive_flag_and_blocking_bound() {
        // P0 hosts: T0 (prio 0, preemptible), T1 (prio 1, non-preemptive
        // c=5), T2 (prio 2, non-preemptive c=3).
        let set = TaskSet::builder(1)
            .task(d(20))
            .subtask(0, d(2), Priority::new(0))
            .finish_task()
            .task(d(20))
            .nonpreemptive_subtask(0, d(5), Priority::new(1))
            .finish_task()
            .task(d(20))
            .nonpreemptive_subtask(0, d(3), Priority::new(2))
            .finish_task()
            .build()
            .unwrap();
        let s0 = SubtaskId::new(TaskId::new(0), 0);
        let s1 = SubtaskId::new(TaskId::new(1), 0);
        let s2 = SubtaskId::new(TaskId::new(2), 0);
        assert!(set.subtask(s0).is_preemptible());
        assert!(!set.subtask(s1).is_preemptible());
        // T0 can be blocked by either: worst is c=5 → B = 4.
        assert_eq!(set.blocking_bound(s0), d(4));
        // T1 can only be blocked by T2: B = 2.
        assert_eq!(set.blocking_bound(s1), d(2));
        // Nothing below T2: B = 0.
        assert_eq!(set.blocking_bound(s2), Dur::ZERO);
    }

    #[test]
    fn preemptible_default_gives_zero_blocking() {
        let s = example2();
        for sub in s.subtasks() {
            assert!(sub.is_preemptible());
            assert_eq!(s.blocking_bound(sub.id()), Dur::ZERO);
        }
    }

    /// P0 hosts three subtasks sharing resource 0 with mixed priorities.
    fn cs_system() -> TaskSet {
        TaskSet::builder(1)
            .task(d(50))
            .subtask(0, d(5), Priority::new(0)) // high, uses R0 briefly
            .critical_section(0, d(1), d(2))
            .finish_task()
            .task(d(60))
            .subtask(0, d(8), Priority::new(1)) // mid, no resources
            .finish_task()
            .task(d(80))
            .subtask(0, d(10), Priority::new(2)) // low, long R0 section
            .critical_section(0, d(2), d(6))
            .finish_task()
            .build()
            .expect("cs system is valid")
    }

    #[test]
    fn resource_ceiling_and_counts() {
        let s = cs_system();
        assert_eq!(s.num_resources(), 1);
        assert_eq!(
            s.resource_ceiling(ResourceId::new(0)),
            Some(Priority::new(0))
        );
        assert_eq!(s.resource_ceiling(ResourceId::new(5)), None);
        let high = s.subtask(SubtaskId::new(TaskId::new(0), 0));
        assert_eq!(high.critical_sections().len(), 1);
        assert_eq!(high.critical_sections()[0].end(), d(3));
    }

    #[test]
    fn ceiling_blocking_bounds() {
        let s = cs_system();
        let high = SubtaskId::new(TaskId::new(0), 0);
        let mid = SubtaskId::new(TaskId::new(1), 0);
        let low = SubtaskId::new(TaskId::new(2), 0);
        // High can be blocked by low's 6-tick section (ceiling = high).
        assert_eq!(s.blocking_bound(high), d(6));
        // Mid is blocked too: low's section runs at ceiling 0 >= mid's 1.
        assert_eq!(s.blocking_bound(mid), d(6));
        // Low has nothing below it.
        assert_eq!(s.blocking_bound(low), Dur::ZERO);
    }

    #[test]
    fn ceiling_blocking_combines_with_nonpreemptive() {
        // A 9-tick non-preemptive blocker (B = 8) beats a 6-tick section.
        let s = TaskSet::builder(1)
            .task(d(50))
            .subtask(0, d(5), Priority::new(0))
            .critical_section(0, d(0), d(1))
            .finish_task()
            .task(d(60))
            .nonpreemptive_subtask(0, d(9), Priority::new(1))
            .finish_task()
            .task(d(80))
            .subtask(0, d(10), Priority::new(2))
            .critical_section(0, d(0), d(6))
            .finish_task()
            .build()
            .unwrap();
        assert_eq!(s.blocking_bound(SubtaskId::new(TaskId::new(0), 0)), d(8));
    }

    #[test]
    fn rejects_out_of_range_and_overlapping_sections() {
        let err = TaskSet::builder(1)
            .task(d(10))
            .subtask(0, d(4), Priority::new(0))
            .critical_section(0, d(3), d(5)) // ends at 8 > exec 4
            .finish_task()
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            ValidateTaskSetError::CriticalSectionOutOfRange(..)
        ));
        let err = TaskSet::builder(1)
            .task(d(10))
            .subtask(0, d(6), Priority::new(0))
            .critical_section(0, d(0), d(3))
            .critical_section(1, d(2), d(2)) // overlaps [0,3)
            .finish_task()
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            ValidateTaskSetError::CriticalSectionsOverlap(..)
        ));
        let err = TaskSet::builder(1)
            .task(d(10))
            .subtask(0, d(4), Priority::new(0))
            .critical_section(0, d(0), d(0)) // zero length
            .finish_task()
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            ValidateTaskSetError::CriticalSectionOutOfRange(..)
        ));
    }

    #[test]
    fn rejects_cross_processor_resources() {
        let err = TaskSet::builder(2)
            .task(d(10))
            .subtask(0, d(4), Priority::new(0))
            .critical_section(0, d(0), d(2))
            .finish_task()
            .task(d(12))
            .subtask(1, d(4), Priority::new(0))
            .critical_section(0, d(0), d(2))
            .finish_task()
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            ValidateTaskSetError::ResourceSpansProcessors(..)
        ));
    }

    #[test]
    fn subtasks_on_filters_by_processor() {
        let s = example2();
        let on_p0: Vec<_> = s.subtasks_on(ProcessorId::new(0)).map(|x| x.id()).collect();
        assert_eq!(
            on_p0,
            vec![
                SubtaskId::new(TaskId::new(0), 0),
                SubtaskId::new(TaskId::new(1), 0)
            ]
        );
        assert_eq!(s.subtasks_on(ProcessorId::new(1)).count(), 2);
    }
}
