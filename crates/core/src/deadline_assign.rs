//! Local (per-subtask) deadline assignment.
//!
//! The paper's priority policy, Proportional-Deadline-Monotonic, is
//! "similar to the Equal Flexibility assignment in [Kao & Garcia-Molina
//! 1993]". That lineage splits an end-to-end deadline `D_i` into local
//! deadlines `d_{i,j}` for the subtasks, which can then drive
//! deadline-monotonic priorities per processor. This module implements the
//! classic family:
//!
//! * **Ultimate deadline (UD)** — every subtask inherits the end-to-end
//!   deadline: `d_{i,j} = D_i`.
//! * **Effective deadline (ED)** — a subtask must leave enough time for
//!   its successors to execute: `d_{i,j} = D_i − Σ_{k>j} c_{i,k}`.
//! * **Equal slack (EQS)** — the end-to-end slack `D_i − Σ c` is divided
//!   evenly among the subtasks:
//!   `d_{i,j} = Σ_{k≤j} c_{i,k} + j·(D_i − Σ_k c_{i,k}) / n_i` (cumulative
//!   form, so local deadlines are monotone along the chain).
//! * **Equal flexibility (EQF)** — slack divided *in proportion to
//!   execution time*, which in cumulative form makes the per-subtask
//!   deadline *spans* exactly the paper's proportional deadlines
//!   `PD_{i,j} = c_{i,j}·D_i / Σ_k c_{i,k}`.
//!
//! All arithmetic is exact: local deadlines are computed as integer ticks
//! with floor division (conservative — a subtask never gets more time than
//! the real-valued formula allows). [`LocalDeadlineMonotonic`] turns any
//! of these into a [`PriorityPolicy`]: on each processor, shorter local
//! deadline *span* (the time the assignment budgets for that subtask)
//! means higher priority. With [`DeadlineSplit::EqualFlexibility`] this
//! reproduces the paper's PDM ordering exactly (tested).

use std::fmt;

use crate::priority::{ChainSpec, PriorityKey, PriorityPolicy};
use crate::task::{SubtaskId, TaskSet};
use crate::time::Dur;

/// A rule for splitting an end-to-end deadline into local deadlines.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DeadlineSplit {
    /// `d_{i,j} = D_i` for every subtask.
    Ultimate,
    /// `d_{i,j} = D_i − Σ_{k>j} c_{i,k}`.
    Effective,
    /// Slack divided evenly among subtasks.
    EqualSlack,
    /// Slack divided in proportion to execution time (the paper's PDM
    /// lineage).
    EqualFlexibility,
}

impl DeadlineSplit {
    /// All four rules, in the classic order.
    pub const ALL: [DeadlineSplit; 4] = [
        DeadlineSplit::Ultimate,
        DeadlineSplit::Effective,
        DeadlineSplit::EqualSlack,
        DeadlineSplit::EqualFlexibility,
    ];

    /// Short tag, e.g. `"EQF"`.
    pub fn tag(self) -> &'static str {
        match self {
            DeadlineSplit::Ultimate => "UD",
            DeadlineSplit::Effective => "ED",
            DeadlineSplit::EqualSlack => "EQS",
            DeadlineSplit::EqualFlexibility => "EQF",
        }
    }

    /// The *cumulative* local deadline of each subtask of a chain with
    /// total deadline `deadline` and execution times `execs`: instance `m`
    /// of subtask `j` is meant to finish within `d_j` of the chain's
    /// release. Values are non-decreasing along the chain and the last
    /// equals the end-to-end deadline (except UD, where all equal it).
    pub fn cumulative(self, deadline: Dur, execs: &[Dur]) -> Vec<Dur> {
        let n = execs.len() as i64;
        let total: Dur = execs.iter().copied().sum();
        let slack = (deadline - total).max(Dur::ZERO);
        let mut cum = Dur::ZERO; // Σ_{k≤j} c
        execs
            .iter()
            .enumerate()
            .map(|(idx, &c)| {
                cum += c;
                let j = idx as i64 + 1;
                match self {
                    DeadlineSplit::Ultimate => deadline,
                    DeadlineSplit::Effective => deadline - (total - cum),
                    DeadlineSplit::EqualSlack => cum + Dur::from_ticks(slack.ticks() * j / n),
                    DeadlineSplit::EqualFlexibility => {
                        if total.is_zero() {
                            deadline
                        } else {
                            cum + Dur::from_ticks(
                                (slack.ticks() as i128 * cum.ticks() as i128
                                    / total.ticks() as i128) as i64,
                            )
                        }
                    }
                }
            })
            .collect()
    }

    /// The local deadline *span* budgeted for subtask `j`: the cumulative
    /// deadline minus the predecessor's (the window the assignment gives
    /// this link alone). This is the quantity deadline-monotonic ordering
    /// ranks by.
    pub fn spans(self, deadline: Dur, execs: &[Dur]) -> Vec<Dur> {
        let cum = self.cumulative(deadline, execs);
        let mut prev = Dur::ZERO;
        cum.into_iter()
            .enumerate()
            .map(|(idx, d)| {
                // UD gives every subtask the whole deadline; span == D.
                if self == DeadlineSplit::Ultimate {
                    return deadline;
                }
                let span = d - prev;
                let _ = idx;
                prev = d;
                span
            })
            .collect()
    }

    /// Computes cumulative local deadlines for every subtask of a task set.
    pub fn assign(self, set: &TaskSet) -> LocalDeadlines {
        let per_task = set
            .tasks()
            .iter()
            .map(|t| {
                let execs: Vec<Dur> = t.subtasks().iter().map(|s| s.execution()).collect();
                self.cumulative(t.deadline(), &execs)
            })
            .collect();
        LocalDeadlines { per_task }
    }
}

impl fmt::Display for DeadlineSplit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            DeadlineSplit::Ultimate => "ultimate deadline",
            DeadlineSplit::Effective => "effective deadline",
            DeadlineSplit::EqualSlack => "equal slack",
            DeadlineSplit::EqualFlexibility => "equal flexibility",
        };
        write!(f, "{name}")
    }
}

/// Cumulative local deadlines per subtask, produced by
/// [`DeadlineSplit::assign`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LocalDeadlines {
    per_task: Vec<Vec<Dur>>,
}

impl LocalDeadlines {
    /// The cumulative local deadline of one subtask (relative to the
    /// chain's release).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn cumulative(&self, id: SubtaskId) -> Dur {
        self.per_task[id.task().index()][id.index()]
    }

    /// The local deadline span of one subtask.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn span(&self, id: SubtaskId) -> Dur {
        let row = &self.per_task[id.task().index()];
        let prev = if id.index() == 0 {
            Dur::ZERO
        } else {
            row[id.index() - 1]
        };
        row[id.index()] - prev
    }

    /// Raw cumulative deadlines, `[task][chain index]`.
    pub fn as_slices(&self) -> &[Vec<Dur>] {
        &self.per_task
    }
}

/// A [`PriorityPolicy`] ranking subtasks on each processor by the local
/// deadline *span* a [`DeadlineSplit`] gives them (shorter = higher).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct LocalDeadlineMonotonic(pub DeadlineSplit);

impl PriorityPolicy for LocalDeadlineMonotonic {
    fn name(&self) -> &'static str {
        match self.0 {
            DeadlineSplit::Ultimate => "local-dm/ultimate",
            DeadlineSplit::Effective => "local-dm/effective",
            DeadlineSplit::EqualSlack => "local-dm/equal-slack",
            DeadlineSplit::EqualFlexibility => "local-dm/equal-flexibility",
        }
    }

    fn key(&self, chains: &[ChainSpec], task_index: usize, subtask_index: usize) -> PriorityKey {
        let chain = &chains[task_index];
        let execs: Vec<Dur> = chain.subtasks.iter().map(|&(_, c)| c).collect();
        let spans = self.0.spans(chain.deadline, &execs);
        PriorityKey::integer(spans[subtask_index].ticks() as i128)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::examples::example2;
    use crate::priority::{build_with_policy, ProportionalDeadlineMonotonic};
    use crate::task::{ProcessorId, TaskId};

    fn d(x: i64) -> Dur {
        Dur::from_ticks(x)
    }

    #[test]
    fn ultimate_gives_everyone_the_full_deadline() {
        let cum = DeadlineSplit::Ultimate.cumulative(d(100), &[d(10), d(20), d(30)]);
        assert_eq!(cum, vec![d(100), d(100), d(100)]);
        let spans = DeadlineSplit::Ultimate.spans(d(100), &[d(10), d(20), d(30)]);
        assert_eq!(spans, vec![d(100), d(100), d(100)]);
    }

    #[test]
    fn effective_reserves_successor_execution() {
        // D=100, execs 10/20/30: d1 = 100-50 = 50; d2 = 100-30 = 70; d3 = 100.
        let cum = DeadlineSplit::Effective.cumulative(d(100), &[d(10), d(20), d(30)]);
        assert_eq!(cum, vec![d(50), d(70), d(100)]);
    }

    #[test]
    fn equal_slack_divides_evenly() {
        // Slack = 100 - 60 = 40, three subtasks → 13⅓ each (floored cumulatively).
        let cum = DeadlineSplit::EqualSlack.cumulative(d(100), &[d(10), d(20), d(30)]);
        assert_eq!(cum, vec![d(10 + 13), d(30 + 26), d(60 + 40)]);
        // Last always reaches the end-to-end deadline.
        assert_eq!(*cum.last().unwrap(), d(100));
    }

    #[test]
    fn equal_flexibility_spans_are_the_papers_proportional_deadlines() {
        // D=100, execs 10/30 (total 40): PD_1 = 10/40·100 = 25,
        // PD_2 = 30/40·100 = 75. EQF cumulative: 10 + 60·10/40 = 25;
        // 40 + 60·40/40 = 100. Spans: 25, 75. Exactly PDM's keys.
        let spans = DeadlineSplit::EqualFlexibility.spans(d(100), &[d(10), d(30)]);
        assert_eq!(spans, vec![d(25), d(75)]);
    }

    #[test]
    fn cumulative_deadlines_are_monotone_and_end_at_d() {
        for split in DeadlineSplit::ALL {
            let cum = split.cumulative(d(97), &[d(5), d(11), d(3), d(20)]);
            for w in cum.windows(2) {
                assert!(w[0] <= w[1], "{split:?}: {cum:?}");
            }
            if split != DeadlineSplit::Ultimate {
                assert_eq!(*cum.last().unwrap(), d(97), "{split:?}");
            }
        }
    }

    #[test]
    fn tight_deadline_leaves_zero_slack() {
        // D == Σc: every split degenerates to cumulative execution
        // (except UD).
        let execs = [d(10), d(20)];
        for split in [
            DeadlineSplit::Effective,
            DeadlineSplit::EqualSlack,
            DeadlineSplit::EqualFlexibility,
        ] {
            assert_eq!(
                split.cumulative(d(30), &execs),
                vec![d(10), d(30)],
                "{split:?}"
            );
        }
    }

    #[test]
    fn assign_and_lookup_on_example2() {
        let set = example2();
        let ld = DeadlineSplit::EqualFlexibility.assign(&set);
        // T1 (chain 2+3=5, D=6, slack 1): cumulative 2 + 1·2/5 = 2, then 6.
        let t1_first = SubtaskId::new(TaskId::new(1), 0);
        let t1_second = SubtaskId::new(TaskId::new(1), 1);
        assert_eq!(ld.cumulative(t1_first), d(2));
        assert_eq!(ld.cumulative(t1_second), d(6));
        assert_eq!(ld.span(t1_first), d(2));
        assert_eq!(ld.span(t1_second), d(4));
        assert_eq!(ld.as_slices().len(), 3);
    }

    #[test]
    fn eqf_local_dm_matches_pdm_ordering() {
        // The headline correspondence: LocalDeadlineMonotonic(EQF) orders
        // subtasks identically to the paper's PDM on every processor.
        use crate::priority::ChainSpec;
        let chains = vec![
            ChainSpec::new(d(100), vec![(0, d(10)), (1, d(30))]),
            ChainSpec::new(d(200), vec![(1, d(20)), (0, d(20))]),
            ChainSpec::new(d(150), vec![(0, d(5)), (1, d(45)), (0, d(10))]),
        ];
        let pdm = build_with_policy(2, &chains, &ProportionalDeadlineMonotonic).unwrap();
        let eqf = build_with_policy(
            2,
            &chains,
            &LocalDeadlineMonotonic(DeadlineSplit::EqualFlexibility),
        )
        .unwrap();
        for p in 0..2 {
            let proc = ProcessorId::new(p);
            let order = |set: &TaskSet| {
                let mut v: Vec<_> = set
                    .subtasks_on(proc)
                    .map(|s| (s.priority(), s.id()))
                    .collect();
                v.sort();
                v.into_iter().map(|(_, id)| id).collect::<Vec<_>>()
            };
            assert_eq!(order(&pdm), order(&eqf), "{proc}");
        }
    }

    #[test]
    fn splits_produce_different_priority_orders() {
        use crate::priority::ChainSpec;
        // A chain whose tail is heavy: UD ranks by D (ties), ED gives the
        // head a short deadline, EQF spreads by execution.
        let chains = vec![
            ChainSpec::new(d(100), vec![(0, d(5)), (1, d(50))]),
            ChainSpec::new(d(110), vec![(0, d(40)), (1, d(5))]),
        ];
        let ed = build_with_policy(
            2,
            &chains,
            &LocalDeadlineMonotonic(DeadlineSplit::Effective),
        )
        .unwrap();
        let ud = build_with_policy(2, &chains, &LocalDeadlineMonotonic(DeadlineSplit::Ultimate))
            .unwrap();
        // Under ED on P0: T0.0 gets d=50 span 50, T1.0 gets d=105 span 105
        // → T0.0 higher. Under UD: spans 100 vs 110 → also T0.0… pick the
        // head-to-head that differs: P1: ED spans: T0.1: 100-50=50 vs
        // T1.1: 110-105=5 → T1.1 higher; UD: 100 vs 110 → T0.1 higher.
        let t01 = SubtaskId::new(TaskId::new(0), 1);
        let t11 = SubtaskId::new(TaskId::new(1), 1);
        assert!(ed
            .subtask(t11)
            .priority()
            .is_higher_than(ed.subtask(t01).priority()));
        assert!(ud
            .subtask(t01)
            .priority()
            .is_higher_than(ud.subtask(t11).priority()));
    }

    #[test]
    fn display_and_tags() {
        assert_eq!(DeadlineSplit::Ultimate.tag(), "UD");
        assert_eq!(
            DeadlineSplit::EqualFlexibility.to_string(),
            "equal flexibility"
        );
        assert_eq!(
            LocalDeadlineMonotonic(DeadlineSplit::EqualSlack).name(),
            "local-dm/equal-slack"
        );
        assert_eq!(DeadlineSplit::ALL.len(), 4);
    }
}
