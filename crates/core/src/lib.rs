//! # rtsync-core
//!
//! The primary contribution of Sun & Liu, *"Synchronization Protocols in
//! Distributed Real-Time Systems"* (ICDCS 1996), as a Rust library:
//!
//! * the **end-to-end periodic task model** — tasks as chains of subtasks
//!   over multiple processors, fixed-priority scheduled ([`task`]);
//! * the four **synchronization protocols** — Direct Synchronization,
//!   Phase Modification, Modified Phase Modification and Release Guard
//!   ([`protocol`], [`release_guard`], [`phase`]);
//! * the **schedulability analyses** — Algorithm SA/PM (busy-period
//!   analysis, valid for PM/MPM/RG) and Algorithm SA/DS (iterated IEERT
//!   with the jitter/clumping correction) ([`analysis`]);
//! * **priority assignment** — the paper's Proportional-Deadline-Monotonic
//!   policy and classic alternatives ([`priority`]).
//!
//! The discrete-event simulator that executes these protocols lives in the
//! companion crate `rtsync-sim`; synthetic workload generation (§5.1 of
//! the paper) in `rtsync-workload`; the figure-reproduction harness in
//! `rtsync-experiments`.
//!
//! ## Quick example
//!
//! Analyze the paper's Example 2 under two protocols:
//!
//! ```
//! use rtsync_core::analysis::report::analyze;
//! use rtsync_core::analysis::AnalysisConfig;
//! use rtsync_core::examples::example2;
//! use rtsync_core::protocol::Protocol;
//!
//! let system = example2();
//! let cfg = AnalysisConfig::default();
//!
//! let under_ds = analyze(&system, Protocol::DirectSync, &cfg)?;
//! let under_rg = analyze(&system, Protocol::ReleaseGuard, &cfg)?;
//!
//! // T3 (index 2) is provably schedulable under RG but not under DS.
//! use rtsync_core::task::TaskId;
//! assert!(!under_ds.verdict(TaskId::new(2)).schedulable());
//! assert!(under_rg.verdict(TaskId::new(2)).schedulable());
//! # Ok::<(), rtsync_core::error::AnalyzeError>(())
//! ```
//!
//! All time quantities are integer ticks (see [`time`]); the analyses and
//! the simulator are exact and deterministic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod deadline_assign;
pub mod error;
pub mod examples;
pub mod phase;
pub mod priority;
pub mod protocol;
pub mod release_guard;
pub mod task;
pub mod textfmt;
pub mod time;

pub use analysis::AnalysisConfig;
pub use protocol::Protocol;
pub use task::{Priority, ProcessorId, Subtask, SubtaskId, Task, TaskId, TaskSet};
pub use time::{Dur, Time};
