//! Integer-tick time arithmetic.
//!
//! Every quantity of time in this workspace is an integer number of *ticks*.
//! Exact integer arithmetic is what makes the rest of the system trustworthy:
//! the busy-period fixed-point equations of the schedulability analyses
//! detect convergence by equality, the discrete-event simulator replays
//! deterministically, and property tests can assert exact invariants without
//! epsilon fudging.
//!
//! Two newtypes keep instants and durations from being mixed up
//! ([C-NEWTYPE]):
//!
//! * [`Time`] — an absolute instant on the global timeline (ticks since the
//!   origin; the origin is whatever the caller decides, conventionally the
//!   earliest phase in the system).
//! * [`Dur`] — a signed length of time.
//!
//! `Time − Time = Dur`, `Time ± Dur = Time`, and `Dur` supports the usual
//! additive arithmetic plus the ceiling/floor divisions the analyses need.
//!
//! # Examples
//!
//! ```
//! use rtsync_core::time::{Dur, Time};
//!
//! let release = Time::from_ticks(40);
//! let completion = Time::from_ticks(90);
//! let response: Dur = completion - release;
//! assert_eq!(response, Dur::from_ticks(50));
//! assert_eq!(release + Dur::from_ticks(10), Time::from_ticks(50));
//!
//! // `ceil_div` counts how many whole periods fit a demand window, the
//! // core operation of busy-period analysis.
//! assert_eq!(Dur::from_ticks(10).ceil_div(Dur::from_ticks(4)), 3);
//! ```

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A signed duration in integer ticks.
///
/// `Dur` is `Copy` and totally ordered. Arithmetic panics on overflow in
/// debug builds (standard integer semantics); the analyses use
/// [`Dur::checked_add`] and [`Dur::checked_mul`] where workload parameters
/// could plausibly overflow `i64`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Dur(i64);

/// An absolute instant in integer ticks since the timeline origin.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(i64);

impl Dur {
    /// The zero duration.
    pub const ZERO: Dur = Dur(0);
    /// The largest representable duration; used as an "effectively infinite"
    /// sentinel by iteration caps.
    pub const MAX: Dur = Dur(i64::MAX);

    /// Creates a duration from a raw tick count.
    ///
    /// ```
    /// # use rtsync_core::time::Dur;
    /// assert_eq!(Dur::from_ticks(7).ticks(), 7);
    /// ```
    #[inline]
    pub const fn from_ticks(ticks: i64) -> Dur {
        Dur(ticks)
    }

    /// Returns the raw tick count.
    #[inline]
    pub const fn ticks(self) -> i64 {
        self.0
    }

    /// Returns `true` if this duration is exactly zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Returns `true` if this duration is strictly positive.
    #[inline]
    pub const fn is_positive(self) -> bool {
        self.0 > 0
    }

    /// Returns `true` if this duration is strictly negative.
    #[inline]
    pub const fn is_negative(self) -> bool {
        self.0 < 0
    }

    /// Checked addition; `None` on overflow.
    #[inline]
    pub fn checked_add(self, rhs: Dur) -> Option<Dur> {
        self.0.checked_add(rhs.0).map(Dur)
    }

    /// Checked multiplication by a scalar; `None` on overflow.
    #[inline]
    pub fn checked_mul(self, rhs: i64) -> Option<Dur> {
        self.0.checked_mul(rhs).map(Dur)
    }

    /// Saturating addition.
    #[inline]
    pub fn saturating_add(self, rhs: Dur) -> Dur {
        Dur(self.0.saturating_add(rhs.0))
    }

    /// Saturating multiplication by a scalar.
    #[inline]
    pub fn saturating_mul(self, rhs: i64) -> Dur {
        Dur(self.0.saturating_mul(rhs))
    }

    /// `⌈self / rhs⌉` for positive divisors: the number of periods of length
    /// `rhs` needed to cover `self`. Negative or zero `self` yields the
    /// mathematically correct ceiling (e.g. `⌈-1/4⌉ = 0`).
    ///
    /// This is the `⌈t/p⌉` term of the busy-period demand functions.
    ///
    /// # Panics
    ///
    /// Panics if `rhs` is not strictly positive.
    ///
    /// ```
    /// # use rtsync_core::time::Dur;
    /// let p = Dur::from_ticks(4);
    /// assert_eq!(Dur::from_ticks(0).ceil_div(p), 0);
    /// assert_eq!(Dur::from_ticks(1).ceil_div(p), 1);
    /// assert_eq!(Dur::from_ticks(4).ceil_div(p), 1);
    /// assert_eq!(Dur::from_ticks(5).ceil_div(p), 2);
    /// assert_eq!(Dur::from_ticks(-3).ceil_div(p), 0);
    /// ```
    #[inline]
    pub fn ceil_div(self, rhs: Dur) -> i64 {
        assert!(rhs.0 > 0, "ceil_div divisor must be positive, got {rhs}");
        self.0.div_euclid(rhs.0) + i64::from(self.0.rem_euclid(rhs.0) != 0)
    }

    /// `⌊self / rhs⌋` (Euclidean) for positive divisors.
    ///
    /// # Panics
    ///
    /// Panics if `rhs` is not strictly positive.
    #[inline]
    pub fn floor_div(self, rhs: Dur) -> i64 {
        assert!(rhs.0 > 0, "floor_div divisor must be positive, got {rhs}");
        self.0.div_euclid(rhs.0)
    }

    /// The larger of two durations.
    #[inline]
    pub fn max(self, other: Dur) -> Dur {
        Dur(self.0.max(other.0))
    }

    /// The smaller of two durations.
    #[inline]
    pub fn min(self, other: Dur) -> Dur {
        Dur(self.0.min(other.0))
    }

    /// Converts to a floating-point tick count (for reporting/ratios only —
    /// never fed back into scheduling or analysis arithmetic).
    #[inline]
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }
}

impl Time {
    /// The timeline origin.
    pub const ZERO: Time = Time(0);
    /// The latest representable instant; used as an "effectively never"
    /// sentinel (e.g. an event that is not currently scheduled).
    pub const MAX: Time = Time(i64::MAX);

    /// Creates an instant from a raw tick count since the origin.
    #[inline]
    pub const fn from_ticks(ticks: i64) -> Time {
        Time(ticks)
    }

    /// Returns the raw tick count since the origin.
    #[inline]
    pub const fn ticks(self) -> i64 {
        self.0
    }

    /// Interprets this instant as a duration since [`Time::ZERO`].
    #[inline]
    pub const fn since_origin(self) -> Dur {
        Dur(self.0)
    }

    /// The later of two instants.
    #[inline]
    pub fn max(self, other: Time) -> Time {
        Time(self.0.max(other.0))
    }

    /// The earlier of two instants.
    #[inline]
    pub fn min(self, other: Time) -> Time {
        Time(self.0.min(other.0))
    }

    /// Checked displacement; `None` on overflow.
    #[inline]
    pub fn checked_add(self, rhs: Dur) -> Option<Time> {
        self.0.checked_add(rhs.0).map(Time)
    }

    /// Saturating displacement.
    #[inline]
    pub fn saturating_add(self, rhs: Dur) -> Time {
        Time(self.0.saturating_add(rhs.0))
    }

    /// Converts to a floating-point tick count (reporting only).
    #[inline]
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }
}

impl Add for Dur {
    type Output = Dur;
    #[inline]
    fn add(self, rhs: Dur) -> Dur {
        Dur(self.0 + rhs.0)
    }
}

impl AddAssign for Dur {
    #[inline]
    fn add_assign(&mut self, rhs: Dur) {
        self.0 += rhs.0;
    }
}

impl Sub for Dur {
    type Output = Dur;
    #[inline]
    fn sub(self, rhs: Dur) -> Dur {
        Dur(self.0 - rhs.0)
    }
}

impl SubAssign for Dur {
    #[inline]
    fn sub_assign(&mut self, rhs: Dur) {
        self.0 -= rhs.0;
    }
}

impl Neg for Dur {
    type Output = Dur;
    #[inline]
    fn neg(self) -> Dur {
        Dur(-self.0)
    }
}

impl Mul<i64> for Dur {
    type Output = Dur;
    #[inline]
    fn mul(self, rhs: i64) -> Dur {
        Dur(self.0 * rhs)
    }
}

impl Mul<Dur> for i64 {
    type Output = Dur;
    #[inline]
    fn mul(self, rhs: Dur) -> Dur {
        Dur(self * rhs.0)
    }
}

impl Div<i64> for Dur {
    type Output = Dur;
    #[inline]
    fn div(self, rhs: i64) -> Dur {
        Dur(self.0 / rhs)
    }
}

impl Sum for Dur {
    fn sum<I: Iterator<Item = Dur>>(iter: I) -> Dur {
        iter.fold(Dur::ZERO, Add::add)
    }
}

impl Add<Dur> for Time {
    type Output = Time;
    #[inline]
    fn add(self, rhs: Dur) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl AddAssign<Dur> for Time {
    #[inline]
    fn add_assign(&mut self, rhs: Dur) {
        self.0 += rhs.0;
    }
}

impl Sub<Dur> for Time {
    type Output = Time;
    #[inline]
    fn sub(self, rhs: Dur) -> Time {
        Time(self.0 - rhs.0)
    }
}

impl Sub for Time {
    type Output = Dur;
    #[inline]
    fn sub(self, rhs: Time) -> Dur {
        Dur(self.0 - rhs.0)
    }
}

impl fmt::Debug for Dur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Dur({})", self.0)
    }
}

impl fmt::Display for Dur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Debug for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Time({})", self.0)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", self.0)
    }
}

impl From<i64> for Dur {
    fn from(ticks: i64) -> Dur {
        Dur(ticks)
    }
}

impl From<Dur> for i64 {
    fn from(d: Dur) -> i64 {
        d.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dur_arithmetic_roundtrips() {
        let a = Dur::from_ticks(10);
        let b = Dur::from_ticks(3);
        assert_eq!(a + b, Dur::from_ticks(13));
        assert_eq!(a - b, Dur::from_ticks(7));
        assert_eq!(-b, Dur::from_ticks(-3));
        assert_eq!(a * 4, Dur::from_ticks(40));
        assert_eq!(4 * a, Dur::from_ticks(40));
        assert_eq!(a / 3, Dur::from_ticks(3));
    }

    #[test]
    fn dur_sum_over_iterator() {
        let total: Dur = (1..=4).map(Dur::from_ticks).sum();
        assert_eq!(total, Dur::from_ticks(10));
        let empty: Dur = std::iter::empty::<Dur>().sum();
        assert_eq!(empty, Dur::ZERO);
    }

    #[test]
    fn time_dur_interplay() {
        let t = Time::from_ticks(100);
        let d = Dur::from_ticks(25);
        assert_eq!(t + d, Time::from_ticks(125));
        assert_eq!(t - d, Time::from_ticks(75));
        assert_eq!((t + d) - t, d);
        assert_eq!(Time::ZERO + Dur::from_ticks(5), Time::from_ticks(5));
    }

    #[test]
    fn ceil_div_matches_mathematical_ceiling() {
        let p = Dur::from_ticks(6);
        assert_eq!(Dur::from_ticks(0).ceil_div(p), 0);
        assert_eq!(Dur::from_ticks(1).ceil_div(p), 1);
        assert_eq!(Dur::from_ticks(6).ceil_div(p), 1);
        assert_eq!(Dur::from_ticks(7).ceil_div(p), 2);
        assert_eq!(Dur::from_ticks(12).ceil_div(p), 2);
        assert_eq!(Dur::from_ticks(13).ceil_div(p), 3);
        // Negative numerators round toward zero-or-less correctly.
        assert_eq!(Dur::from_ticks(-1).ceil_div(p), 0);
        assert_eq!(Dur::from_ticks(-6).ceil_div(p), -1);
        assert_eq!(Dur::from_ticks(-7).ceil_div(p), -1);
    }

    #[test]
    fn floor_div_is_euclidean() {
        let p = Dur::from_ticks(6);
        assert_eq!(Dur::from_ticks(0).floor_div(p), 0);
        assert_eq!(Dur::from_ticks(5).floor_div(p), 0);
        assert_eq!(Dur::from_ticks(6).floor_div(p), 1);
        assert_eq!(Dur::from_ticks(-1).floor_div(p), -1);
    }

    #[test]
    #[should_panic(expected = "divisor must be positive")]
    fn ceil_div_rejects_zero_divisor() {
        let _ = Dur::from_ticks(5).ceil_div(Dur::ZERO);
    }

    #[test]
    fn checked_ops_catch_overflow() {
        assert_eq!(Dur::MAX.checked_add(Dur::from_ticks(1)), None);
        assert_eq!(Dur::MAX.checked_mul(2), None);
        assert_eq!(Dur::from_ticks(2).checked_mul(3), Some(Dur::from_ticks(6)));
        assert_eq!(Time::MAX.checked_add(Dur::from_ticks(1)), None);
        assert_eq!(Dur::MAX.saturating_add(Dur::from_ticks(1)), Dur::MAX);
        assert_eq!(Dur::MAX.saturating_mul(3), Dur::MAX);
        assert_eq!(Time::MAX.saturating_add(Dur::from_ticks(9)), Time::MAX);
    }

    #[test]
    fn ordering_and_minmax() {
        let a = Dur::from_ticks(2);
        let b = Dur::from_ticks(9);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        let t0 = Time::from_ticks(1);
        let t1 = Time::from_ticks(4);
        assert_eq!(t0.max(t1), t1);
        assert_eq!(t0.min(t1), t0);
    }

    #[test]
    fn display_and_debug_are_nonempty() {
        assert_eq!(format!("{}", Dur::from_ticks(3)), "3");
        assert_eq!(format!("{:?}", Dur::from_ticks(3)), "Dur(3)");
        assert_eq!(format!("{}", Time::from_ticks(3)), "t=3");
        assert_eq!(format!("{:?}", Time::from_ticks(3)), "Time(3)");
        assert_eq!(format!("{}", Dur::ZERO), "0");
    }

    #[test]
    fn predicates() {
        assert!(Dur::ZERO.is_zero());
        assert!(Dur::from_ticks(1).is_positive());
        assert!(Dur::from_ticks(-1).is_negative());
        assert!(!Dur::from_ticks(-1).is_positive());
    }

    #[test]
    fn conversions() {
        let d: Dur = 42i64.into();
        assert_eq!(d, Dur::from_ticks(42));
        let raw: i64 = d.into();
        assert_eq!(raw, 42);
        assert_eq!(Time::from_ticks(10).since_origin(), Dur::from_ticks(10));
        assert_eq!(Dur::from_ticks(3).as_f64(), 3.0);
        assert_eq!(Time::from_ticks(3).as_f64(), 3.0);
    }
}
