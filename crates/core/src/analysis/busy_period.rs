//! The busy-period fixed-point machinery shared by SA/PM and IEERT.
//!
//! Both analyses repeatedly solve equations of the shape
//!
//! ```text
//! t = offset + Σ_k ⌈(t + J_k) / p_k⌉ · c_k          (smallest t > 0)
//! ```
//!
//! where each *demand term* `k` is a (possibly jittered) periodic
//! interferer: period `p_k`, execution `c_k`, release jitter `J_k`
//! (`J_k = 0` recovers Lehoczky's classic analysis; IEERT uses the
//! predecessor's IEER bound as the jitter, which is exactly the clumping
//! correction of the paper's Figure 10).
//!
//! The demand on the right-hand side is a monotone non-decreasing step
//! function of `t`, so the iteration `t ← offset + W(t)` starting from
//! `W(0⁺)` either converges to the **least** fixed point or grows past any
//! cap; [`fixed_point`] reports which.
//!
//! # Examples
//!
//! Response time of the low-priority subtask `T_{2,1}` of the paper's
//! Example 2 on processor `P₁`: interference from `T₁` (period 4, c 2),
//! own cost 2 ⇒ `R = 4`.
//!
//! ```
//! use rtsync_core::analysis::busy_period::{fixed_point, DemandTerm, FixedPointLimits};
//! use rtsync_core::time::Dur;
//!
//! let interference = [DemandTerm::periodic(Dur::from_ticks(4), Dur::from_ticks(2))];
//! let limits = FixedPointLimits::new(Dur::from_ticks(10_000), 1_000);
//! let completion = fixed_point(Dur::from_ticks(2), &interference, limits).unwrap();
//! assert_eq!(completion, Dur::from_ticks(4));
//! ```

use crate::time::Dur;

/// One periodic (optionally jittered) contributor to processor demand.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct DemandTerm {
    /// The contributor's period `p_k`.
    pub period: Dur,
    /// Its per-instance execution time `c_k`.
    pub execution: Dur,
    /// Its release jitter `J_k`: the contributor may release up to `J_k`
    /// ticks later than its periodic schedule, which *advances* demand seen
    /// inside a busy window (`⌈(t + J)/p⌉` instances by time `t`).
    pub jitter: Dur,
}

impl DemandTerm {
    /// A strictly periodic term (zero jitter).
    pub fn periodic(period: Dur, execution: Dur) -> DemandTerm {
        DemandTerm {
            period,
            execution,
            jitter: Dur::ZERO,
        }
    }

    /// A jittered term, as used by IEERT.
    pub fn jittered(period: Dur, execution: Dur, jitter: Dur) -> DemandTerm {
        DemandTerm {
            period,
            execution,
            jitter,
        }
    }

    /// Demand this term contributes to a window of length `t`:
    /// `⌈(t + jitter)/period⌉ · execution`. `None` on `i64` overflow.
    pub fn demand(&self, t: Dur) -> Option<Dur> {
        let n = t.checked_add(self.jitter)?.ceil_div(self.period);
        self.execution.checked_mul(n)
    }
}

/// Caps for a fixed-point search.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FixedPointLimits {
    /// Abandon the search once the iterate exceeds this value.
    pub cap: Dur,
    /// Abandon the search after this many iterations.
    pub max_iterations: u64,
}

impl FixedPointLimits {
    /// Creates limits.
    pub fn new(cap: Dur, max_iterations: u64) -> FixedPointLimits {
        FixedPointLimits {
            cap,
            max_iterations,
        }
    }
}

/// Why a fixed-point search gave up. Mapped to
/// [`crate::error::AnalyzeError`] by the calling analysis, which knows the
/// subtask being analyzed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FixedPointFailure {
    /// The iterate exceeded the cap — the bound is treated as infinite.
    ExceedsCap,
    /// The iteration budget ran out before convergence or cap.
    IterationLimit,
    /// `i64` tick arithmetic overflowed while evaluating demand.
    Overflow,
}

/// Solves `t = offset + Σ_k ⌈(t + J_k)/p_k⌉·c_k` for the least `t > 0`.
///
/// Starts from `t₀ = offset + W(0⁺)` (every term contributes
/// `⌊J/p⌋ + 1` instances at `0⁺`) and iterates `t ← offset + W(t)`;
/// monotone convergence to the least fixed point is guaranteed when one
/// exists below the cap.
///
/// # Errors
///
/// * [`FixedPointFailure::ExceedsCap`] if the iterate passes `limits.cap`;
/// * [`FixedPointFailure::IterationLimit`] if the budget runs out;
/// * [`FixedPointFailure::Overflow`] on `i64` overflow.
///
/// # Panics
///
/// Panics (via [`Dur::ceil_div`]) if any term has a non-positive period;
/// the [`crate::task::TaskSet`] invariants rule that out.
pub fn fixed_point(
    offset: Dur,
    terms: &[DemandTerm],
    limits: FixedPointLimits,
) -> Result<Dur, FixedPointFailure> {
    fixed_point_counted(offset, terms, limits).map(|(t, _)| t)
}

/// Like [`fixed_point`], but also returns how many iterations the search
/// took (the convergence-instrumentation variant; see
/// [`crate::analysis::sa_pm::BusyPeriodReport`]).
///
/// # Errors
///
/// Identical to [`fixed_point`].
pub fn fixed_point_counted(
    offset: Dur,
    terms: &[DemandTerm],
    limits: FixedPointLimits,
) -> Result<(Dur, u64), FixedPointFailure> {
    debug_assert!(offset.is_positive() || !terms.is_empty());
    // W(0⁺): evaluating the ceilings at t = 1 tick yields exactly
    // ⌊J/p⌋ + 1 per term, the demand of an instant after the origin.
    let mut t = demand_at(offset, terms, Dur::from_ticks(1))?;
    if t <= Dur::from_ticks(1) {
        // offset + first instances fit in one tick: t is its own fixed point.
        return Ok((t, 0));
    }
    for i in 0..limits.max_iterations {
        if t > limits.cap {
            return Err(FixedPointFailure::ExceedsCap);
        }
        let next = demand_at(offset, terms, t)?;
        debug_assert!(next >= t, "demand iteration must be monotone");
        if next == t {
            return Ok((t, i + 1));
        }
        t = next;
    }
    Err(FixedPointFailure::IterationLimit)
}

/// Like [`fixed_point`], but starts iterating from `hint` when that is
/// larger than the natural starting point `W(0⁺)`.
///
/// The caller must guarantee `hint` does not exceed the least fixed point,
/// or the result may be a larger fixed point. The analyses use the previous
/// instance's completion time as the hint (`C(m−1) ≤ C(m)` for the
/// monotone per-instance equations), which cuts the iteration count of the
/// inner loops of SA/PM and IEERT roughly in half.
pub fn fixed_point_with_hint(
    hint: Dur,
    offset: Dur,
    terms: &[DemandTerm],
    limits: FixedPointLimits,
) -> Result<Dur, FixedPointFailure> {
    fixed_point_with_hint_counted(hint, offset, terms, limits).map(|(t, _)| t)
}

/// Like [`fixed_point_with_hint`], but also returns the iteration count
/// (the convergence-instrumentation variant).
///
/// # Errors
///
/// Identical to [`fixed_point_with_hint`].
pub fn fixed_point_with_hint_counted(
    hint: Dur,
    offset: Dur,
    terms: &[DemandTerm],
    limits: FixedPointLimits,
) -> Result<(Dur, u64), FixedPointFailure> {
    let start = demand_at(offset, terms, Dur::from_ticks(1))?;
    let mut t = start.max(hint);
    if t <= Dur::from_ticks(1) {
        return Ok((t, 0));
    }
    for i in 0..limits.max_iterations {
        if t > limits.cap {
            return Err(FixedPointFailure::ExceedsCap);
        }
        let next = demand_at(offset, terms, t)?;
        if next <= t {
            // `next < t` can only happen when the hint overshot W's value at
            // t while still being ≤ the least fixed point; t is then already
            // a post-fixed point and, with a valid hint, equals the answer.
            return Ok((t.max(next), i + 1));
        }
        t = next;
    }
    Err(FixedPointFailure::IterationLimit)
}

/// `offset + Σ_k demand_k(t)`, checked.
fn demand_at(offset: Dur, terms: &[DemandTerm], t: Dur) -> Result<Dur, FixedPointFailure> {
    let mut total = offset;
    for term in terms {
        let d = term.demand(t).ok_or(FixedPointFailure::Overflow)?;
        total = total.checked_add(d).ok_or(FixedPointFailure::Overflow)?;
    }
    Ok(total)
}

/// Total utilization of `terms` in parts-per-million, with each per-term
/// division rounded **up**.
///
/// Rounding up is the safe direction for this number's consumers: the
/// overload diagnostics and any admission gate that treats `< 1_000_000`
/// as "below capacity". Truncation understates — three terms of
/// execution 1 / period 3 would report 999 999 ppm and read as strictly
/// under 100% when the processor is in fact fully saturated. With ceiling
/// rounding the result never understates the true utilization (it may
/// overstate by strictly less than one ppm per term), so a saturated or
/// overloaded set can never masquerade as having headroom.
pub fn utilization_ppm(terms: &[DemandTerm]) -> u64 {
    terms
        .iter()
        .map(|t| {
            let num = t.execution.ticks() as i128 * 1_000_000;
            let den = t.period.ticks() as i128;
            ((num + den - 1) / den) as u64
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(t: i64) -> Dur {
        Dur::from_ticks(t)
    }

    fn limits() -> FixedPointLimits {
        FixedPointLimits::new(d(1_000_000), 10_000)
    }

    #[test]
    fn no_interference_completion_is_own_cost() {
        let r = fixed_point(d(5), &[], limits()).unwrap();
        assert_eq!(r, d(5));
    }

    #[test]
    fn single_tick_job_alone() {
        let r = fixed_point(d(1), &[], limits()).unwrap();
        assert_eq!(r, d(1));
    }

    #[test]
    fn classic_response_time_example() {
        // Liu & Layland style: tasks (p=4,c=2) and (p=6,c=2) interfere with
        // a job of cost 3 at lowest priority.
        //   t0 = 3+2+2 = 7 ; W(7) = 3 + 2*2 + 2*2 = 11
        //   W(11) = 3 + 3*2 + 2*2 = 13 ; W(13) = 3 + 4*2 + 3*2 = 17
        //   W(17) = 3 + 5*2 + 3*2 = 19 ; W(19) = 3 + 5*2 + 4*2 = 21
        //   W(21) = 3 + 6*2 + 4*2 = 23 ; W(23) = 3 + 6*2 + 4*2 = 23 ✓
        let terms = [
            DemandTerm::periodic(d(4), d(2)),
            DemandTerm::periodic(d(6), d(2)),
        ];
        assert_eq!(fixed_point(d(3), &terms, limits()).unwrap(), d(23));
    }

    #[test]
    fn example2_response_times() {
        // Paper Example 2, processor P0: T1 (p=4,c=2) over T2,1 (p=6,c=2).
        let t21 = fixed_point(d(2), &[DemandTerm::periodic(d(4), d(2))], limits()).unwrap();
        assert_eq!(t21, d(4)); // the paper: R_{2,1} = 4
                               // P1 under PM: T2,2 (p=6,c=3) over T3 (p=6,c=2): R_3 = 5.
        let t3 = fixed_point(d(2), &[DemandTerm::periodic(d(6), d(3))], limits()).unwrap();
        assert_eq!(t3, d(5)); // the paper: worst case 5, never misses
    }

    #[test]
    fn jitter_pulls_extra_instances_into_the_window() {
        // Interferer p=10, c=2. Without jitter a 3-tick job completes at 5.
        let no_jitter = [DemandTerm::periodic(d(10), d(2))];
        assert_eq!(fixed_point(d(3), &no_jitter, limits()).unwrap(), d(5));
        // With jitter 9 the interferer contributes ⌈(t+9)/10⌉ instances:
        // t0 = 3 + 2 = 5 ; W(5) = 3 + ⌈14/10⌉*2 = 7 ; W(7) = 3 + ⌈16/10⌉*2 = 7 ✓
        let jittered = [DemandTerm::jittered(d(10), d(2), d(9))];
        assert_eq!(fixed_point(d(3), &jittered, limits()).unwrap(), d(7));
    }

    #[test]
    fn jitter_multiple_periods_deep() {
        // Jitter of 25 on a p=10 interferer means ⌊25/10⌋+1 = 3 instances
        // land at the window origin.
        let term = DemandTerm::jittered(d(10), d(1), d(25));
        assert_eq!(term.demand(d(1)).unwrap(), d(3));
        assert_eq!(term.demand(d(5)).unwrap(), d(3));
        assert_eq!(term.demand(d(6)).unwrap(), d(4));
    }

    #[test]
    fn overload_exceeds_cap() {
        // Utilization 1.5 — never converges; must hit the cap, not loop.
        let terms = [
            DemandTerm::periodic(d(2), d(2)),
            DemandTerm::periodic(d(4), d(2)),
        ];
        let err = fixed_point(d(1), &terms, FixedPointLimits::new(d(1000), 10_000)).unwrap_err();
        assert_eq!(err, FixedPointFailure::ExceedsCap);
    }

    #[test]
    fn full_utilization_still_converges_when_fixpoint_exists() {
        // One term with c = p: the busy period of a 0-offset... with an
        // offset of 1 tick: t = 1 + ⌈t/4⌉·4 never converges (util = 1 plus
        // offset); but c < p converges: u = 3/4.
        let terms = [DemandTerm::periodic(d(4), d(3))];
        // t0 = 1+3 = 4 ; W(4) = 1 + 3 = 4 ✓
        assert_eq!(fixed_point(d(1), &terms, limits()).unwrap(), d(4));
        // Exactly full utilization with an offset diverges to the cap.
        let terms = [DemandTerm::periodic(d(4), d(4))];
        let err = fixed_point(d(1), &terms, FixedPointLimits::new(d(100), 10_000)).unwrap_err();
        assert_eq!(err, FixedPointFailure::ExceedsCap);
    }

    #[test]
    fn iteration_limit_reported() {
        let terms = [DemandTerm::periodic(d(2), d(1))];
        // Utilization 0.5, offset huge: converges but slowly; strangle the
        // budget to force the limit error.
        let err = fixed_point(d(500_000), &terms, FixedPointLimits::new(Dur::MAX, 3)).unwrap_err();
        assert_eq!(err, FixedPointFailure::IterationLimit);
    }

    #[test]
    fn overflow_detected() {
        let terms = [DemandTerm::periodic(d(1), Dur::MAX)];
        let err = fixed_point(d(1), &terms, limits()).unwrap_err();
        assert_eq!(err, FixedPointFailure::Overflow);
    }

    #[test]
    fn demand_term_constructors() {
        let p = DemandTerm::periodic(d(4), d(2));
        assert_eq!(p.jitter, Dur::ZERO);
        let j = DemandTerm::jittered(d(4), d(2), d(3));
        assert_eq!(j.jitter, d(3));
        assert_eq!(p.demand(d(4)).unwrap(), d(2));
        assert_eq!(p.demand(d(5)).unwrap(), d(4));
    }

    #[test]
    fn utilization_ppm_sums_terms() {
        let terms = [
            DemandTerm::periodic(d(4), d(2)),  // 0.5
            DemandTerm::periodic(d(10), d(3)), // 0.3
        ];
        assert_eq!(utilization_ppm(&terms), 800_000);
    }

    #[test]
    fn utilization_ppm_rounds_up_never_understating_saturation() {
        // Regression: three tasks of execution 1 / period 3 saturate a
        // processor exactly (utilization = 1). The old truncating division
        // reported 3 × 333_333 = 999_999 ppm — strictly under 100% — so a
        // gate keyed on `< 1_000_000` would have claimed headroom on a
        // saturated set. Ceiling rounding must report ≥ 100%.
        let terms = [
            DemandTerm::periodic(d(3), d(1)),
            DemandTerm::periodic(d(3), d(1)),
            DemandTerm::periodic(d(3), d(1)),
        ];
        assert!(utilization_ppm(&terms) >= 1_000_000);
        // Each term overstates by strictly less than one ppm.
        assert_eq!(utilization_ppm(&terms), 1_000_002);
        // Exact divisions stay exact.
        assert_eq!(
            utilization_ppm(&[DemandTerm::periodic(d(4), d(1))]),
            250_000
        );
    }

    #[test]
    fn least_fixed_point_is_returned() {
        // Two fixed points would exist for t = ⌈t/6⌉·3 (t=3 and t=6 both
        // satisfy t ≥ demand); the iteration must return the least (3).
        let terms = [DemandTerm::periodic(d(6), d(3))];
        // offset 0 is not meaningful for completion times, use a tiny job.
        let r = fixed_point(d(1), &terms, limits()).unwrap();
        assert_eq!(r, d(4)); // 1 + 3 = 4 < 6: least fixed point
    }
}
