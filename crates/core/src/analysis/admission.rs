//! Incremental online admission control over the paper's analyses.
//!
//! The batch algorithms ([`analyze_pm`], [`analyze_ds`]) answer "is this
//! *whole system* schedulable?" in one shot. A serving system asks a
//! different question thousands of times: *given the chains already
//! resident, may this one join?* [`AdmissionState`] keeps the resident
//! system and its converged fixed points in memory and answers
//! [`admit`](AdmissionState::admit) / [`retire`](AdmissionState::retire)
//! requests by re-running only the work an operation can actually change:
//!
//! * **Quick-reject gate** — per-processor utilization, summed with
//!   *truncating* division. The gate only ever rejects, so flooring is the
//!   sound direction: `floor_sum > 10⁶ ⟹ true utilization > 1 ⟹` the
//!   lowest level's busy period diverges and the full analysis would
//!   reject anyway. (The *reporting* counterpart
//!   [`utilization_ppm`](crate::analysis::busy_period::utilization_ppm)
//!   rounds **up** for the dual reason: a diagnostic must never understate
//!   saturation.) A set at exactly 100% passes the gate and gets the real
//!   analysis, which it may well survive.
//! * **Dirty-set invalidation** (PM family) — per-processor analysis means
//!   a subtask's bounds change only when its *interference set* changes.
//!   Admitting chain `C` dirties exactly the resident subtasks that share
//!   a processor with `C` and sit below it in priority; retiring `C`
//!   dirties the same set. Everything else keeps its memo untouched.
//! * **Warm-started fixed points** — on admission, demand only grows, so
//!   every memoized fixed point is ≤ its new value and seeds the re-run
//!   via [`fixed_point_with_hint`]; on retirement demand shrinks, the
//!   memos overshoot, and dirty subtasks are recomputed cold.
//! * **Warm-seeded SA/DS** (DS mode) — the sweep is globally coupled, so
//!   there is no per-processor dirty set; instead the previous converged
//!   [`IeerBounds`] seed the new run ([`IeerBounds::seed_with`] /
//!   [`analyze_ds_seeded`]), skipping the sweeps that would re-climb
//!   established ground.
//!
//! Every shortcut above is *exact*: with memoization disabled the engine
//! recomputes everything from scratch, and the two modes produce
//! bit-identical verdicts and bounds (the differential property tested in
//! `crates/core/tests/proptests.rs`).
//!
//! The engine serves the paper's fully preemptive, resource-free base
//! model: admitted chains cannot declare non-preemptive subtasks or
//! critical sections, so blocking terms are always zero and priority-
//! *insertion* below a subtask can never dirty it.
//!
//! [`analyze_pm`]: crate::analysis::sa_pm::analyze_pm
//! [`analyze_ds`]: crate::analysis::sa_ds::analyze_ds
//! [`fixed_point_with_hint`]: crate::analysis::busy_period::fixed_point_with_hint

use std::collections::HashMap;
use std::fmt;

use crate::analysis::ieert::IeerBounds;
use crate::analysis::sa_ds::{analyze_ds_seeded, SweepOrder};
use crate::analysis::sa_pm::{subtask_response_memo, SubtaskMemo};
use crate::analysis::AnalysisConfig;
use crate::error::{AnalyzeError, ValidateTaskSetError};
use crate::task::{Priority, ProcessorId, SubtaskId, TaskId, TaskSet};
use crate::time::Dur;

/// Which analysis family backs the verdicts.
#[derive(Clone, Copy, PartialEq, Eq, Default, Debug)]
pub enum AdmissionMode {
    /// Algorithm SA/PM — valid for the PM, MPM and (by Theorem 1) RG
    /// protocols. Processor-local analysis with per-subtask memoization.
    #[default]
    PmFamily,
    /// Algorithm SA/DS — the Direct Synchronization protocol. Globally
    /// coupled sweeps, warm-seeded from the previous fixed point.
    DirectSync,
}

/// Tuning knobs of an [`AdmissionState`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct AdmissionConfig {
    /// Which analysis backs the verdicts.
    pub mode: AdmissionMode,
    /// Limits handed to the underlying analysis.
    pub analysis: AnalysisConfig,
    /// `false` disables the dirty-set/warm-start machinery: every decision
    /// re-analyzes the whole resident system from scratch. The results are
    /// bit-identical either way — the cold mode exists as the differential
    /// oracle and for the speedup ablation.
    pub memoization: bool,
    /// `false` disables the utilization quick-reject gate (ablation knob).
    pub quick_gate: bool,
}

impl AdmissionConfig {
    /// Defaults for a mode: memoization and the quick gate enabled.
    pub fn new(mode: AdmissionMode) -> AdmissionConfig {
        AdmissionConfig {
            mode,
            analysis: AnalysisConfig::DEFAULT,
            memoization: true,
            quick_gate: true,
        }
    }

    /// Toggles memoization (builder style).
    #[must_use]
    pub fn with_memoization(mut self, on: bool) -> AdmissionConfig {
        self.memoization = on;
        self
    }

    /// Toggles the utilization quick-reject gate (builder style).
    #[must_use]
    pub fn with_quick_gate(mut self, on: bool) -> AdmissionConfig {
        self.quick_gate = on;
        self
    }
}

impl Default for AdmissionConfig {
    fn default() -> AdmissionConfig {
        AdmissionConfig::new(AdmissionMode::PmFamily)
    }
}

/// One chain asking to join: the caller-facing description of a task.
///
/// Priorities are not part of the request — the engine derives unique
/// per-processor priorities from `rank` (lower = more important) with
/// admission order as the tie-break, so equal-rank chains never collide
/// and a low-rank arrival lands *above* resident higher-rank chains.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ChainRequest {
    /// Caller-assigned identity; must be unique among residents.
    pub id: u64,
    /// Period of the chain's first subtask.
    pub period: Dur,
    /// End-to-end relative deadline (defaults to the period).
    pub deadline: Dur,
    /// Importance rank: lower ranks get higher priorities. Ties broken by
    /// admission order (earlier = higher).
    pub rank: u32,
    /// The chain: `(processor, execution)` per subtask, in precedence
    /// order. Consecutive subtasks must name different processors.
    pub subtasks: Vec<(usize, Dur)>,
}

impl ChainRequest {
    /// A request with deadline = period and rank 0.
    pub fn new(id: u64, period: Dur, subtasks: Vec<(usize, Dur)>) -> ChainRequest {
        ChainRequest {
            id,
            period,
            deadline: period,
            rank: 0,
            subtasks,
        }
    }

    /// Sets the end-to-end deadline (builder style).
    #[must_use]
    pub fn with_deadline(mut self, deadline: Dur) -> ChainRequest {
        self.deadline = deadline;
        self
    }

    /// Sets the importance rank (builder style).
    #[must_use]
    pub fn with_rank(mut self, rank: u32) -> ChainRequest {
        self.rank = rank;
        self
    }

    fn uses_processor(&self, proc: usize) -> bool {
        self.subtasks.iter().any(|&(p, _)| p == proc)
    }
}

/// Why an admission request was turned away.
#[derive(Clone, PartialEq, Eq, Debug)]
#[non_exhaustive]
pub enum RejectReason {
    /// A resident chain already uses the requested id.
    DuplicateId,
    /// The chain violates the task model (empty, bad processor, …).
    Invalid(ValidateTaskSetError),
    /// The floor-rounded utilization of some processor would exceed 100%:
    /// the busy period at its lowest level cannot drain, so the full
    /// analysis is guaranteed to reject — skipped entirely.
    UtilizationGate {
        /// The saturated processor.
        processor: ProcessorId,
        /// Its floor-rounded utilization, in ppm (> 1 000 000).
        utilization_ppm: u64,
    },
    /// The analysis found no finite bound (overload, cap, divergence).
    Analysis(AnalyzeError),
    /// Every bound is finite but some chain — the candidate or a resident
    /// it would preempt — misses its end-to-end deadline.
    DeadlineMiss {
        /// The chain that would miss.
        chain: u64,
        /// Its bound under the grown system.
        bound: Dur,
        /// Its end-to-end deadline.
        deadline: Dur,
    },
}

impl fmt::Display for RejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RejectReason::DuplicateId => write!(f, "duplicate chain id"),
            RejectReason::Invalid(e) => write!(f, "invalid chain: {e}"),
            RejectReason::UtilizationGate {
                processor,
                utilization_ppm,
            } => write!(
                f,
                "utilization gate: {processor} at {utilization_ppm} ppm exceeds capacity"
            ),
            RejectReason::Analysis(e) => write!(f, "analysis failure: {e}"),
            RejectReason::DeadlineMiss {
                chain,
                bound,
                deadline,
            } => write!(
                f,
                "chain {chain} would miss its deadline: bound {bound} > {deadline}"
            ),
        }
    }
}

/// The outcome of one [`AdmissionState::admit`] call.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Decision {
    /// Whether the chain was admitted.
    pub admitted: bool,
    /// The candidate's end-to-end response-time bound, when admitted.
    pub bound: Option<Dur>,
    /// Why the chain was rejected (`None` when admitted).
    pub reject: Option<RejectReason>,
    /// Subtask analyses actually re-run for this decision.
    pub reanalyzed: usize,
    /// Subtask analyses skipped thanks to memoization.
    pub skipped: usize,
    /// Chains resident *after* the decision.
    pub residents: usize,
}

/// The outcome of one successful [`AdmissionState::retire`] call.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RetireOutcome {
    /// Subtask analyses re-run to refresh the shrunk system.
    pub reanalyzed: usize,
    /// Subtask analyses kept untouched.
    pub skipped: usize,
    /// Chains resident after the retirement.
    pub residents: usize,
}

/// Why a retirement failed.
#[derive(Clone, PartialEq, Eq, Debug)]
#[non_exhaustive]
pub enum RetireError {
    /// No resident chain has the given id.
    UnknownChain(u64),
    /// Re-analysis of the shrunk system failed — impossible for systems
    /// the engine admitted (demand only shrank), kept for honesty.
    Analysis(AnalyzeError),
}

impl fmt::Display for RetireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RetireError::UnknownChain(id) => write!(f, "no resident chain with id {id}"),
            RetireError::Analysis(e) => write!(f, "re-analysis after retirement failed: {e}"),
        }
    }
}

impl std::error::Error for RetireError {}

/// Cumulative counters across an [`AdmissionState`]'s lifetime.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct AdmissionStats {
    /// Admission decisions served (admitted + rejected).
    pub decisions: u64,
    /// Chains admitted.
    pub admitted: u64,
    /// Chains rejected (any reason).
    pub rejected: u64,
    /// Rejections decided by the utilization gate alone.
    pub gate_rejects: u64,
    /// Chains retired.
    pub retired: u64,
    /// Subtask analyses re-run.
    pub subtasks_reanalyzed: u64,
    /// Subtask analyses skipped thanks to memoization.
    pub subtasks_skipped: u64,
}

/// One resident chain and its memoized analysis state.
#[derive(Clone, Debug)]
struct Resident {
    spec: ChainRequest,
    /// PM family: per-subtask fixed-point memos.
    memos: Vec<SubtaskMemo>,
    /// DS: per-subtask converged IEER bounds.
    ieer: Vec<Dur>,
    /// End-to-end bound under the current resident system.
    bound: Dur,
}

/// The resident admission-control engine. See the [module docs](self).
#[derive(Clone, Debug)]
pub struct AdmissionState {
    cfg: AdmissionConfig,
    num_processors: usize,
    residents: HashMap<u64, Resident>,
    /// Resident ids in derived priority order: sorted by rank, with ties
    /// broken by admission seniority (earlier admits sit higher).
    order: Vec<u64>,
    /// The task set of the current residents (`None` when empty).
    set: Option<TaskSet>,
    stats: AdmissionStats,
}

impl AdmissionState {
    /// An empty engine over `num_processors` processors.
    pub fn new(num_processors: usize, cfg: AdmissionConfig) -> AdmissionState {
        AdmissionState {
            cfg,
            num_processors,
            residents: HashMap::new(),
            order: Vec::new(),
            set: None,
            stats: AdmissionStats::default(),
        }
    }

    /// Number of resident chains.
    pub fn residents(&self) -> usize {
        self.order.len()
    }

    /// `true` if a chain with this id is resident.
    pub fn contains(&self, id: u64) -> bool {
        self.residents.contains_key(&id)
    }

    /// The end-to-end bound of a resident chain.
    pub fn bound(&self, id: u64) -> Option<Dur> {
        self.residents.get(&id).map(|r| r.bound)
    }

    /// Resident `(id, end-to-end bound)` pairs in priority order — the
    /// snapshot compared by the incremental-vs-batch differential tests.
    pub fn resident_bounds(&self) -> Vec<(u64, Dur)> {
        self.order
            .iter()
            .map(|id| (*id, self.residents[id].bound))
            .collect()
    }

    /// The task set the residents currently form (`None` when empty).
    pub fn task_set(&self) -> Option<&TaskSet> {
        self.set.as_ref()
    }

    /// Lifetime counters.
    pub fn stats(&self) -> AdmissionStats {
        self.stats
    }

    /// Decides whether `req` may join the resident system. Admission
    /// mutates the state; rejection leaves it untouched.
    pub fn admit(&mut self, req: ChainRequest) -> Decision {
        self.stats.decisions += 1;
        let d = self.admit_inner(req);
        if d.admitted {
            self.stats.admitted += 1;
        } else {
            self.stats.rejected += 1;
        }
        self.stats.subtasks_reanalyzed += d.reanalyzed as u64;
        self.stats.subtasks_skipped += d.skipped as u64;
        d
    }

    /// Removes a resident chain and refreshes the bounds of the chains it
    /// was interfering with.
    ///
    /// # Errors
    ///
    /// [`RetireError::UnknownChain`] if no resident has the id.
    pub fn retire(&mut self, id: u64) -> Result<RetireOutcome, RetireError> {
        if !self.residents.contains_key(&id) {
            return Err(RetireError::UnknownChain(id));
        }
        let out = self.retire_inner(id)?;
        self.stats.retired += 1;
        self.stats.subtasks_reanalyzed += out.reanalyzed as u64;
        self.stats.subtasks_skipped += out.skipped as u64;
        Ok(out)
    }

    fn reject(&self, reason: RejectReason, reanalyzed: usize, skipped: usize) -> Decision {
        Decision {
            admitted: false,
            bound: None,
            reject: Some(reason),
            reanalyzed,
            skipped,
            residents: self.order.len(),
        }
    }

    /// Where `req` would sit in the priority order: after residents of
    /// rank ≤ its own (seniority tie-break) and before strictly larger
    /// ranks.
    fn insertion_pos(&self, req: &ChainRequest) -> usize {
        self.order
            .iter()
            .position(|id| self.residents[id].spec.rank > req.rank)
            .unwrap_or(self.order.len())
    }

    fn admit_inner(&mut self, req: ChainRequest) -> Decision {
        if self.residents.contains_key(&req.id) {
            return self.reject(RejectReason::DuplicateId, 0, 0);
        }
        let pos_c = self.insertion_pos(&req);
        let mut new_order: Vec<u64> = self.order.clone();
        new_order.insert(pos_c, req.id);
        let chains: Vec<&ChainRequest> = new_order
            .iter()
            .map(|id| {
                if *id == req.id {
                    &req
                } else {
                    &self.residents[id].spec
                }
            })
            .collect();
        let set = match build_task_set(self.num_processors, &chains) {
            Ok(s) => s,
            Err(e) => return self.reject(RejectReason::Invalid(e), 0, 0),
        };
        if self.cfg.quick_gate {
            if let Some((processor, utilization_ppm)) = gate_overload(&set) {
                self.stats.gate_rejects += 1;
                return self.reject(
                    RejectReason::UtilizationGate {
                        processor,
                        utilization_ppm,
                    },
                    0,
                    0,
                );
            }
        }
        match self.cfg.mode {
            AdmissionMode::PmFamily => self.admit_pm(req, pos_c, new_order, &set),
            AdmissionMode::DirectSync => self.admit_ds(req, new_order, &set),
        }
    }

    fn admit_pm(
        &mut self,
        req: ChainRequest,
        pos_c: usize,
        new_order: Vec<u64>,
        set: &TaskSet,
    ) -> Decision {
        let mut reanalyzed = 0usize;
        let mut skipped = 0usize;
        // Scratch results per chain; committed only if every check passes,
        // so a rejection leaves the resident state bit-identical.
        let mut scratch: Vec<(Vec<SubtaskMemo>, Dur)> = Vec::with_capacity(new_order.len());
        for (pos, &cid) in new_order.iter().enumerate() {
            let is_candidate = cid == req.id;
            let spec = if is_candidate {
                &req
            } else {
                &self.residents[&cid].spec
            };
            let mut memos = Vec::with_capacity(spec.subtasks.len());
            for (j, &(proc, _)) in spec.subtasks.iter().enumerate() {
                let sid = SubtaskId::new(TaskId::new(pos), j);
                // A resident subtask's interference set changes iff the
                // candidate sits above it (pos > pos_c) and has a subtask
                // on its processor. Everything else keeps its memo: same
                // interference set ⟹ same fixed points.
                let dirty = is_candidate
                    || !self.cfg.memoization
                    || (pos > pos_c && req.uses_processor(proc));
                if dirty {
                    // On growth every memoized fixed point is ≤ its new
                    // value, so the stale memo is a valid warm start.
                    let warm = (self.cfg.memoization && !is_candidate)
                        .then(|| &self.residents[&cid].memos[j]);
                    match subtask_response_memo(set, sid, &self.cfg.analysis, warm) {
                        Ok(m) => {
                            reanalyzed += 1;
                            memos.push(m);
                        }
                        Err(e) => {
                            // Skipped (clean) subtasks converged before
                            // under identical interference, so the first
                            // error in order is the same one the cold
                            // batch re-analysis hits.
                            return self.reject(RejectReason::Analysis(e), reanalyzed, skipped);
                        }
                    }
                } else {
                    skipped += 1;
                    memos.push(self.residents[&cid].memos[j].clone());
                }
            }
            let bound: Dur = memos.iter().map(|m| m.response).sum();
            if bound > spec.deadline {
                return self.reject(
                    RejectReason::DeadlineMiss {
                        chain: cid,
                        bound,
                        deadline: spec.deadline,
                    },
                    reanalyzed,
                    skipped,
                );
            }
            scratch.push((memos, bound));
        }
        // Commit.
        let candidate_bound = scratch[pos_c].1;
        for ((memos, bound), &cid) in scratch.into_iter().zip(new_order.iter()) {
            if cid == req.id {
                self.residents.insert(
                    req.id,
                    Resident {
                        spec: req.clone(),
                        memos,
                        ieer: Vec::new(),
                        bound,
                    },
                );
            } else {
                let r = self.residents.get_mut(&cid).expect("resident");
                r.memos = memos;
                r.bound = bound;
            }
        }
        self.finish_admit(new_order, set.clone());
        Decision {
            admitted: true,
            bound: Some(candidate_bound),
            reject: None,
            reanalyzed,
            skipped,
            residents: self.order.len(),
        }
    }

    fn admit_ds(&mut self, req: ChainRequest, new_order: Vec<u64>, set: &TaskSet) -> Decision {
        // The previous converged bounds of retained chains are ≤ their
        // values at the grown system's least fixed point, so they are a
        // valid warm seed; the candidate starts from the optimistic seed.
        let seed = if self.cfg.memoization {
            IeerBounds::seed_with(set, |sid| {
                let cid = new_order[sid.task().index()];
                (cid != req.id).then(|| self.residents[&cid].ieer[sid.index()])
            })
        } else {
            IeerBounds::seed(set)
        };
        let reanalyzed = set.num_subtasks();
        let ds = match analyze_ds_seeded(set, &self.cfg.analysis, SweepOrder::Jacobi, seed) {
            Ok(ds) => ds,
            Err(e) => return self.reject(RejectReason::Analysis(e), reanalyzed, 0),
        };
        for (pos, &cid) in new_order.iter().enumerate() {
            let spec = if cid == req.id {
                &req
            } else {
                &self.residents[&cid].spec
            };
            let bound = ds.task_bound(TaskId::new(pos));
            if bound > spec.deadline {
                return self.reject(
                    RejectReason::DeadlineMiss {
                        chain: cid,
                        bound,
                        deadline: spec.deadline,
                    },
                    reanalyzed,
                    0,
                );
            }
        }
        // Commit.
        let mut candidate_bound = Dur::ZERO;
        for (pos, &cid) in new_order.iter().enumerate() {
            let tid = TaskId::new(pos);
            let ieer: Vec<Dur> = (0..set.task(tid).chain_len())
                .map(|j| ds.bounds().get(SubtaskId::new(tid, j)))
                .collect();
            let bound = ds.task_bound(tid);
            if cid == req.id {
                candidate_bound = bound;
                self.residents.insert(
                    req.id,
                    Resident {
                        spec: req.clone(),
                        memos: Vec::new(),
                        ieer,
                        bound,
                    },
                );
            } else {
                let r = self.residents.get_mut(&cid).expect("resident");
                r.ieer = ieer;
                r.bound = bound;
            }
        }
        self.finish_admit(new_order, set.clone());
        Decision {
            admitted: true,
            bound: Some(candidate_bound),
            reject: None,
            reanalyzed,
            skipped: 0,
            residents: self.order.len(),
        }
    }

    fn finish_admit(&mut self, new_order: Vec<u64>, set: TaskSet) {
        self.order = new_order;
        self.set = Some(set);
    }

    fn retire_inner(&mut self, id: u64) -> Result<RetireOutcome, RetireError> {
        let old_pos = self
            .order
            .iter()
            .position(|&x| x == id)
            .expect("checked resident");
        let removed = self.residents.remove(&id).expect("checked resident");
        self.order.remove(old_pos);
        if self.order.is_empty() {
            self.set = None;
            return Ok(RetireOutcome {
                reanalyzed: 0,
                skipped: 0,
                residents: 0,
            });
        }
        let chains: Vec<&ChainRequest> = self
            .order
            .iter()
            .map(|cid| &self.residents[cid].spec)
            .collect();
        let set = build_task_set(self.num_processors, &chains)
            .expect("removing a chain keeps a valid set valid");
        let (reanalyzed, skipped) = match self.cfg.mode {
            AdmissionMode::PmFamily => self.retire_pm(&removed, old_pos, &set)?,
            AdmissionMode::DirectSync => self.retire_ds(&set)?,
        };
        self.set = Some(set);
        Ok(RetireOutcome {
            reanalyzed,
            skipped,
            residents: self.order.len(),
        })
    }

    fn retire_pm(
        &mut self,
        removed: &Resident,
        old_pos: usize,
        set: &TaskSet,
    ) -> Result<(usize, usize), RetireError> {
        let order = self.order.clone();
        let mut reanalyzed = 0usize;
        let mut skipped = 0usize;
        for (pos, &cid) in order.iter().enumerate() {
            let spec = self.residents[&cid].spec.clone();
            let mut memos = Vec::with_capacity(spec.subtasks.len());
            for (j, &(proc, _)) in spec.subtasks.iter().enumerate() {
                // Chains that sat below the removed one (new pos ≥ its old
                // pos) lose interference on shared processors. Their memos
                // now overshoot the shrunk fixed points, so the re-run is
                // cold — no hint.
                let dirty =
                    !self.cfg.memoization || (pos >= old_pos && removed.spec.uses_processor(proc));
                if dirty {
                    let sid = SubtaskId::new(TaskId::new(pos), j);
                    match subtask_response_memo(set, sid, &self.cfg.analysis, None) {
                        Ok(m) => {
                            reanalyzed += 1;
                            memos.push(m);
                        }
                        Err(e) => return Err(RetireError::Analysis(e)),
                    }
                } else {
                    skipped += 1;
                    memos.push(self.residents[&cid].memos[j].clone());
                }
            }
            let bound: Dur = memos.iter().map(|m| m.response).sum();
            let r = self.residents.get_mut(&cid).expect("resident");
            r.memos = memos;
            r.bound = bound;
        }
        Ok((reanalyzed, skipped))
    }

    fn retire_ds(&mut self, set: &TaskSet) -> Result<(usize, usize), RetireError> {
        // Shrinking demand lowers the least fixed point, so the stored
        // bounds overshoot it and cannot seed the sweep: run cold.
        let ds = analyze_ds_seeded(
            set,
            &self.cfg.analysis,
            SweepOrder::Jacobi,
            IeerBounds::seed(set),
        )
        .map_err(RetireError::Analysis)?;
        let order = self.order.clone();
        for (pos, &cid) in order.iter().enumerate() {
            let tid = TaskId::new(pos);
            let ieer: Vec<Dur> = (0..set.task(tid).chain_len())
                .map(|j| ds.bounds().get(SubtaskId::new(tid, j)))
                .collect();
            let r = self.residents.get_mut(&cid).expect("resident");
            r.ieer = ieer;
            r.bound = ds.task_bound(tid);
        }
        Ok((set.num_subtasks(), 0))
    }
}

/// Builds the residents' [`TaskSet`] in priority order: the chain at
/// position `pos` gets priorities `pos·stride + j`, which are unique per
/// processor and order whole chains by position (every subtask of an
/// earlier chain preempts every subtask of a later one on a shared
/// processor).
fn build_task_set(
    num_processors: usize,
    chains: &[&ChainRequest],
) -> Result<TaskSet, ValidateTaskSetError> {
    let stride = chains
        .iter()
        .map(|c| c.subtasks.len())
        .max()
        .unwrap_or(1)
        .max(1);
    let mut b = TaskSet::builder(num_processors);
    for (pos, c) in chains.iter().enumerate() {
        let mut tb = b.task(c.period).deadline(c.deadline);
        for (j, &(proc, exec)) in c.subtasks.iter().enumerate() {
            tb = tb.subtask(proc, exec, Priority::new((pos * stride + j) as u32));
        }
        b = tb.finish_task();
    }
    b.build()
}

/// The quick-reject gate: the first processor whose floor-rounded
/// utilization strictly exceeds 100%, if any. Flooring can only *under*
/// state, so a hit proves true utilization > 1 — the analysis would
/// reject — while a set at exactly 100% (which may be schedulable) is
/// never gated.
fn gate_overload(set: &TaskSet) -> Option<(ProcessorId, u64)> {
    (0..set.num_processors()).find_map(|p| {
        let proc = ProcessorId::new(p);
        let ppm = set.processor_utilization_ppm(proc);
        (ppm > 1_000_000).then_some((proc, ppm))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::sa_ds::analyze_ds;
    use crate::analysis::sa_pm::analyze_pm;

    fn d(t: i64) -> Dur {
        Dur::from_ticks(t)
    }

    fn pm_state() -> AdmissionState {
        AdmissionState::new(2, AdmissionConfig::new(AdmissionMode::PmFamily))
    }

    /// The chains of the paper's Example 2, as admission requests.
    /// Deadlines are loosened to 20 — under the paper's deadline = period
    /// setting T2's PM bound of 7 exceeds its period of 6, and the engine
    /// would (correctly) refuse it.
    fn example2_requests() -> Vec<ChainRequest> {
        vec![
            ChainRequest::new(1, d(4), vec![(0, d(2))])
                .with_rank(0)
                .with_deadline(d(20)),
            ChainRequest::new(2, d(6), vec![(0, d(2)), (1, d(3))])
                .with_rank(1)
                .with_deadline(d(20)),
            ChainRequest::new(3, d(6), vec![(1, d(2))])
                .with_rank(2)
                .with_deadline(d(20)),
        ]
    }

    #[test]
    fn admitted_bounds_match_batch_analysis() {
        let mut st = pm_state();
        for req in example2_requests() {
            let dec = st.admit(req);
            assert!(dec.admitted, "{:?}", dec.reject);
        }
        let set = st.task_set().unwrap().clone();
        let batch = analyze_pm(&set, &AnalysisConfig::DEFAULT).unwrap();
        for (pos, (id, bound)) in st.resident_bounds().into_iter().enumerate() {
            assert_eq!(bound, batch.task_bound(TaskId::new(pos)), "chain {id}");
        }
        // The paper's PM bounds survive the request round-trip: 2, 7, 5.
        assert_eq!(st.bound(1), Some(d(2)));
        assert_eq!(st.bound(2), Some(d(7)));
        assert_eq!(st.bound(3), Some(d(5)));
        assert_eq!(st.residents(), 3);
    }

    #[test]
    fn deadline_miss_rejects_and_rolls_back() {
        let mut st = pm_state();
        // One resident at half capacity.
        assert!(
            st.admit(ChainRequest::new(1, d(4), vec![(0, d(2))]))
                .admitted
        );
        let before = st.resident_bounds();
        // A candidate whose own bound (2 + 2 interference) exceeds its
        // tight deadline.
        let dec = st.admit(
            ChainRequest::new(2, d(8), vec![(0, d(2))])
                .with_rank(1)
                .with_deadline(d(3)),
        );
        assert!(!dec.admitted);
        assert!(matches!(
            dec.reject,
            Some(RejectReason::DeadlineMiss { chain: 2, .. })
        ));
        assert_eq!(st.resident_bounds(), before, "rejection must not mutate");
        assert_eq!(st.residents(), 1);
    }

    #[test]
    fn high_rank_arrival_preempting_a_resident_can_be_rejected() {
        let mut st = pm_state();
        // Resident with zero slack: period 4, exec 2, deadline 2.
        assert!(
            st.admit(
                ChainRequest::new(1, d(4), vec![(0, d(2))])
                    .with_rank(5)
                    .with_deadline(d(2))
            )
            .admitted
        );
        // A more important chain would push the resident past its
        // deadline: must be rejected to protect the resident.
        let dec = st.admit(
            ChainRequest::new(2, d(16), vec![(0, d(1))])
                .with_rank(0)
                .with_deadline(d(16)),
        );
        assert!(!dec.admitted);
        match dec.reject {
            Some(RejectReason::DeadlineMiss { chain, .. }) => assert_eq!(chain, 1),
            other => panic!("expected resident deadline miss, got {other:?}"),
        }
    }

    #[test]
    fn duplicate_id_is_rejected() {
        let mut st = pm_state();
        assert!(
            st.admit(ChainRequest::new(7, d(10), vec![(0, d(1))]))
                .admitted
        );
        let dec = st.admit(ChainRequest::new(7, d(20), vec![(1, d(1))]));
        assert!(matches!(dec.reject, Some(RejectReason::DuplicateId)));
    }

    #[test]
    fn invalid_chain_is_rejected() {
        let mut st = pm_state();
        let dec = st.admit(ChainRequest::new(1, d(10), vec![]));
        assert!(matches!(dec.reject, Some(RejectReason::Invalid(_))));
        let dec = st.admit(ChainRequest::new(1, d(10), vec![(9, d(1))]));
        assert!(matches!(dec.reject, Some(RejectReason::Invalid(_))));
        assert_eq!(st.residents(), 0);
    }

    #[test]
    fn gate_fires_strictly_over_capacity_only() {
        let mut st = pm_state();
        // Three chains of execution 1 / period 3 saturate P0 *exactly*:
        // floor sum = 999 999 ppm — the gate must NOT fire, and the real
        // analysis admits (the set is schedulable at the boundary).
        for id in 1..=3 {
            let dec = st.admit(ChainRequest::new(id, d(3), vec![(0, d(1))]).with_rank(id as u32));
            assert!(dec.admitted, "{:?}", dec.reject);
        }
        assert_eq!(st.stats().gate_rejects, 0);
        // One more tick of demand pushes floor utilization over 10⁶:
        // gate reject, no analysis.
        let dec = st.admit(ChainRequest::new(4, d(30), vec![(0, d(1))]).with_rank(9));
        assert!(!dec.admitted);
        assert!(matches!(
            dec.reject,
            Some(RejectReason::UtilizationGate { .. })
        ));
        assert_eq!(dec.reanalyzed, 0, "gate skips the analysis entirely");
        assert_eq!(st.stats().gate_rejects, 1);
        assert_eq!(st.residents(), 3);
    }

    #[test]
    fn memoization_skips_unaffected_processors() {
        let mut st = pm_state();
        assert!(
            st.admit(ChainRequest::new(1, d(10), vec![(0, d(2))]).with_rank(0))
                .admitted
        );
        assert!(
            st.admit(ChainRequest::new(2, d(10), vec![(1, d(2))]).with_rank(0))
                .admitted
        );
        // A P0-only candidate at lowest rank dirties nothing resident:
        // chain 1 is above it, chain 2 shares no processor.
        let dec = st.admit(ChainRequest::new(3, d(20), vec![(0, d(1))]).with_rank(9));
        assert!(dec.admitted);
        assert_eq!(dec.reanalyzed, 1, "only the candidate itself");
        assert_eq!(dec.skipped, 2);
        // A rank-0 P0 candidate lands below the equal-rank seniors (seq
        // tie-break), so it dirties only the rank-9 P0 chain 3 beneath it.
        let dec = st.admit(ChainRequest::new(4, d(40), vec![(0, d(1))]));
        assert!(dec.admitted);
        assert_eq!(dec.reanalyzed, 2, "candidate + the P0 resident below it");
        assert_eq!(
            dec.skipped, 2,
            "residents at or above the candidate keep their memos"
        );
    }

    #[test]
    fn incremental_matches_cold_oracle_over_a_mixed_sequence() {
        let cfg = AdmissionConfig::new(AdmissionMode::PmFamily);
        let mut warm = AdmissionState::new(2, cfg);
        let mut cold = AdmissionState::new(2, cfg.with_memoization(false));
        let reqs = example2_requests();
        for req in &reqs {
            let a = warm.admit(req.clone());
            let b = cold.admit(req.clone());
            assert_eq!(a.admitted, b.admitted);
            assert_eq!(a.bound, b.bound);
            assert_eq!(a.reject, b.reject);
            assert_eq!(warm.resident_bounds(), cold.resident_bounds());
        }
        assert!(warm.retire(2).is_ok());
        assert!(cold.retire(2).is_ok());
        assert_eq!(warm.resident_bounds(), cold.resident_bounds());
        // Re-admit after the retire: hints must have been invalidated.
        let req = ChainRequest::new(9, d(6), vec![(0, d(1)), (1, d(1))]).with_rank(1);
        let a = warm.admit(req.clone());
        let b = cold.admit(req);
        assert_eq!(a.bound, b.bound);
        assert_eq!(warm.resident_bounds(), cold.resident_bounds());
    }

    #[test]
    fn retire_unknown_chain_errors() {
        let mut st = pm_state();
        assert!(matches!(st.retire(42), Err(RetireError::UnknownChain(42))));
    }

    #[test]
    fn retire_to_empty_and_readmit() {
        let mut st = pm_state();
        assert!(
            st.admit(ChainRequest::new(1, d(4), vec![(0, d(2))]))
                .admitted
        );
        let out = st.retire(1).unwrap();
        assert_eq!(out.residents, 0);
        assert!(st.task_set().is_none());
        assert!(
            st.admit(ChainRequest::new(1, d(4), vec![(0, d(2))]))
                .admitted
        );
        assert_eq!(st.bound(1), Some(d(2)));
    }

    #[test]
    fn retire_refreshes_survivor_bounds() {
        let mut st = pm_state();
        assert!(
            st.admit(ChainRequest::new(1, d(4), vec![(0, d(2))]).with_rank(0))
                .admitted
        );
        assert!(
            st.admit(ChainRequest::new(2, d(8), vec![(0, d(2))]).with_rank(1))
                .admitted
        );
        // Chain 2 suffers interference from chain 1: bound 2 + 2·1 … = 4? It
        // completes after one chain-1 preemption window: 2+2 = 4... the
        // exact value comes from the batch oracle below.
        let with_interference = st.bound(2).unwrap();
        st.retire(1).unwrap();
        assert_eq!(st.bound(2), Some(d(2)), "interference gone");
        assert!(with_interference > d(2));
        let set = st.task_set().unwrap();
        let batch = analyze_pm(set, &AnalysisConfig::DEFAULT).unwrap();
        assert_eq!(st.bound(2).unwrap(), batch.task_bound(TaskId::new(0)));
    }

    #[test]
    fn ds_mode_matches_batch_sa_ds() {
        let cfg = AdmissionConfig::new(AdmissionMode::DirectSync);
        let mut warm = AdmissionState::new(2, cfg);
        let mut cold = AdmissionState::new(2, cfg.with_memoization(false));
        // Deadlines loosened so Example 2's DS bound of 8 still admits.
        for req in example2_requests() {
            let req = req.clone().with_deadline(d(20));
            let a = warm.admit(req.clone());
            let b = cold.admit(req);
            assert!(a.admitted, "{:?}", a.reject);
            assert_eq!(a.admitted, b.admitted);
            assert_eq!(a.bound, b.bound);
            assert_eq!(warm.resident_bounds(), cold.resident_bounds());
        }
        let set = warm.task_set().unwrap();
        let batch = analyze_ds(set, &AnalysisConfig::DEFAULT).unwrap();
        for (pos, (_, bound)) in warm.resident_bounds().into_iter().enumerate() {
            assert_eq!(bound, batch.task_bound(TaskId::new(pos)));
        }
        // Retire and re-check against a fresh batch run.
        warm.retire(1).unwrap();
        cold.retire(1).unwrap();
        assert_eq!(warm.resident_bounds(), cold.resident_bounds());
        let batch = analyze_ds(warm.task_set().unwrap(), &AnalysisConfig::DEFAULT).unwrap();
        for (pos, (_, bound)) in warm.resident_bounds().into_iter().enumerate() {
            assert_eq!(bound, batch.task_bound(TaskId::new(pos)));
        }
    }

    #[test]
    fn equal_ranks_break_ties_by_seniority() {
        let mut st = pm_state();
        assert!(
            st.admit(ChainRequest::new(5, d(10), vec![(0, d(1))]))
                .admitted
        );
        assert!(
            st.admit(ChainRequest::new(3, d(10), vec![(0, d(1))]))
                .admitted
        );
        // Same rank: the earlier admission keeps the higher priority, so
        // chain 3 (junior) suffers chain 5's interference.
        assert!(st.bound(3).unwrap() > st.bound(5).unwrap());
        let set = st.task_set().unwrap();
        // Priority order in the built set follows admission order.
        let p5 = set.subtask(SubtaskId::new(TaskId::new(0), 0)).priority();
        let p3 = set.subtask(SubtaskId::new(TaskId::new(1), 0)).priority();
        assert!(p5.is_higher_than(p3));
    }

    #[test]
    fn stats_accumulate() {
        let mut st = pm_state();
        st.admit(ChainRequest::new(1, d(4), vec![(0, d(2))]));
        st.admit(ChainRequest::new(1, d(4), vec![(0, d(2))])); // duplicate
        st.retire(1).unwrap();
        let s = st.stats();
        assert_eq!(s.decisions, 2);
        assert_eq!(s.admitted, 1);
        assert_eq!(s.rejected, 1);
        assert_eq!(s.retired, 1);
        assert!(s.subtasks_reanalyzed >= 1);
    }
}
