//! **Algorithm IEERT** (Figure 10 of the paper): one sweep of the
//! intermediate-end-to-end-response-time analysis for the DS protocol.
//!
//! Under direct synchronization a subtask's release time inherits the
//! variability of its predecessor's completion ("clumping"): instances of
//! `T_{u,v}` may release up to `R_{u,v−1}` ticks after their periodic
//! baseline, so a window of length `t` can contain
//! `⌈(t + R_{u,v−1})/p_u⌉` of them. One IEERT sweep takes a set of IEER
//! bounds `R` and produces a new set `R′ = IEERT(T, R)`:
//!
//! 1. `D_{i,j}` = least `t > 0` with
//!    `t = Σ_{T_{u,v} ∈ H_{i,j} ∪ {T_{i,j}}} ⌈(t + R_{u,v−1})/p_u⌉ · c_{u,v}`;
//! 2. `M_{i,j} = ⌈(D_{i,j} + R_{i,j−1}) / p_i⌉`;
//! 3. for `m = 1..M`: `C_{i,j}(m)` = least `t` with
//!    `t = m·c_{i,j} + Σ_{H_{i,j}} ⌈(t + R_{u,v−1})/p_u⌉ · c_{u,v}`, and
//!    `R_{i,j}(m) = C_{i,j}(m) + R_{i,j−1} − (m−1)p_i`;
//! 4. `R′_{i,j} = max_m R_{i,j}(m)`.
//!
//! `R_{u,0}` (the "IEER of the predecessor of a first subtask") is zero.
//!
//! [`crate::analysis::sa_ds`] iterates sweeps to the least fixed point.

use crate::analysis::busy_period::{
    fixed_point, fixed_point_with_hint, utilization_ppm, DemandTerm, FixedPointFailure,
    FixedPointLimits,
};
use crate::analysis::sa_pm::map_failure;
use crate::analysis::AnalysisConfig;
use crate::error::AnalyzeError;
use crate::task::{SubtaskId, TaskId, TaskSet};
use crate::time::Dur;

/// A set of IEER bounds, one per subtask: `bounds[i][j]` bounds the time
/// from the release of `T_{i,1}(m)` to the completion of `T_{i,j}(m)`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct IeerBounds {
    bounds: Vec<Vec<Dur>>,
}

impl IeerBounds {
    /// The optimistic seed of Algorithm SA/DS: `R_{i,j} = Σ_{k≤j} c_{i,k}`
    /// (pure execution, no interference).
    pub fn seed(set: &TaskSet) -> IeerBounds {
        let bounds = set
            .tasks()
            .iter()
            .map(|t| {
                let mut acc = Dur::ZERO;
                t.subtasks()
                    .iter()
                    .map(|s| {
                        acc += s.execution();
                        acc
                    })
                    .collect()
            })
            .collect();
        IeerBounds { bounds }
    }

    /// The optimistic seed of [`seed`](IeerBounds::seed), with individual
    /// entries *raised* to a caller-supplied prior where one is available
    /// (`max(cumulative execution, prior)` per subtask).
    ///
    /// This is the warm seed of the incremental admission engine: after a
    /// system grows, the previously *converged* bounds of the retained
    /// subtasks are valid priors — demand growth moves the least fixed
    /// point of the IEERT sweep up, never down, so each old bound still
    /// lies at or below its new converged value. Seeding there skips the
    /// sweeps that would only re-climb already-established ground.
    ///
    /// Soundness requires every prior to be ≤ the subtask's bound at the
    /// **new** least fixed point; priors taken from a *shrunk* system
    /// (after a retirement) violate that and must not be used. The seed
    /// stays within `[optimistic seed, least fixed point]`, where the
    /// monotone sweep provably converges to the same least fixed point as
    /// the cold seed (see `seeded_run_matches_cold_run` in `sa_ds`).
    pub fn seed_with(set: &TaskSet, prior: impl Fn(SubtaskId) -> Option<Dur>) -> IeerBounds {
        let mut seeded = IeerBounds::seed(set);
        for sub in set.subtasks() {
            if let Some(p) = prior(sub.id()) {
                let floor = seeded.get(sub.id());
                seeded.set(sub.id(), floor.max(p));
            }
        }
        seeded
    }

    /// Builds bounds from raw per-subtask values (`[task][chain index]`).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the shape does not match any task set the
    /// caller later uses it with; no validation is possible here.
    pub fn from_raw(bounds: Vec<Vec<Dur>>) -> IeerBounds {
        IeerBounds { bounds }
    }

    /// The IEER bound of one subtask.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn get(&self, id: SubtaskId) -> Dur {
        self.bounds[id.task().index()][id.index()]
    }

    /// The IEER bound of `id`'s predecessor, or zero for a first subtask
    /// (the paper's `R_{i,j−1}` with `R_{i,0} = 0`).
    pub fn predecessor_bound(&self, id: SubtaskId) -> Dur {
        match id.predecessor() {
            Some(p) => self.get(p),
            None => Dur::ZERO,
        }
    }

    /// The end-to-end bound of a task: the IEER bound of its last subtask.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn task_bound(&self, id: TaskId) -> Dur {
        *self.bounds[id.index()]
            .last()
            .expect("chains are non-empty")
    }

    /// Raw bounds, `[task][chain index]`.
    pub fn as_slices(&self) -> &[Vec<Dur>] {
        &self.bounds
    }

    fn set(&mut self, id: SubtaskId, value: Dur) {
        self.bounds[id.task().index()][id.index()] = value;
    }
}

/// One Jacobi sweep: every new bound is computed from the *input* bounds,
/// exactly as the pseudo-code of Figure 10 reads.
///
/// # Errors
///
/// Any [`AnalyzeError`]; [`AnalyzeError::is_failure`] errors correspond to
/// the paper's "no finite bound" outcome.
pub fn ieert_pass(
    set: &TaskSet,
    current: &IeerBounds,
    cfg: &AnalysisConfig,
) -> Result<IeerBounds, AnalyzeError> {
    let mut next = current.clone();
    for task in set.tasks() {
        for sub in task.subtasks() {
            let value = subtask_ieer(set, sub.id(), current, cfg)?;
            next.set(sub.id(), value);
        }
    }
    Ok(next)
}

/// One Gauss–Seidel sweep (ablation): bounds computed earlier in the sweep
/// are used immediately by later subtasks. Converges to the same least
/// fixed point as [`ieert_pass`] in fewer sweeps (both iterations are
/// monotone from the same seed; see the `sa_ds` tests).
pub fn ieert_pass_gauss_seidel(
    set: &TaskSet,
    current: &IeerBounds,
    cfg: &AnalysisConfig,
) -> Result<IeerBounds, AnalyzeError> {
    let mut state = current.clone();
    for task in set.tasks() {
        for sub in task.subtasks() {
            let value = subtask_ieer(set, sub.id(), &state, cfg)?;
            state.set(sub.id(), value);
        }
    }
    Ok(state)
}

/// Steps 1–4 of Figure 10 for one subtask.
fn subtask_ieer(
    set: &TaskSet,
    id: SubtaskId,
    bounds: &IeerBounds,
    cfg: &AnalysisConfig,
) -> Result<Dur, AnalyzeError> {
    let me = set.subtask(id);
    let period = set.task(id.task()).period();
    let own_jitter = bounds.predecessor_bound(id);

    let interference: Vec<DemandTerm> = set
        .interference_set(id)
        .into_iter()
        .map(|sid| {
            DemandTerm::jittered(
                set.task(sid.task()).period(),
                set.subtask(sid).execution(),
                bounds.predecessor_bound(sid),
            )
        })
        .collect();

    // Blocking by lower-priority non-preemptive work (zero in the paper's
    // fully preemptive base model).
    let blocking = set.blocking_bound(id);

    // Step 1: busy-period duration with jittered demand.
    let mut with_self = interference.clone();
    with_self.push(DemandTerm::jittered(period, me.execution(), own_jitter));
    let busy_cap = busy_period_cap(&with_self, cfg);
    let limits = FixedPointLimits::new(busy_cap, cfg.max_fixed_point_iterations);
    let duration = fixed_point(blocking, &with_self, limits).map_err(|f| match f {
        FixedPointFailure::ExceedsCap => {
            if utilization_ppm(&with_self) >= 1_000_000 {
                AnalyzeError::Overload {
                    subtask: id,
                    utilization_ppm: utilization_ppm(&with_self),
                }
            } else {
                // Below capacity but the jitter terms alone exceed the cap:
                // the bounds have blown up — a failure, not an overload.
                AnalyzeError::BoundExceedsCap {
                    subtask: id,
                    cap: busy_cap,
                }
            }
        }
        other => map_failure(other, id, busy_cap),
    })?;

    // Step 2: instances to examine.
    let instances = duration
        .checked_add(own_jitter)
        .ok_or(AnalyzeError::ArithmeticOverflow { subtask: id })?
        .ceil_div(period)
        .max(1);

    // Step 3: per-instance completion and IEER times.
    let limits = FixedPointLimits::new(duration, cfg.max_fixed_point_iterations);
    let cap = cfg.cap_for_period(period);
    let mut worst = Dur::ZERO;
    let mut prev_completion = Dur::ZERO;
    for m in 1..=instances {
        let offset = me
            .execution()
            .checked_mul(m)
            .and_then(|x| x.checked_add(blocking))
            .ok_or(AnalyzeError::ArithmeticOverflow { subtask: id })?;
        let completion = fixed_point_with_hint(prev_completion, offset, &interference, limits)
            .map_err(|f| map_failure(f, id, duration))?;
        prev_completion = completion;
        let ieer = completion
            .checked_add(own_jitter)
            .ok_or(AnalyzeError::ArithmeticOverflow { subtask: id })?
            - period * (m - 1);
        worst = worst.max(ieer);
        // Once the per-instance IEER already exceeds the failure cap there
        // is no point examining further instances this sweep: the outer
        // SA/DS loop will declare failure anyway.
        if worst > cap {
            return Err(AnalyzeError::BoundExceedsCap { subtask: id, cap });
        }
    }

    Ok(worst)
}

/// Busy-period search limit: base periods scaled by the failure factor,
/// plus the jitters (which shift demand without adding steady-state load).
fn busy_period_cap(terms: &[DemandTerm], cfg: &AnalysisConfig) -> Dur {
    let total_period: Dur = terms.iter().map(|t| t.period).sum();
    let total_jitter: Dur = terms.iter().map(|t| t.jitter).sum();
    total_period
        .saturating_mul(cfg.failure_factor)
        .saturating_add(total_jitter)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::examples::example2;
    use crate::task::Priority;
    use crate::time::Dur;

    fn d(t: i64) -> Dur {
        Dur::from_ticks(t)
    }

    fn sid(t: usize, j: usize) -> SubtaskId {
        SubtaskId::new(TaskId::new(t), j)
    }

    #[test]
    fn seed_is_cumulative_execution() {
        let set = example2();
        let seed = IeerBounds::seed(&set);
        assert_eq!(seed.get(sid(0, 0)), d(2));
        assert_eq!(seed.get(sid(1, 0)), d(2));
        assert_eq!(seed.get(sid(1, 1)), d(5));
        assert_eq!(seed.get(sid(2, 0)), d(2));
        assert_eq!(seed.task_bound(TaskId::new(1)), d(5));
        assert_eq!(seed.predecessor_bound(sid(1, 1)), d(2));
        assert_eq!(seed.predecessor_bound(sid(1, 0)), Dur::ZERO);
    }

    #[test]
    fn first_pass_on_example2() {
        // Hand-computed sweep from the seed (see module docs for the
        // equations): T0.0 → 2, T1.0 → 4, T1.1 → 5 (jitter 2),
        // T2.0 → 8 (two jittered T1.1 instances can land in its window).
        let set = example2();
        let seed = IeerBounds::seed(&set);
        let pass1 = ieert_pass(&set, &seed, &AnalysisConfig::default()).unwrap();
        assert_eq!(pass1.get(sid(0, 0)), d(2));
        assert_eq!(pass1.get(sid(1, 0)), d(4));
        assert_eq!(pass1.get(sid(1, 1)), d(5));
        assert_eq!(pass1.get(sid(2, 0)), d(8));
    }

    #[test]
    fn second_pass_reaches_fixpoint_values() {
        let set = example2();
        let cfg = AnalysisConfig::default();
        let seed = IeerBounds::seed(&set);
        let pass1 = ieert_pass(&set, &seed, &cfg).unwrap();
        let pass2 = ieert_pass(&set, &pass1, &cfg).unwrap();
        // T1.1 now sees jitter R_{1,0} = 4: IEER 7. T2.0 stays 8.
        assert_eq!(pass2.get(sid(1, 1)), d(7));
        assert_eq!(pass2.get(sid(2, 0)), d(8));
        let pass3 = ieert_pass(&set, &pass2, &cfg).unwrap();
        assert_eq!(pass3, pass2, "fixed point reached");
    }

    #[test]
    fn zero_jitter_reduces_to_sa_pm_for_first_subtasks() {
        use crate::analysis::sa_pm::analyze_pm;
        let set = example2();
        let cfg = AnalysisConfig::default();
        let pm = analyze_pm(&set, &cfg).unwrap();
        let seed = IeerBounds::seed(&set);
        let pass1 = ieert_pass(&set, &seed, &cfg).unwrap();
        // A first subtask whose interferers are also first subtasks sees no
        // jitter anywhere, so one IEERT step computes exactly the SA/PM
        // response bound: true for T0.0 (no interference) and T1.0
        // (interfered only by T0.0).
        assert_eq!(pass1.get(sid(0, 0)), pm.response(sid(0, 0)));
        assert_eq!(pass1.get(sid(1, 0)), pm.response(sid(1, 0)));
        // T2.0 is interfered by the *second* subtask T1.1, whose release
        // jitter inflates the IEERT bound beyond SA/PM's.
        assert!(pass1.get(sid(2, 0)) > pm.response(sid(2, 0)));
    }

    #[test]
    fn gauss_seidel_single_sweep_dominates_jacobi() {
        // GS propagates within the sweep, so after one sweep every GS bound
        // is ≥ the Jacobi bound (both below the common fixed point).
        let set = example2();
        let cfg = AnalysisConfig::default();
        let seed = IeerBounds::seed(&set);
        let j = ieert_pass(&set, &seed, &cfg).unwrap();
        let gs = ieert_pass_gauss_seidel(&set, &seed, &cfg).unwrap();
        for task in set.tasks() {
            for sub in task.subtasks() {
                assert!(gs.get(sub.id()) >= j.get(sub.id()));
            }
        }
        // And on this example GS already reaches the fixed point.
        assert_eq!(gs.get(sid(1, 1)), d(7));
        assert_eq!(gs.get(sid(2, 0)), d(8));
    }

    #[test]
    fn failure_cap_fires_for_hopeless_systems() {
        // Two long chains ping-ponging between two fully loaded processors:
        // jitter feedback grows without bound. util per proc = 1.0.
        let set = crate::task::TaskSet::builder(2)
            .task(d(10))
            .subtask(0, d(5), Priority::new(0))
            .subtask(1, d(5), Priority::new(1))
            .finish_task()
            .task(d(10))
            .subtask(1, d(5), Priority::new(0))
            .subtask(0, d(5), Priority::new(1))
            .finish_task()
            .build()
            .unwrap();
        let cfg = AnalysisConfig {
            failure_factor: 10,
            ..AnalysisConfig::default()
        };
        let mut bounds = IeerBounds::seed(&set);
        let mut failed = false;
        for _ in 0..200 {
            match ieert_pass(&set, &bounds, &cfg) {
                Ok(next) => {
                    if next == bounds {
                        break;
                    }
                    bounds = next;
                }
                Err(e) => {
                    assert!(e.is_failure(), "unexpected error kind: {e:?}");
                    failed = true;
                    break;
                }
            }
        }
        assert!(failed, "expected the failure criterion to fire");
    }

    #[test]
    fn seed_with_raises_entries_but_never_lowers_them() {
        let set = example2();
        // A prior below the optimistic seed is ignored (the seed is a
        // hard floor); one above it wins.
        let seeded = IeerBounds::seed_with(&set, |id| {
            if id == sid(1, 1) {
                Some(d(7)) // converged value, above the seed of 5
            } else if id == sid(0, 0) {
                Some(d(1)) // below the seed of 2: ignored
            } else {
                None
            }
        });
        assert_eq!(seeded.get(sid(1, 1)), d(7));
        assert_eq!(seeded.get(sid(0, 0)), d(2));
        assert_eq!(seeded.get(sid(2, 0)), d(2));
        // No priors at all: identical to the plain seed.
        let plain = IeerBounds::seed_with(&set, |_| None);
        assert_eq!(plain, IeerBounds::seed(&set));
    }

    #[test]
    fn from_raw_roundtrips() {
        let b = IeerBounds::from_raw(vec![vec![d(1), d(2)], vec![d(3)]]);
        assert_eq!(b.get(sid(0, 1)), d(2));
        assert_eq!(b.task_bound(TaskId::new(1)), d(3));
        assert_eq!(b.as_slices().len(), 2);
    }
}
