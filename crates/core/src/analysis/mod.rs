//! Schedulability analysis algorithms.
//!
//! Three algorithms from the paper:
//!
//! * [`sa_pm::analyze_pm`] — **Algorithm SA/PM** (§4.1): busy-period
//!   analysis of strictly periodic subtasks, valid for the PM and MPM
//!   protocols, and — by the paper's Theorem 1 — for the RG protocol too.
//! * [`ieert::ieert_pass`] — **Algorithm IEERT** (Figure 10): one sweep
//!   computing new bounds on the *intermediate end-to-end response* (IEER)
//!   times of all subtasks from a previous set of bounds, accounting for
//!   release jitter ("clumping") under direct synchronization.
//! * [`sa_ds::analyze_ds`] — **Algorithm SA/DS** (Figure 11): iterate IEERT
//!   from an optimistic seed until a fixed point, or declare failure when a
//!   bound exceeds `failure_factor × period` (300× by default, the paper's
//!   "practically infinite" criterion).
//!
//! [`report`] assembles per-protocol bounds and deadlines into a
//! human-readable schedulability verdict.
//!
//! [`admission`] wraps the batch analyses in an incremental online
//! admission-control engine: a resident [`admission::AdmissionState`]
//! memoizes per-subtask fixed points and re-runs only the analyses whose
//! interference sets an `admit`/`retire` actually changed, producing
//! verdicts bit-identical to a from-scratch batch re-analysis.

pub mod admission;
pub mod busy_period;
pub mod ieert;
pub mod report;
pub mod sa_ds;
pub mod sa_pm;
pub mod sensitivity;

use crate::time::Dur;

/// Tuning knobs shared by all analyses.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct AnalysisConfig {
    /// A bound larger than `failure_factor × period` is treated as infinite
    /// — the paper's failure criterion. Default 300.
    pub failure_factor: i64,
    /// Budget for any single fixed-point iteration. With integer ticks and
    /// monotone demand this is a backstop, not a tuning knob. Default 10⁶.
    pub max_fixed_point_iterations: u64,
    /// Budget for the outer SA/DS loop (IEERT sweeps). Default 10⁵.
    pub max_outer_iterations: u64,
}

impl AnalysisConfig {
    /// The defaults used throughout the paper reproduction.
    pub const DEFAULT: AnalysisConfig = AnalysisConfig {
        failure_factor: 300,
        max_fixed_point_iterations: 1_000_000,
        max_outer_iterations: 100_000,
    };

    /// The per-subtask cap implied by the failure criterion:
    /// `failure_factor × period` (saturating).
    pub fn cap_for_period(&self, period: Dur) -> Dur {
        period.saturating_mul(self.failure_factor)
    }
}

impl Default for AnalysisConfig {
    fn default() -> AnalysisConfig {
        AnalysisConfig::DEFAULT
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_matches_paper() {
        let cfg = AnalysisConfig::default();
        assert_eq!(cfg.failure_factor, 300);
        assert_eq!(
            cfg.cap_for_period(Dur::from_ticks(100)),
            Dur::from_ticks(30_000)
        );
    }

    #[test]
    fn cap_saturates() {
        let cfg = AnalysisConfig::default();
        assert_eq!(cfg.cap_for_period(Dur::MAX), Dur::MAX);
    }
}
