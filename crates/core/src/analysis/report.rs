//! Schedulability verdicts: bounds vs deadlines, per protocol.
//!
//! [`analyze`] picks the right algorithm for a protocol (SA/DS for direct
//! synchronization; SA/PM for PM, MPM and — per Theorem 1 — RG), compares
//! every task's estimated worst-case end-to-end response time against its
//! relative deadline, and assembles a printable [`SchedulabilityReport`].

use std::fmt;

use crate::analysis::sa_ds::analyze_ds;
use crate::analysis::sa_pm::analyze_pm;
use crate::analysis::AnalysisConfig;
use crate::error::AnalyzeError;
use crate::protocol::Protocol;
use crate::task::{TaskId, TaskSet};
use crate::time::Dur;

/// One task's verdict.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TaskVerdict {
    /// The task.
    pub task: TaskId,
    /// Estimated worst-case end-to-end response time (the tightest known
    /// upper bound for the protocol analyzed).
    pub bound: Dur,
    /// The task's end-to-end relative deadline.
    pub deadline: Dur,
}

impl TaskVerdict {
    /// `true` if the bound proves the task meets its deadline.
    pub fn schedulable(&self) -> bool {
        self.bound <= self.deadline
    }
}

/// The system-wide schedulability verdict for one protocol.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SchedulabilityReport {
    protocol: Protocol,
    verdicts: Vec<TaskVerdict>,
}

impl SchedulabilityReport {
    /// The protocol analyzed.
    pub fn protocol(&self) -> Protocol {
        self.protocol
    }

    /// Per-task verdicts, indexed by [`TaskId::index`].
    pub fn verdicts(&self) -> &[TaskVerdict] {
        &self.verdicts
    }

    /// The verdict of one task.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn verdict(&self, id: TaskId) -> TaskVerdict {
        self.verdicts[id.index()]
    }

    /// `true` iff every task's bound is within its deadline.
    pub fn all_schedulable(&self) -> bool {
        self.verdicts.iter().all(TaskVerdict::schedulable)
    }
}

impl fmt::Display for SchedulabilityReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "schedulability under {} protocol", self.protocol)?;
        writeln!(f, "{:<8}{:>12}{:>12}  verdict", "task", "bound", "deadline")?;
        for v in &self.verdicts {
            writeln!(
                f,
                "{:<8}{:>12}{:>12}  {}",
                v.task.to_string(),
                v.bound.ticks(),
                v.deadline.ticks(),
                if v.schedulable() { "ok" } else { "MISS" }
            )?;
        }
        write!(
            f,
            "system: {}",
            if self.all_schedulable() {
                "schedulable"
            } else {
                "NOT provably schedulable"
            }
        )
    }
}

/// Analyzes `set` under `protocol` with the best known algorithm and
/// produces the report.
///
/// # Errors
///
/// Propagates [`AnalyzeError`] from the underlying algorithm; a *failure*
/// (see [`AnalyzeError::is_failure`]) means no finite bound was found,
/// which for the DS protocol is a real outcome the paper quantifies
/// (Figure 12).
pub fn analyze(
    set: &TaskSet,
    protocol: Protocol,
    cfg: &AnalysisConfig,
) -> Result<SchedulabilityReport, AnalyzeError> {
    let bounds: Vec<Dur> = match protocol {
        Protocol::DirectSync => analyze_ds(set, cfg)?.task_bounds(),
        Protocol::PhaseModification
        | Protocol::ModifiedPhaseModification
        | Protocol::ReleaseGuard => analyze_pm(set, cfg)?.task_bounds(),
    };
    let verdicts = set
        .tasks()
        .iter()
        .zip(bounds)
        .map(|(t, bound)| TaskVerdict {
            task: t.id(),
            bound,
            deadline: t.deadline(),
        })
        .collect();
    Ok(SchedulabilityReport { protocol, verdicts })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::examples::example2;

    fn cfg() -> AnalysisConfig {
        AnalysisConfig::default()
    }

    #[test]
    fn example2_verdicts_per_protocol() {
        let set = example2();
        // Under DS, T2 (paper's T3) cannot be proven schedulable.
        let ds = analyze(&set, Protocol::DirectSync, &cfg()).unwrap();
        assert!(!ds.all_schedulable());
        assert!(!ds.verdict(TaskId::new(2)).schedulable());
        assert!(ds.verdict(TaskId::new(0)).schedulable());
        // Under PM/MPM/RG all three tasks are schedulable (bounds 2, 7, 5
        // against deadlines 4, 6... wait: T1's bound is 7 > deadline 6).
        let pm = analyze(&set, Protocol::PhaseModification, &cfg()).unwrap();
        assert!(pm.verdict(TaskId::new(0)).schedulable());
        assert!(pm.verdict(TaskId::new(2)).schedulable());
        // T1 (paper's T2): bound 7 exceeds its end-to-end deadline 6 even
        // under PM — the paper never claims otherwise (it only discusses
        // T3's deadline).
        assert!(!pm.verdict(TaskId::new(1)).schedulable());
        assert!(!pm.all_schedulable());
    }

    #[test]
    fn rg_and_mpm_reports_equal_pm() {
        let set = example2();
        let pm = analyze(&set, Protocol::PhaseModification, &cfg()).unwrap();
        let mpm = analyze(&set, Protocol::ModifiedPhaseModification, &cfg()).unwrap();
        let rg = analyze(&set, Protocol::ReleaseGuard, &cfg()).unwrap();
        assert_eq!(pm.verdicts(), mpm.verdicts());
        assert_eq!(pm.verdicts(), rg.verdicts());
        assert_eq!(rg.protocol(), Protocol::ReleaseGuard);
    }

    #[test]
    fn display_contains_verdict_rows() {
        let set = example2();
        let report = analyze(&set, Protocol::DirectSync, &cfg()).unwrap();
        let text = report.to_string();
        assert!(text.contains("direct synchronization"));
        assert!(text.contains("T0"));
        assert!(text.contains("MISS"));
        assert!(text.contains("NOT provably schedulable"));
    }
}
