//! Sensitivity analysis: how much execution-time growth a system tolerates.
//!
//! The *critical scaling factor* of a system under a protocol is the
//! largest factor `α` by which **every** execution time can be multiplied
//! while the protocol's schedulability analysis still proves every task's
//! bound within its deadline. `α > 1` quantifies head-room, `α < 1` says
//! by how much the workload must shrink to become provably schedulable —
//! a practical lens the paper's yes/no verdicts lack.
//!
//! [`critical_scaling`] binary-searches `α` in integer permille
//! (thousandths); scaled execution times are rounded **up** (conservative)
//! and floored at one tick. Both the SA/PM and SA/DS analyses are monotone
//! in execution times, so the predicate "provably schedulable at `α`" is
//! monotone and the search is exact to the permille.
//!
//! # Examples
//!
//! ```
//! use rtsync_core::analysis::sensitivity::critical_scaling;
//! use rtsync_core::analysis::AnalysisConfig;
//! use rtsync_core::examples::example2;
//! use rtsync_core::protocol::Protocol;
//!
//! let system = example2();
//! let cfg = AnalysisConfig::default();
//! // Example 2 is NOT provably schedulable as given (T2's bound is 7 > 6
//! // even under RG), so its critical scaling is below 1.0 …
//! let rg = critical_scaling(&system, Protocol::ReleaseGuard, &cfg, 4_000);
//! assert!(rg < 1_000);
//! // … and DS tolerates even less.
//! let ds = critical_scaling(&system, Protocol::DirectSync, &cfg, 4_000);
//! assert!(ds <= rg);
//! ```

use crate::analysis::report::analyze;
use crate::analysis::AnalysisConfig;
use crate::protocol::Protocol;
use crate::task::{TaskSet, TaskSetBuilder};
use crate::time::Dur;

/// Rebuilds `set` with every execution time multiplied by
/// `permille / 1000`, rounded up, floored at one tick.
pub fn scale_executions(set: &TaskSet, permille: u32) -> TaskSet {
    let mut builder = TaskSetBuilder::new(set.num_processors());
    for task in set.tasks() {
        let mut tb = builder
            .task(task.period())
            .phase(task.phase())
            .deadline(task.deadline());
        for sub in task.subtasks() {
            let scaled = (sub.execution().ticks() as i128 * permille as i128 + 999) / 1000;
            let exec = Dur::from_ticks((scaled as i64).max(1));
            tb = if sub.is_preemptible() {
                tb.subtask(sub.processor().index(), exec, sub.priority())
            } else {
                tb.nonpreemptive_subtask(sub.processor().index(), exec, sub.priority())
            };
        }
        builder = tb.finish_task();
    }
    builder.build().expect("scaling preserves validity")
}

/// `true` if the protocol's analysis proves every task schedulable at the
/// given scaling.
pub fn provably_schedulable_at(
    set: &TaskSet,
    protocol: Protocol,
    cfg: &AnalysisConfig,
    permille: u32,
) -> bool {
    let scaled = scale_executions(set, permille);
    matches!(analyze(&scaled, protocol, cfg), Ok(report) if report.all_schedulable())
}

/// The largest scaling (in permille, searched over `[1, max_permille]`)
/// at which the system is still provably schedulable under `protocol`;
/// `0` if it is unschedulable even with every execution time at one tick.
pub fn critical_scaling(
    set: &TaskSet,
    protocol: Protocol,
    cfg: &AnalysisConfig,
    max_permille: u32,
) -> u32 {
    if !provably_schedulable_at(set, protocol, cfg, 1) {
        return 0;
    }
    if provably_schedulable_at(set, protocol, cfg, max_permille) {
        return max_permille;
    }
    // Invariant: schedulable at `lo`, not at `hi`.
    let (mut lo, mut hi) = (1u32, max_permille);
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if provably_schedulable_at(set, protocol, cfg, mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::examples::example2;
    use crate::task::{Priority, SubtaskId, TaskId};

    fn d(x: i64) -> Dur {
        Dur::from_ticks(x)
    }

    fn cfg() -> AnalysisConfig {
        AnalysisConfig::default()
    }

    #[test]
    fn scaling_rounds_up_and_floors_at_one() {
        let set = example2();
        let half = scale_executions(&set, 500);
        // c=3 → ceil(1.5) = 2; c=2 → 1.
        assert_eq!(
            half.subtask(SubtaskId::new(TaskId::new(1), 1)).execution(),
            d(2)
        );
        assert_eq!(
            half.subtask(SubtaskId::new(TaskId::new(0), 0)).execution(),
            d(1)
        );
        let tiny = scale_executions(&set, 1);
        for sub in tiny.subtasks() {
            assert_eq!(sub.execution(), d(1), "floor at one tick");
        }
        let identity = scale_executions(&set, 1000);
        assert_eq!(identity, set);
    }

    #[test]
    fn search_brackets_the_transition_exactly() {
        let set = example2();
        for protocol in [Protocol::ReleaseGuard, Protocol::DirectSync] {
            let alpha = critical_scaling(&set, protocol, &cfg(), 4_000);
            assert!(alpha > 0, "{protocol:?}");
            assert!(
                provably_schedulable_at(&set, protocol, &cfg(), alpha),
                "{protocol:?} at {alpha}"
            );
            assert!(
                !provably_schedulable_at(&set, protocol, &cfg(), alpha + 1),
                "{protocol:?} at {}",
                alpha + 1
            );
        }
    }

    #[test]
    fn rg_headroom_dominates_ds() {
        // RG's tighter analysis always tolerates at least as much load.
        let set = example2();
        let rg = critical_scaling(&set, Protocol::ReleaseGuard, &cfg(), 4_000);
        let ds = critical_scaling(&set, Protocol::DirectSync, &cfg(), 4_000);
        assert!(rg >= ds, "rg {rg} vs ds {ds}");
        // Example 2 is not provably schedulable as given under either.
        assert!(rg < 1_000);
    }

    #[test]
    fn comfortable_system_hits_the_cap() {
        let set = crate::task::TaskSet::builder(1)
            .task(d(100))
            .subtask(0, d(1), Priority::new(0))
            .finish_task()
            .build()
            .unwrap();
        assert_eq!(
            critical_scaling(&set, Protocol::ReleaseGuard, &cfg(), 4_000),
            4_000
        );
    }

    #[test]
    fn hopeless_system_returns_zero() {
        // Deadline shorter than one tick of execution can ever satisfy…
        // deadline 1 with a 2-subtask chain needs ≥ 2 ticks.
        let set = crate::task::TaskSet::builder(2)
            .task(d(100))
            .deadline(d(1))
            .subtask(0, d(5), Priority::new(0))
            .subtask(1, d(5), Priority::new(0))
            .finish_task()
            .build()
            .unwrap();
        assert_eq!(
            critical_scaling(&set, Protocol::ReleaseGuard, &cfg(), 4_000),
            0
        );
    }

    #[test]
    fn monotone_in_protocol_strength_on_random_shape() {
        // A small sanity grid: PM/MPM/RG share bounds, so identical α.
        let set = example2();
        let pm = critical_scaling(&set, Protocol::PhaseModification, &cfg(), 4_000);
        let mpm = critical_scaling(&set, Protocol::ModifiedPhaseModification, &cfg(), 4_000);
        let rg = critical_scaling(&set, Protocol::ReleaseGuard, &cfg(), 4_000);
        assert_eq!(pm, mpm);
        assert_eq!(pm, rg);
    }
}
