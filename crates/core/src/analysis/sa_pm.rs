//! **Algorithm SA/PM** (§4.1): schedulability analysis for the PM and MPM
//! protocols — and, by Theorem 1 of the paper, for the RG protocol.
//!
//! Under these protocols every subtask is (inside any busy period) a
//! periodic subtask, so Lehoczky's busy-period analysis applies on each
//! processor independently:
//!
//! 1. bound the duration `D_{i,j}` of a `φ_{i,j}`-level busy period;
//! 2. bound the number `M_{i,j} = ⌈D_{i,j}/p_i⌉` of instances inside it;
//! 3. bound the completion time `C_{i,j}(m)` of each instance
//!    `m = 1..M_{i,j}` and its response time
//!    `R_{i,j}(m) = C_{i,j}(m) − (m−1)p_i`;
//! 4. `R_{i,j} = max_m R_{i,j}(m)`;
//! 5. the end-to-end bound is `R_i = Σ_j R_{i,j}`.
//!
//! # Examples
//!
//! Example 2 of the paper: `R_{2,1} = 4`, so PM sets `f_{2,2} = 4`, and
//! `T₃`'s bound is 5 ≤ its deadline 6.
//!
//! ```
//! use rtsync_core::analysis::sa_pm::analyze_pm;
//! use rtsync_core::analysis::AnalysisConfig;
//! use rtsync_core::examples::example2;
//! use rtsync_core::task::{SubtaskId, TaskId};
//! use rtsync_core::time::Dur;
//!
//! let system = example2();
//! let bounds = analyze_pm(&system, &AnalysisConfig::default())?;
//! assert_eq!(bounds.response(SubtaskId::new(TaskId::new(1), 0)), Dur::from_ticks(4));
//! assert_eq!(bounds.task_bound(TaskId::new(2)), Dur::from_ticks(5));
//! # Ok::<(), rtsync_core::error::AnalyzeError>(())
//! ```

use std::fmt;
use std::fmt::Write as _;

use crate::analysis::busy_period::{
    fixed_point, fixed_point_with_hint_counted, utilization_ppm, DemandTerm, FixedPointFailure,
    FixedPointLimits,
};
use crate::analysis::AnalysisConfig;
use crate::error::AnalyzeError;
use crate::task::{SubtaskId, TaskId, TaskSet};
use crate::time::Dur;

/// Per-subtask response-time bounds produced by [`analyze_pm`], plus the
/// end-to-end bounds derived from them.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PmBounds {
    /// `responses[i][j] = R_{i,j}`.
    responses: Vec<Vec<Dur>>,
}

impl PmBounds {
    /// The response-time bound `R_{i,j}` of one subtask.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a subtask of the analyzed set.
    pub fn response(&self, id: SubtaskId) -> Dur {
        self.responses[id.task().index()][id.index()]
    }

    /// The end-to-end bound `R_i = Σ_j R_{i,j}` of one task.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a task of the analyzed set.
    pub fn task_bound(&self, id: TaskId) -> Dur {
        self.responses[id.index()].iter().copied().sum()
    }

    /// `Σ_{k<j} R_{i,k}` — the phase offset the PM protocol gives subtask
    /// `T_{i,j}` relative to its parent task's phase.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a subtask of the analyzed set.
    pub fn cumulative_before(&self, id: SubtaskId) -> Dur {
        self.responses[id.task().index()][..id.index()]
            .iter()
            .copied()
            .sum()
    }

    /// End-to-end bounds for every task, indexed by [`TaskId::index`].
    pub fn task_bounds(&self) -> Vec<Dur> {
        (0..self.responses.len())
            .map(|i| self.task_bound(TaskId::new(i)))
            .collect()
    }

    /// Raw per-subtask bounds, `[task][chain index]`.
    pub fn responses(&self) -> &[Vec<Dur>] {
        &self.responses
    }
}

/// Runs Algorithm SA/PM over the whole system.
///
/// # Errors
///
/// * [`AnalyzeError::Overload`] if some priority level's busy period is
///   unbounded (equal-and-higher demand ≥ processor capacity);
/// * [`AnalyzeError::BoundExceedsCap`] if a response bound exceeds
///   `failure_factor × period`;
/// * [`AnalyzeError::IterationLimit`] / [`AnalyzeError::ArithmeticOverflow`]
///   on pathological inputs.
pub fn analyze_pm(set: &TaskSet, cfg: &AnalysisConfig) -> Result<PmBounds, AnalyzeError> {
    let mut responses: Vec<Vec<Dur>> = Vec::with_capacity(set.num_tasks());
    for task in set.tasks() {
        let mut row = Vec::with_capacity(task.chain_len());
        for sub in task.subtasks() {
            row.push(subtask_response(set, sub.id(), cfg)?);
        }
        responses.push(row);
    }
    Ok(PmBounds { responses })
}

/// Convergence record for one subtask of an [`analyze_pm_traced`] run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SubtaskConvergence {
    /// The analyzed subtask.
    pub subtask: SubtaskId,
    /// `D_{i,j}`: the level busy-period duration (step 1).
    pub busy_period: Dur,
    /// `M_{i,j}`: instances examined inside the busy period (step 2).
    pub instances: i64,
    /// Fixed-point iterations burned across steps 1 and 3–4.
    pub iterations: u64,
    /// The resulting response-time bound `R_{i,j}`.
    pub response: Dur,
}

/// Convergence instrumentation for a whole [`analyze_pm_traced`] run:
/// per-subtask busy-period sizes, instance counts and fixed-point
/// iteration totals.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BusyPeriodReport {
    /// One record per subtask, in task/chain order.
    pub rows: Vec<SubtaskConvergence>,
}

impl BusyPeriodReport {
    /// Fixed-point iterations summed over every subtask.
    pub fn total_iterations(&self) -> u64 {
        self.rows.iter().map(|r| r.iterations).sum()
    }

    /// The costliest single subtask (by iterations), if any.
    pub fn worst_subtask(&self) -> Option<&SubtaskConvergence> {
        self.rows.iter().max_by_key(|r| r.iterations)
    }

    /// Renders the report as a plain-text table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "SA/PM convergence: {} subtasks, {} fixed-point iterations",
            self.rows.len(),
            self.total_iterations()
        );
        let _ = writeln!(
            out,
            "{:<10}{:>12}{:>11}{:>8}{:>10}",
            "subtask", "busy period", "instances", "iters", "response"
        );
        for r in &self.rows {
            let _ = writeln!(
                out,
                "{:<10}{:>12}{:>11}{:>8}{:>10}",
                r.subtask.to_string(),
                r.busy_period.ticks(),
                r.instances,
                r.iterations,
                r.response.ticks()
            );
        }
        out
    }
}

impl fmt::Display for BusyPeriodReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// [`analyze_pm`] plus convergence instrumentation: how large each level
/// busy period was, how many instances it spanned and how many fixed-point
/// iterations the Lehoczky recurrences burned.
///
/// # Errors
///
/// Identical to [`analyze_pm`].
pub fn analyze_pm_traced(
    set: &TaskSet,
    cfg: &AnalysisConfig,
) -> Result<(PmBounds, BusyPeriodReport), AnalyzeError> {
    let mut responses: Vec<Vec<Dur>> = Vec::with_capacity(set.num_tasks());
    let mut rows = Vec::with_capacity(set.num_subtasks());
    for task in set.tasks() {
        let mut row = Vec::with_capacity(task.chain_len());
        for sub in task.subtasks() {
            let conv = subtask_response_traced(set, sub.id(), cfg)?;
            row.push(conv.response);
            rows.push(conv);
        }
        responses.push(row);
    }
    Ok((PmBounds { responses }, BusyPeriodReport { rows }))
}

/// Steps 1–4 of SA/PM for one subtask.
///
/// # Errors
///
/// Same failure modes as [`analyze_pm`].
pub fn subtask_response(
    set: &TaskSet,
    id: SubtaskId,
    cfg: &AnalysisConfig,
) -> Result<Dur, AnalyzeError> {
    subtask_response_traced(set, id, cfg).map(|c| c.response)
}

/// Steps 1–4 of SA/PM for one subtask, with convergence instrumentation.
///
/// # Errors
///
/// Same failure modes as [`analyze_pm`].
pub fn subtask_response_traced(
    set: &TaskSet,
    id: SubtaskId,
    cfg: &AnalysisConfig,
) -> Result<SubtaskConvergence, AnalyzeError> {
    subtask_response_memo(set, id, cfg, None).map(|m| SubtaskConvergence {
        subtask: id,
        busy_period: m.busy_period,
        instances: m.instances,
        iterations: m.iterations,
        response: m.response,
    })
}

/// Memoized convergence state of one SA/PM subtask analysis: every
/// fixed point the analysis solved, recorded so a later re-analysis of a
/// *grown* system can seed its searches from them via
/// [`fixed_point_with_hint_counted`].
///
/// The hint contract (see [`fixed_point_with_hint`]): a memo taken on
/// system `S` is a valid warm start for the same subtask on system `S′`
/// whenever `S′`'s demand dominates `S`'s — i.e. `S′` only *adds*
/// interference (admission) and leaves this subtask's own period,
/// execution and blocking unchanged. Demand growth moves every least
/// fixed point up, so each memoized value is ≤ its new counterpart.
/// After *removing* interference (retirement) the memo may overshoot and
/// must be discarded.
///
/// [`fixed_point_with_hint`]: crate::analysis::busy_period::fixed_point_with_hint
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SubtaskMemo {
    /// `D_{i,j}`: the converged level busy-period duration (step 1).
    pub busy_period: Dur,
    /// `M_{i,j}`: instances examined inside the busy period (step 2).
    pub instances: i64,
    /// Converged completion time of instance `m` at index `m − 1`
    /// (steps 3–4).
    pub completions: Vec<Dur>,
    /// The response-time bound `R_{i,j}`.
    pub response: Dur,
    /// Fixed-point iterations burned producing this memo.
    pub iterations: u64,
}

/// Steps 1–4 of SA/PM for one subtask, warm-started from a previous
/// run's [`SubtaskMemo`] when one is given.
///
/// With `warm = None` this is exactly [`subtask_response_traced`] plus
/// the recorded completions. With a memo, the step-1 busy-period search
/// starts from the memoized duration and each step-3 instance search
/// from the memoized completion — valid only under the monotone-growth
/// contract documented on [`SubtaskMemo`]; the result is bit-identical
/// either way, only the iteration count changes.
///
/// # Errors
///
/// Same failure modes as [`analyze_pm`].
pub fn subtask_response_memo(
    set: &TaskSet,
    id: SubtaskId,
    cfg: &AnalysisConfig,
    warm: Option<&SubtaskMemo>,
) -> Result<SubtaskMemo, AnalyzeError> {
    let me = set.subtask(id);
    let period = set.task(id.task()).period();
    let interference: Vec<DemandTerm> = set
        .interference_set(id)
        .into_iter()
        .map(|sid| {
            DemandTerm::periodic(set.task(sid.task()).period(), set.subtask(sid).execution())
        })
        .collect();

    // Blocking by lower-priority non-preemptive work (zero in the paper's
    // fully preemptive base model).
    let blocking = set.blocking_bound(id);

    // Step 1: D_{i,j} — level busy period duration, interference plus self
    // plus the blocking head start.
    let mut with_self = interference.clone();
    with_self.push(DemandTerm::periodic(period, me.execution()));
    let busy_cap = busy_period_cap(&with_self, cfg);
    let limits = FixedPointLimits::new(busy_cap, cfg.max_fixed_point_iterations);
    let duration_hint = warm.map_or(Dur::ZERO, |w| w.busy_period);
    let (duration, mut iterations) =
        fixed_point_with_hint_counted(duration_hint, blocking, &with_self, limits).map_err(
            |f| match f {
                // An unbounded busy period means the level is overloaded.
                FixedPointFailure::ExceedsCap => AnalyzeError::Overload {
                    subtask: id,
                    utilization_ppm: utilization_ppm(&with_self),
                },
                other => map_failure(other, id, busy_cap),
            },
        )?;

    // Step 2: M_{i,j} = ⌈D_{i,j}/p_i⌉.
    let instances = duration.ceil_div(period).max(1);

    // Steps 3–4: per-instance completion times; responses; maximum.
    let limits = FixedPointLimits::new(duration, cfg.max_fixed_point_iterations);
    let mut worst = Dur::ZERO;
    let mut prev_completion = Dur::ZERO;
    let mut completions = Vec::with_capacity(instances.max(0) as usize);
    for m in 1..=instances {
        let offset = me
            .execution()
            .checked_mul(m)
            .and_then(|x| x.checked_add(blocking))
            .ok_or(AnalyzeError::ArithmeticOverflow { subtask: id })?;
        // The previous instance's completion is always a valid hint
        // (C(m−1) ≤ C(m)); a warm memo's C(m) from the smaller system is
        // another — take whichever is larger.
        let hint = warm
            .and_then(|w| w.completions.get((m - 1) as usize).copied())
            .unwrap_or(Dur::ZERO)
            .max(prev_completion);
        let (completion, iters) =
            fixed_point_with_hint_counted(hint, offset, &interference, limits)
                .map_err(|f| map_failure(f, id, duration))?;
        iterations += iters;
        prev_completion = completion;
        completions.push(completion);
        let response = completion - period * (m - 1);
        worst = worst.max(response);
    }

    let cap = cfg.cap_for_period(period);
    if worst > cap {
        return Err(AnalyzeError::BoundExceedsCap { subtask: id, cap });
    }
    Ok(SubtaskMemo {
        busy_period: duration,
        instances,
        completions,
        response: worst,
        iterations,
    })
}

/// The **naive, unsound** variant that examines only the first instance of
/// each busy period (`m = 1`), i.e. the classic Joseph–Pandya equation
/// without Lehoczky's multi-instance correction.
///
/// For `D ≤ p` workloads it coincides with [`subtask_response`]; when a
/// busy period spans several instances it can **underestimate** — see the
/// `first_instance_only_underestimates` test for a concrete case (118 vs
/// 114). Exposed only for the DESIGN.md ablation and the corresponding
/// Criterion bench; never use it for schedulability verdicts.
///
/// # Errors
///
/// Same failure modes as [`subtask_response`].
pub fn subtask_response_first_instance_only(
    set: &TaskSet,
    id: SubtaskId,
    cfg: &AnalysisConfig,
) -> Result<Dur, AnalyzeError> {
    let me = set.subtask(id);
    let interference: Vec<DemandTerm> = set
        .interference_set(id)
        .into_iter()
        .map(|sid| {
            DemandTerm::periodic(set.task(sid.task()).period(), set.subtask(sid).execution())
        })
        .collect();
    let blocking = set.blocking_bound(id);
    let cap = cfg.cap_for_period(set.task(id.task()).period());
    let limits = FixedPointLimits::new(cap, cfg.max_fixed_point_iterations);
    let offset = me
        .execution()
        .checked_add(blocking)
        .ok_or(AnalyzeError::ArithmeticOverflow { subtask: id })?;
    fixed_point(offset, &interference, limits).map_err(|f| match f {
        FixedPointFailure::ExceedsCap => AnalyzeError::Overload {
            subtask: id,
            utilization_ppm: utilization_ppm(&interference),
        },
        other => map_failure(other, id, cap),
    })
}

/// A generous upper limit for busy-period searches: exceeding it means the
/// level demand cannot drain (utilization ≥ 1 up to rounding).
fn busy_period_cap(terms: &[DemandTerm], cfg: &AnalysisConfig) -> Dur {
    let total_period: Dur = terms.iter().map(|t| t.period).sum();
    total_period.saturating_mul(cfg.failure_factor)
}

pub(crate) fn map_failure(f: FixedPointFailure, id: SubtaskId, cap: Dur) -> AnalyzeError {
    match f {
        FixedPointFailure::ExceedsCap => AnalyzeError::BoundExceedsCap { subtask: id, cap },
        FixedPointFailure::IterationLimit => AnalyzeError::IterationLimit {
            subtask: id,
            limit: u64::MAX,
        },
        FixedPointFailure::Overflow => AnalyzeError::ArithmeticOverflow { subtask: id },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::examples::example2;
    use crate::task::{Priority, TaskSet};
    use crate::time::{Dur, Time};

    fn d(t: i64) -> Dur {
        Dur::from_ticks(t)
    }

    fn sid(t: usize, j: usize) -> SubtaskId {
        SubtaskId::new(TaskId::new(t), j)
    }

    fn cfg() -> AnalysisConfig {
        AnalysisConfig::default()
    }

    #[test]
    fn example2_bounds_match_paper() {
        let set = example2();
        let b = analyze_pm(&set, &cfg()).unwrap();
        // T1 runs alone at top priority on P0.
        assert_eq!(b.response(sid(0, 0)), d(2));
        // R_{2,1} = 4 (paper §3.1: "The bound on the response time of T2,1
        // is 4 time units, and therefore the phase of T2,2 is 4").
        assert_eq!(b.response(sid(1, 0)), d(4));
        // T2,2 is top priority on P1.
        assert_eq!(b.response(sid(1, 1)), d(3));
        // T3 suffers one T2,2 instance per period: R = 5 (paper §2).
        assert_eq!(b.response(sid(2, 0)), d(5));
        // End-to-end bounds.
        assert_eq!(b.task_bound(TaskId::new(0)), d(2));
        assert_eq!(b.task_bound(TaskId::new(1)), d(7));
        assert_eq!(b.task_bound(TaskId::new(2)), d(5));
        // Phase offsets for the PM protocol.
        assert_eq!(b.cumulative_before(sid(1, 1)), d(4));
        assert_eq!(b.cumulative_before(sid(1, 0)), Dur::ZERO);
        assert_eq!(b.task_bounds(), vec![d(2), d(7), d(5)]);
    }

    #[test]
    fn multiple_instances_in_busy_period_are_considered() {
        // Lehoczky's point: with D > p, the first instance is not always
        // the worst. T0 (p=70,c=26), T1 (p=100,c=62) on one processor.
        // Level-1 busy period: t = ⌈t/70⌉26 + ⌈t/100⌉62 → t0=88, W(88)=2*26+62=114,
        // W(114)=2*26+2*62=176, W(176)=3*26+2*62=202, W(202)=3*26+3*62=264,
        // W(264)=4*26+3*62=290, W(290)=5*26+3*62=316, W(316)=5*26+4*62=378,
        // W(378)=6*26+4*62=404, W(404)=6*26+5*62=466, W(466)=7*26+5*62=492,
        // W(492)=8*26+5*62=518, W(518)=8*26+6*62=580, W(580)=9*26+6*62=606,
        // W(606)=9*26+7*62=668, W(668)=10*26+7*62=694, W(694)=10*26+7*62=694 ✓
        // M = ⌈694/100⌉ = 7 instances of T1 inside the busy period.
        let set = TaskSet::builder(1)
            .task(d(70))
            .subtask(0, d(26), Priority::new(0))
            .finish_task()
            .task(d(100))
            .subtask(0, d(62), Priority::new(1))
            .finish_task()
            .build()
            .unwrap();
        let b = analyze_pm(&set, &cfg()).unwrap();
        // C(1) = 62+2*26 = 114 → R(1) = 114.
        // C(2): t = 124 + ⌈t/70⌉26 → 124+52=176, 124+78=202, 202+?⌈202/70⌉=3 → 202 ✓
        //   R(2) = 202-100 = 102.
        // C(3): t = 186+⌈t/70⌉26 → 238?.. iterate: 186+78=264, 186+104=290,
        //   290: ⌈290/70⌉=5 → 316, ⌈316/70⌉=5 → 316 ✓ R(3)=316-200=116.
        // C(4): 248+⌈t/70⌉26: 248+130=378, ⌈378/70⌉=6→404, ⌈404/70⌉=6→404 ✓
        //   R(4)=404-300=104.
        // C(5): 310+⌈t/70⌉: 310+156=466, ⌈466/70⌉=7→492, ⌈492/70⌉=8→518,
        //   ⌈518/70⌉=8→518 ✓ R(5)=518-400=118.
        // C(6): 372+: 372+208=580, ⌈580/70⌉=9→606, ⌈606/70⌉=9→606 ✓
        //   R(6)=606-500=106.
        // C(7): 434+: 434+234=668, ⌈668/70⌉=10→694, ✓ R(7)=694-600=94.
        // Worst = R(5) = 118 — strictly larger than R(1)=114: naive
        // first-instance analysis would be unsound here.
        assert_eq!(b.response(sid(1, 0)), d(118));
    }

    #[test]
    fn first_instance_only_underestimates() {
        // The DESIGN.md ablation: on the (70,26)/(100,62) system the worst
        // instance inside the level-1 busy period is the 5th (R = 118),
        // while the naive first-instance equation stops at 114 — an
        // *unsound* bound that Lehoczky's correction fixes.
        let set = TaskSet::builder(1)
            .task(d(70))
            .subtask(0, d(26), Priority::new(0))
            .finish_task()
            .task(d(100))
            .subtask(0, d(62), Priority::new(1))
            .finish_task()
            .build()
            .unwrap();
        let naive = subtask_response_first_instance_only(&set, sid(1, 0), &cfg()).unwrap();
        let correct = analyze_pm(&set, &cfg()).unwrap().response(sid(1, 0));
        assert_eq!(naive, d(114));
        assert_eq!(correct, d(118));
        assert!(naive < correct, "the naive equation is optimistic here");
        // Where D ≤ p, the two agree (Example 2).
        let set = example2();
        let b = analyze_pm(&set, &cfg()).unwrap();
        for task in set.tasks() {
            for sub in task.subtasks() {
                assert_eq!(
                    subtask_response_first_instance_only(&set, sub.id(), &cfg()).unwrap(),
                    b.response(sub.id())
                );
            }
        }
    }

    #[test]
    fn overload_is_reported() {
        let set = TaskSet::builder(1)
            .task(d(4))
            .subtask(0, d(3), Priority::new(0))
            .finish_task()
            .task(d(8))
            .subtask(0, d(4), Priority::new(1))
            .finish_task()
            .build()
            .unwrap();
        // Utilization 0.75 + 0.5 = 1.25: level-1 busy period unbounded.
        let err = analyze_pm(&set, &cfg()).unwrap_err();
        match err {
            AnalyzeError::Overload {
                subtask,
                utilization_ppm,
            } => {
                assert_eq!(subtask, sid(1, 0));
                assert!((1_249_000..=1_251_000).contains(&utilization_ppm));
            }
            other => panic!("expected overload, got {other:?}"),
        }
    }

    #[test]
    fn highest_priority_overloaded_alone() {
        // A single subtask with c > p overloads its own level.
        let set = TaskSet::builder(1)
            .task(d(4))
            .subtask(0, d(5), Priority::new(0))
            .finish_task()
            .build()
            .unwrap();
        let err = analyze_pm(&set, &cfg()).unwrap_err();
        assert!(matches!(err, AnalyzeError::Overload { .. }));
    }

    #[test]
    fn full_utilization_exactly_one_converges() {
        // c = p for a single top-priority subtask: busy period = p exactly,
        // every instance completes exactly at its deadline.
        let set = TaskSet::builder(1)
            .task(d(4))
            .subtask(0, d(4), Priority::new(0))
            .finish_task()
            .build()
            .unwrap();
        let b = analyze_pm(&set, &cfg()).unwrap();
        assert_eq!(b.response(sid(0, 0)), d(4));
    }

    #[test]
    fn independent_processors_do_not_interfere() {
        let set = TaskSet::builder(2)
            .task(d(10))
            .subtask(0, d(9), Priority::new(0))
            .finish_task()
            .task(d(10))
            .subtask(1, d(2), Priority::new(0))
            .finish_task()
            .build()
            .unwrap();
        let b = analyze_pm(&set, &cfg()).unwrap();
        assert_eq!(b.response(sid(1, 0)), d(2));
    }

    #[test]
    fn chain_bound_is_sum_of_subtask_bounds() {
        let set = TaskSet::builder(3)
            .task(d(100))
            .subtask(0, d(10), Priority::new(0))
            .subtask(1, d(20), Priority::new(0))
            .subtask(2, d(30), Priority::new(0))
            .finish_task()
            .build()
            .unwrap();
        let b = analyze_pm(&set, &cfg()).unwrap();
        assert_eq!(b.task_bound(TaskId::new(0)), d(60));
        assert_eq!(b.cumulative_before(sid(0, 2)), d(30));
    }

    #[test]
    fn phase_does_not_affect_bounds() {
        // SA/PM is a worst-case (critical instant) analysis: phases are
        // irrelevant to the bounds.
        let mk = |phase| {
            TaskSet::builder(1)
                .task(d(4))
                .subtask(0, d(2), Priority::new(0))
                .finish_task()
                .task(d(6))
                .phase(Time::from_ticks(phase))
                .subtask(0, d(2), Priority::new(1))
                .finish_task()
                .build()
                .unwrap()
        };
        let b0 = analyze_pm(&mk(0), &cfg()).unwrap();
        let b5 = analyze_pm(&mk(5), &cfg()).unwrap();
        assert_eq!(b0, b5);
    }

    #[test]
    fn warm_memo_is_bit_identical_to_cold_on_a_grown_system() {
        // Analyze T1 (p=100,c=62) under interference from T0 (p=70,c=26),
        // memoize, then grow the system with a third, higher-priority
        // interferer and re-analyze warm-started from the stale memo. The
        // hint contract guarantees the warm result equals the cold one
        // bit for bit, in no more fixed-point iterations.
        let small = TaskSet::builder(1)
            .task(d(70))
            .subtask(0, d(26), Priority::new(0))
            .finish_task()
            .task(d(100))
            .subtask(0, d(62), Priority::new(2))
            .finish_task()
            .build()
            .unwrap();
        let stale = subtask_response_memo(&small, sid(1, 0), &cfg(), None).unwrap();
        let grown = TaskSet::builder(1)
            .task(d(70))
            .subtask(0, d(26), Priority::new(0))
            .finish_task()
            .task(d(100))
            .subtask(0, d(62), Priority::new(2))
            .finish_task()
            .task(d(1000))
            .subtask(0, d(5), Priority::new(1))
            .finish_task()
            .build()
            .unwrap();
        let cold = subtask_response_memo(&grown, sid(1, 0), &cfg(), None).unwrap();
        let warm = subtask_response_memo(&grown, sid(1, 0), &cfg(), Some(&stale)).unwrap();
        assert_eq!(warm.response, cold.response);
        assert_eq!(warm.busy_period, cold.busy_period);
        assert_eq!(warm.instances, cold.instances);
        assert_eq!(warm.completions, cold.completions);
        assert!(
            warm.iterations <= cold.iterations,
            "warm {} vs cold {}",
            warm.iterations,
            cold.iterations
        );
        // A same-system warm start converges almost immediately: every
        // search starts at its own fixed point.
        let rewarm = subtask_response_memo(&grown, sid(1, 0), &cfg(), Some(&cold)).unwrap();
        assert_eq!(rewarm.completions, cold.completions);
        assert!(rewarm.iterations <= warm.iterations);
    }

    #[test]
    fn memo_matches_traced_convergence() {
        let set = example2();
        for task in set.tasks() {
            for sub in task.subtasks() {
                let traced = subtask_response_traced(&set, sub.id(), &cfg()).unwrap();
                let memo = subtask_response_memo(&set, sub.id(), &cfg(), None).unwrap();
                assert_eq!(memo.response, traced.response);
                assert_eq!(memo.busy_period, traced.busy_period);
                assert_eq!(memo.instances, traced.instances);
                assert_eq!(memo.iterations, traced.iterations);
                assert_eq!(memo.completions.len(), memo.instances as usize);
            }
        }
    }

    #[test]
    fn monotone_in_execution_time() {
        // Increasing an execution time never decreases any bound.
        let mk = |c: i64| {
            TaskSet::builder(1)
                .task(d(10))
                .subtask(0, d(c), Priority::new(0))
                .finish_task()
                .task(d(20))
                .subtask(0, d(4), Priority::new(1))
                .finish_task()
                .build()
                .unwrap()
        };
        let small = analyze_pm(&mk(2), &cfg()).unwrap();
        let large = analyze_pm(&mk(3), &cfg()).unwrap();
        assert!(large.response(sid(1, 0)) >= small.response(sid(1, 0)));
        assert!(large.response(sid(0, 0)) >= small.response(sid(0, 0)));
    }
}
