//! **Algorithm SA/DS** (Figure 11 of the paper): schedulability analysis
//! for the Direct Synchronization protocol.
//!
//! Seeds the IEER bounds optimistically at `R_{i,j} = Σ_{k≤j} c_{i,k}` and
//! repeats [`IEERT`](crate::analysis::ieert) sweeps until the bounds stop
//! changing. Because the sweep operator is monotone and the seed lies below
//! every fixed point, the iteration converges to the **least** fixed point
//! when one exists; when the bounds instead grow past
//! `failure_factor × period` (300× by default) the analysis declares a
//! *failure* — the paper's "bound is infinite for all practical purposes".
//!
//! # Examples
//!
//! Example 2: the DS bound of `T₂` (the paper's `T₃`) exceeds its deadline
//! of 6, so its schedulability cannot be asserted — and indeed Figure 3
//! shows it missing a deadline.
//!
//! ```
//! use rtsync_core::analysis::sa_ds::analyze_ds;
//! use rtsync_core::analysis::AnalysisConfig;
//! use rtsync_core::examples::example2;
//! use rtsync_core::task::TaskId;
//! use rtsync_core::time::Dur;
//!
//! let system = example2();
//! let bounds = analyze_ds(&system, &AnalysisConfig::default())?;
//! assert!(bounds.task_bound(TaskId::new(2)) > Dur::from_ticks(6));
//! # Ok::<(), rtsync_core::error::AnalyzeError>(())
//! ```
//!
//! > **Fidelity note.** The paper's prose reports the Example-2 bound of
//! > `T₃` as 7; the formulas of Figure 10, as written, give 8 — and the
//! > paper's own Figure 3 schedule exhibits an *actual* response of 8
//! > (release at 4, completion at 12), so any sound bound must be ≥ 8.
//! > We reproduce the algorithm, which here is also tight.

use std::fmt;
use std::fmt::Write as _;

use crate::analysis::ieert::{ieert_pass, ieert_pass_gauss_seidel, IeerBounds};
use crate::analysis::AnalysisConfig;
use crate::error::AnalyzeError;
use crate::task::{SubtaskId, TaskId, TaskSet};
use crate::time::Dur;

/// Which sweep discipline the outer loop uses.
#[derive(Clone, Copy, PartialEq, Eq, Default, Debug)]
pub enum SweepOrder {
    /// Every sweep reads only the previous sweep's bounds — the literal
    /// reading of Figure 11 (`R = IEERT(T, R′)`).
    #[default]
    Jacobi,
    /// Bounds updated earlier in a sweep are visible later in the same
    /// sweep. Same least fixed point, fewer sweeps (ablation; see the
    /// `gauss_seidel_agrees_with_jacobi` test and the Criterion bench).
    GaussSeidel,
}

/// The result of Algorithm SA/DS: converged IEER bounds plus iteration
/// accounting.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DsBounds {
    bounds: IeerBounds,
    sweeps: u64,
}

impl DsBounds {
    /// The IEER bound of one subtask: release of `T_{i,1}(m)` to completion
    /// of `T_{i,j}(m)`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn ieer(&self, id: SubtaskId) -> Dur {
        self.bounds.get(id)
    }

    /// The end-to-end response-time bound of a task (the IEER bound of its
    /// last subtask).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn task_bound(&self, id: TaskId) -> Dur {
        self.bounds.task_bound(id)
    }

    /// End-to-end bounds for every task, indexed by [`TaskId::index`].
    pub fn task_bounds(&self) -> Vec<Dur> {
        (0..self.bounds.as_slices().len())
            .map(|i| self.task_bound(TaskId::new(i)))
            .collect()
    }

    /// The converged bound set.
    pub fn bounds(&self) -> &IeerBounds {
        &self.bounds
    }

    /// Number of IEERT sweeps performed (including the one that verified
    /// the fixed point).
    pub fn sweeps(&self) -> u64 {
        self.sweeps
    }
}

/// Runs Algorithm SA/DS with the literal Jacobi sweeps of Figure 11.
///
/// # Errors
///
/// Errors for which [`AnalyzeError::is_failure`] holds are the paper's
/// *failure* outcome — no finite bound below the cap. Other errors indicate
/// pathological inputs (overflow).
pub fn analyze_ds(set: &TaskSet, cfg: &AnalysisConfig) -> Result<DsBounds, AnalyzeError> {
    analyze_ds_with(set, cfg, SweepOrder::Jacobi)
}

/// Runs Algorithm SA/DS with a chosen sweep discipline.
///
/// # Errors
///
/// See [`analyze_ds`].
pub fn analyze_ds_with(
    set: &TaskSet,
    cfg: &AnalysisConfig,
    order: SweepOrder,
) -> Result<DsBounds, AnalyzeError> {
    analyze_ds_seeded(set, cfg, order, IeerBounds::seed(set))
}

/// Runs Algorithm SA/DS from a caller-supplied seed instead of the
/// optimistic one — the warm-start path of the incremental admission
/// engine (build the seed with [`IeerBounds::seed_with`]).
///
/// The caller must guarantee the seed lies at or below the least fixed
/// point of the IEERT sweep on `set` (entry-wise); any seed between the
/// optimistic one and the least fixed point converges to the *same*
/// least fixed point, in no more sweeps. Seeds above it would be
/// confirmed as-is and silently overestimate.
///
/// # Errors
///
/// See [`analyze_ds`].
pub fn analyze_ds_seeded(
    set: &TaskSet,
    cfg: &AnalysisConfig,
    order: SweepOrder,
    seed: IeerBounds,
) -> Result<DsBounds, AnalyzeError> {
    let mut bounds = seed;
    for sweep in 1..=cfg.max_outer_iterations {
        let next = match order {
            SweepOrder::Jacobi => ieert_pass(set, &bounds, cfg)?,
            SweepOrder::GaussSeidel => ieert_pass_gauss_seidel(set, &bounds, cfg)?,
        };
        if next == bounds {
            return Ok(DsBounds {
                bounds,
                sweeps: sweep,
            });
        }
        bounds = next;
    }
    // Still growing after the sweep budget: treat as the failure outcome,
    // attributed to the subtask with the largest bound-to-period ratio.
    let worst = worst_ratio_subtask(set, &bounds);
    Err(AnalyzeError::IterationLimit {
        subtask: worst,
        limit: cfg.max_outer_iterations,
    })
}

/// Convergence instrumentation for an [`analyze_ds_traced`] run: the
/// trajectory of the end-to-end bounds across IEERT sweeps and the
/// per-sweep convergence deltas.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct IeertReport {
    /// IEERT sweeps performed (including the one that verified the fixed
    /// point when `converged`).
    pub sweeps: u64,
    /// `true` if the bounds reached a fixed point; `false` is the paper's
    /// *failure* outcome (diverging bounds or sweep budget exhausted).
    pub converged: bool,
    /// `trajectory[s][i]`: the end-to-end bound of task `i` after sweep
    /// `s`, with `trajectory[0]` the optimistic seed `Σ_k c_{i,k}`.
    pub trajectory: Vec<Vec<Dur>>,
    /// `deltas[s]`: the largest single-subtask bound growth during sweep
    /// `s + 1` (zero only on the verifying sweep).
    pub deltas: Vec<Dur>,
}

impl IeertReport {
    /// The bound trajectory of one task across sweeps.
    pub fn task_trajectory(&self, id: TaskId) -> Vec<Dur> {
        self.trajectory.iter().map(|row| row[id.index()]).collect()
    }

    /// Renders the report as a plain-text table (one row per sweep).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "SA/DS convergence: {} sweeps, {}",
            self.sweeps,
            if self.converged {
                "converged"
            } else {
                "FAILED (no finite fixed point)"
            }
        );
        let tasks = self.trajectory.first().map_or(0, Vec::len);
        let _ = write!(out, "{:<7}", "sweep");
        for i in 0..tasks {
            let _ = write!(out, "{:>9}", format!("T{i}"));
        }
        let _ = writeln!(out, "{:>10}", "max delta");
        for (s, row) in self.trajectory.iter().enumerate() {
            let _ = write!(
                out,
                "{:<7}",
                if s == 0 { "seed".into() } else { s.to_string() }
            );
            for b in row {
                let _ = write!(out, "{:>9}", b.ticks());
            }
            match s.checked_sub(1).and_then(|i| self.deltas.get(i)) {
                Some(delta) => {
                    let _ = writeln!(out, "{:>10}", delta.ticks());
                }
                None => {
                    let _ = writeln!(out, "{:>10}", "-");
                }
            }
        }
        out
    }
}

impl fmt::Display for IeertReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// [`analyze_ds_with`] plus convergence instrumentation.
///
/// Unlike [`analyze_ds`], the paper's *failure* outcome (bounds growing
/// past the cap, or the sweep budget running out) is not an error here:
/// it returns `(None, report)` with `report.converged == false` and the
/// trajectory recorded up to the point the divergence was detected.
///
/// # Errors
///
/// Only pathological inputs (arithmetic overflow) error.
pub fn analyze_ds_traced(
    set: &TaskSet,
    cfg: &AnalysisConfig,
    order: SweepOrder,
) -> Result<(Option<DsBounds>, IeertReport), AnalyzeError> {
    let task_bounds = |b: &IeerBounds| -> Vec<Dur> {
        (0..set.num_tasks())
            .map(|i| b.task_bound(TaskId::new(i)))
            .collect()
    };
    let mut bounds = IeerBounds::seed(set);
    let mut report = IeertReport {
        sweeps: 0,
        converged: false,
        trajectory: vec![task_bounds(&bounds)],
        deltas: Vec::new(),
    };
    for sweep in 1..=cfg.max_outer_iterations {
        let next = match order {
            SweepOrder::Jacobi => ieert_pass(set, &bounds, cfg),
            SweepOrder::GaussSeidel => ieert_pass_gauss_seidel(set, &bounds, cfg),
        };
        let next = match next {
            Ok(next) => next,
            // The failure criterion fired mid-sweep: the bounds grew past
            // `failure_factor × period` — record what we saw and stop.
            Err(e) if e.is_failure() => {
                report.sweeps = sweep;
                return Ok((None, report));
            }
            Err(e) => return Err(e),
        };
        report.sweeps = sweep;
        let delta = set
            .subtasks()
            .map(|s| next.get(s.id()) - bounds.get(s.id()))
            .max()
            .unwrap_or(Dur::ZERO);
        report.deltas.push(delta);
        report.trajectory.push(task_bounds(&next));
        if next == bounds {
            report.converged = true;
            return Ok((
                Some(DsBounds {
                    bounds,
                    sweeps: sweep,
                }),
                report,
            ));
        }
        bounds = next;
    }
    Ok((None, report))
}

fn worst_ratio_subtask(set: &TaskSet, bounds: &IeerBounds) -> SubtaskId {
    let mut best = SubtaskId::new(TaskId::new(0), 0);
    let mut best_key = (i64::MIN, i64::MAX); // maximize bound/period exactly
    for task in set.tasks() {
        for sub in task.subtasks() {
            let b = bounds.get(sub.id()).ticks();
            let p = task.period().ticks();
            // Compare b/p > best via cross multiplication on i128.
            let lhs = b as i128 * best_key.1 as i128;
            let rhs = best_key.0 as i128 * p as i128;
            if lhs > rhs {
                best_key = (b, p);
                best = sub.id();
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::sa_pm::analyze_pm;
    use crate::examples::example2;
    use crate::task::{Priority, TaskSet};
    use crate::time::Dur;

    fn d(t: i64) -> Dur {
        Dur::from_ticks(t)
    }

    fn sid(t: usize, j: usize) -> SubtaskId {
        SubtaskId::new(TaskId::new(t), j)
    }

    fn cfg() -> AnalysisConfig {
        AnalysisConfig::default()
    }

    #[test]
    fn example2_converges_to_documented_fixpoint() {
        let set = example2();
        let b = analyze_ds(&set, &cfg()).unwrap();
        assert_eq!(b.ieer(sid(0, 0)), d(2));
        assert_eq!(b.ieer(sid(1, 0)), d(4));
        assert_eq!(b.ieer(sid(1, 1)), d(7));
        // ≥ 8 is required for soundness (Figure 3 exhibits response 8);
        // the Figure-10 formulas give exactly 8.
        assert_eq!(b.ieer(sid(2, 0)), d(8));
        assert_eq!(b.task_bounds(), vec![d(2), d(7), d(8)]);
        assert!(b.sweeps() >= 3);
        // T3's bound exceeds its deadline of 6: not schedulable under DS,
        // matching the paper's §4.3 conclusion.
        assert!(b.task_bound(TaskId::new(2)) > set.task(TaskId::new(2)).deadline());
    }

    #[test]
    fn ds_bounds_dominate_pm_bounds() {
        // §4.3: "Algorithm SA/DS always yields larger upper bounds on the
        // task EER times than Algorithm SA/PM."
        let set = example2();
        let ds = analyze_ds(&set, &cfg()).unwrap();
        let pm = analyze_pm(&set, &cfg()).unwrap();
        for task in set.tasks() {
            assert!(
                ds.task_bound(task.id()) >= pm.task_bound(task.id()),
                "task {}",
                task.id()
            );
        }
    }

    #[test]
    fn single_subtask_tasks_match_pm_exactly() {
        // Without chains there is no clumping: SA/DS degenerates to SA/PM.
        let set = TaskSet::builder(1)
            .task(d(10))
            .subtask(0, d(3), Priority::new(0))
            .finish_task()
            .task(d(14))
            .subtask(0, d(4), Priority::new(1))
            .finish_task()
            .task(d(20))
            .subtask(0, d(5), Priority::new(2))
            .finish_task()
            .build()
            .unwrap();
        let ds = analyze_ds(&set, &cfg()).unwrap();
        let pm = analyze_pm(&set, &cfg()).unwrap();
        for task in set.tasks() {
            assert_eq!(ds.task_bound(task.id()), pm.task_bound(task.id()));
        }
    }

    #[test]
    fn gauss_seidel_agrees_with_jacobi() {
        let set = example2();
        let j = analyze_ds_with(&set, &cfg(), SweepOrder::Jacobi).unwrap();
        let gs = analyze_ds_with(&set, &cfg(), SweepOrder::GaussSeidel).unwrap();
        assert_eq!(j.bounds(), gs.bounds());
        assert!(gs.sweeps() <= j.sweeps());
    }

    #[test]
    fn seeded_run_matches_cold_run() {
        // Seeding from the converged bounds of a *smaller* system (valid:
        // growth only raises the least fixed point) reaches the same
        // fixed point as the cold optimistic seed, in fewer sweeps.
        let set = example2();
        let cold = analyze_ds(&set, &cfg()).unwrap();
        // Warm seed = the converged bounds themselves: one verifying sweep.
        let warm = analyze_ds_seeded(
            &set,
            &cfg(),
            SweepOrder::Jacobi,
            IeerBounds::seed_with(&set, |id| Some(cold.ieer(id))),
        )
        .unwrap();
        assert_eq!(warm.bounds(), cold.bounds());
        assert_eq!(warm.sweeps(), 1);
        // A partial prior (only T1's chain) also converges identically.
        let partial = analyze_ds_seeded(
            &set,
            &cfg(),
            SweepOrder::Jacobi,
            IeerBounds::seed_with(&set, |id| {
                (id.task() == TaskId::new(1)).then(|| cold.ieer(id))
            }),
        )
        .unwrap();
        assert_eq!(partial.bounds(), cold.bounds());
        assert!(partial.sweeps() <= cold.sweeps());
    }

    #[test]
    fn failure_on_saturated_chain_feedback() {
        // Two chains ping-ponging across two processors at 100% load: the
        // clumping feedback diverges and the failure criterion fires.
        let set = TaskSet::builder(2)
            .task(d(10))
            .subtask(0, d(5), Priority::new(0))
            .subtask(1, d(5), Priority::new(1))
            .finish_task()
            .task(d(10))
            .subtask(1, d(5), Priority::new(0))
            .subtask(0, d(5), Priority::new(1))
            .finish_task()
            .build()
            .unwrap();
        let err = analyze_ds(&set, &cfg()).unwrap_err();
        assert!(err.is_failure(), "{err:?}");
    }

    #[test]
    fn sweep_count_is_reported() {
        let set = example2();
        let b = analyze_ds(&set, &cfg()).unwrap();
        // Seed → pass1 → pass2 → pass3 (fixpoint check): at least 3 sweeps.
        assert!(b.sweeps() >= 3 && b.sweeps() < 10, "{}", b.sweeps());
    }

    #[test]
    fn default_sweep_order_is_jacobi() {
        assert_eq!(SweepOrder::default(), SweepOrder::Jacobi);
    }

    #[test]
    fn traced_run_matches_untraced_and_records_trajectory() {
        let set = example2();
        let plain = analyze_ds(&set, &cfg()).unwrap();
        let (bounds, report) = analyze_ds_traced(&set, &cfg(), SweepOrder::Jacobi).unwrap();
        let bounds = bounds.expect("example 2 converges");
        assert_eq!(bounds.bounds(), plain.bounds());
        assert_eq!(bounds.sweeps(), plain.sweeps());
        assert!(report.converged);
        assert_eq!(report.sweeps, plain.sweeps());
        // Seed row + one row per sweep.
        assert_eq!(report.trajectory.len() as u64, report.sweeps + 1);
        assert_eq!(report.deltas.len() as u64, report.sweeps);
        // The final trajectory row is the fixed point.
        assert_eq!(*report.trajectory.last().unwrap(), plain.task_bounds());
        // Bounds grow monotonically sweep over sweep.
        for pair in report.trajectory.windows(2) {
            for (a, b) in pair[0].iter().zip(&pair[1]) {
                assert!(a <= b);
            }
        }
        // The verifying sweep has delta zero; earlier sweeps grew.
        assert_eq!(*report.deltas.last().unwrap(), Dur::ZERO);
        assert!(report.deltas[0] > Dur::ZERO);
        let rendered = report.render();
        assert!(rendered.contains("converged"), "{rendered}");
        assert!(rendered.contains("seed"), "{rendered}");
    }

    #[test]
    fn traced_run_reports_failure_without_error() {
        let set = TaskSet::builder(2)
            .task(d(10))
            .subtask(0, d(5), Priority::new(0))
            .subtask(1, d(5), Priority::new(1))
            .finish_task()
            .task(d(10))
            .subtask(1, d(5), Priority::new(0))
            .subtask(0, d(5), Priority::new(1))
            .finish_task()
            .build()
            .unwrap();
        let (bounds, report) = analyze_ds_traced(&set, &cfg(), SweepOrder::Jacobi).unwrap();
        assert!(bounds.is_none());
        assert!(!report.converged);
        assert!(report.sweeps >= 1);
        assert!(report.render().contains("FAILED"));
    }

    #[test]
    fn task_trajectory_projects_one_task() {
        let set = example2();
        let (_, report) = analyze_ds_traced(&set, &cfg(), SweepOrder::Jacobi).unwrap();
        let t3 = report.task_trajectory(TaskId::new(2));
        assert_eq!(t3.len(), report.trajectory.len());
        assert_eq!(*t3.last().unwrap(), d(8));
    }
}
