//! Property-based tests of the core primitives: tick arithmetic, the
//! busy-period solver, priority keys, the release-guard machine, the text
//! format, and basic analysis laws.

use proptest::prelude::*;
use rtsync_core::analysis::admission::{
    AdmissionConfig, AdmissionMode, AdmissionState, ChainRequest,
};
use rtsync_core::analysis::busy_period::{
    fixed_point, fixed_point_with_hint, DemandTerm, FixedPointLimits,
};
use rtsync_core::analysis::sa_pm::analyze_pm;
use rtsync_core::analysis::AnalysisConfig;
use rtsync_core::priority::{
    build_with_policy, ChainSpec, PriorityKey, ProportionalDeadlineMonotonic,
};
use rtsync_core::release_guard::{GuardDecision, ReleaseGuard};
use rtsync_core::task::TaskSet;
use rtsync_core::textfmt;
use rtsync_core::time::{Dur, Time};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// `ceil_div` agrees with the mathematical ceiling of the rational.
    #[test]
    fn ceil_div_is_mathematical_ceiling(num in -10_000i64..10_000, den in 1i64..500) {
        let got = Dur::from_ticks(num).ceil_div(Dur::from_ticks(den));
        let expect = (num as f64 / den as f64).ceil() as i64;
        prop_assert_eq!(got, expect);
        // And floor_div likewise.
        let got = Dur::from_ticks(num).floor_div(Dur::from_ticks(den));
        let expect = (num as f64 / den as f64).floor() as i64;
        prop_assert_eq!(got, expect);
    }

    /// Time/Dur arithmetic laws.
    #[test]
    fn time_arithmetic_laws(a in -1_000_000i64..1_000_000, b in -1_000_000i64..1_000_000) {
        let t = Time::from_ticks(a);
        let d = Dur::from_ticks(b);
        prop_assert_eq!((t + d) - t, d);
        prop_assert_eq!((t + d) - d, t);
        prop_assert_eq!(t - t, Dur::ZERO);
        prop_assert_eq!(d + (-d), Dur::ZERO);
    }

    /// The busy-period solver returns the *least* fixed point of the
    /// demand equation.
    #[test]
    fn fixed_point_is_least(
        offset in 1i64..20,
        terms in prop::collection::vec((2i64..30, 1i64..6, 0i64..40), 0..4),
    ) {
        let terms: Vec<DemandTerm> = terms
            .into_iter()
            .map(|(p, c, j)| DemandTerm::jittered(
                Dur::from_ticks(p),
                Dur::from_ticks(c.min(p)), // keep utilization ≤ 1 per term
                Dur::from_ticks(j),
            ))
            .collect();
        let limits = FixedPointLimits::new(Dur::from_ticks(1_000_000), 1_000_000);
        let Ok(t) = fixed_point(Dur::from_ticks(offset), &terms, limits) else {
            return Ok(()); // genuinely unbounded (utilization ≥ 1)
        };
        let demand = |x: Dur| -> Dur {
            Dur::from_ticks(offset)
                + terms.iter().map(|term| term.demand(x).unwrap()).sum::<Dur>()
        };
        // Fixed point…
        prop_assert_eq!(demand(t), t);
        // …and least: every smaller positive instant violates the equation
        // from below (demand exceeds the candidate).
        for x in 1..t.ticks() {
            let x = Dur::from_ticks(x);
            prop_assert!(demand(x) > x, "{x:?} would be an earlier fixed point");
        }
    }

    /// Seeding the solver with any valid hint (≤ least fixed point) does
    /// not change the answer.
    #[test]
    fn hinted_fixed_point_agrees(
        offset in 1i64..20,
        terms in prop::collection::vec((2i64..30, 1i64..6, 0i64..40), 0..4),
        hint_frac in 0.0f64..1.0,
    ) {
        let terms: Vec<DemandTerm> = terms
            .into_iter()
            .map(|(p, c, j)| DemandTerm::jittered(
                Dur::from_ticks(p),
                Dur::from_ticks(c.min(p)),
                Dur::from_ticks(j),
            ))
            .collect();
        let limits = FixedPointLimits::new(Dur::from_ticks(1_000_000), 1_000_000);
        let Ok(t) = fixed_point(Dur::from_ticks(offset), &terms, limits) else {
            return Ok(());
        };
        let hint = Dur::from_ticks((t.ticks() as f64 * hint_frac) as i64);
        let hinted = fixed_point_with_hint(hint, Dur::from_ticks(offset), &terms, limits).unwrap();
        prop_assert_eq!(hinted, t);
        // Near-lfp hints drive the "demand does not grow past the
        // iterate" early return: a hint of exactly the least fixed point
        // (and one tick under it) must still land on the same answer.
        let at_lfp = fixed_point_with_hint(t, Dur::from_ticks(offset), &terms, limits).unwrap();
        prop_assert_eq!(at_lfp, t);
        let near = Dur::from_ticks((t.ticks() - 1).max(0));
        let near_lfp = fixed_point_with_hint(near, Dur::from_ticks(offset), &terms, limits).unwrap();
        prop_assert_eq!(near_lfp, t);
    }

    /// PriorityKey's exact rational order agrees with cross-multiplication
    /// (and is antisymmetric / transitive by construction of `Ord`).
    #[test]
    fn priority_key_orders_like_rationals(
        a in -10_000i128..10_000, b in 1i128..10_000,
        c in -10_000i128..10_000, d in 1i128..10_000,
    ) {
        let left = PriorityKey::ratio(a, b);
        let right = PriorityKey::ratio(c, d);
        let expect = (a * d).cmp(&(c * b));
        prop_assert_eq!(left.cmp(&right), expect);
    }

    /// Release-guard conservation: every offered signal is eventually
    /// released exactly once (by ReleaseNow, expiry or idle point), and
    /// never while an earlier signal still waits.
    #[test]
    fn guard_conserves_signals(
        period in 2i64..12,
        script in prop::collection::vec((1i64..6, 0u8..3), 1..40),
    ) {
        let mut g = ReleaseGuard::new(Dur::from_ticks(period));
        let mut now = Time::ZERO;
        let mut offered = 0usize;
        let mut released = 0usize;
        for (advance, action) in script {
            now += Dur::from_ticks(advance);
            match action {
                // A predecessor completion arrives.
                0 => {
                    offered += 1;
                    if let GuardDecision::ReleaseNow = g.offer(now) {
                        g.on_release(now);
                        released += 1;
                    }
                }
                // The pending head comes due (if it is).
                1 => {
                    if let Some((due, gen)) = g.next_expiry() {
                        if now >= due && g.take_due(now.max(due), gen) {
                            g.on_release(now.max(due));
                            released += 1;
                        }
                    }
                }
                // An idle point.
                _ => {
                    if g.on_idle_point(now) {
                        g.on_release(now);
                        released += 1;
                    }
                }
            }
            prop_assert_eq!(offered, released + g.pending_len());
        }
    }

    /// SA/PM basics on random two-processor systems: every subtask bound
    /// is at least its execution time, and every task bound at least the
    /// chain's total execution.
    #[test]
    fn sa_pm_bounds_dominate_execution(
        chains in prop::collection::vec(
            (5i64..50, prop::collection::vec((0usize..2, 1i64..4), 1..3)),
            1..4,
        ),
    ) {
        let specs: Vec<ChainSpec> = chains
            .into_iter()
            .map(|(p, subs)| {
                let mut prev = usize::MAX;
                let subs = subs
                    .into_iter()
                    .map(|(proc, c)| {
                        let proc = if proc == prev { (proc + 1) % 2 } else { proc };
                        prev = proc;
                        (proc, Dur::from_ticks(c))
                    })
                    .collect();
                ChainSpec::new(Dur::from_ticks(p), subs)
            })
            .collect();
        let set = build_with_policy(2, &specs, &ProportionalDeadlineMonotonic).unwrap();
        let Ok(bounds) = analyze_pm(&set, &AnalysisConfig::default()) else {
            return Ok(());
        };
        for task in set.tasks() {
            prop_assert!(bounds.task_bound(task.id()) >= task.total_execution());
            for sub in task.subtasks() {
                prop_assert!(bounds.response(sub.id()) >= sub.execution());
            }
        }
    }

    /// The text format round-trips every valid system it can print.
    #[test]
    fn textfmt_roundtrip(
        chains in prop::collection::vec(
            (2i64..60, 0i64..10, prop::collection::vec((0usize..3, 1i64..5), 1..4)),
            1..5,
        ),
    ) {
        let specs: Vec<ChainSpec> = chains
            .into_iter()
            .map(|(p, phase, subs)| {
                let mut prev = usize::MAX;
                let subs = subs
                    .into_iter()
                    .map(|(proc, c)| {
                        let proc = if proc == prev { (proc + 1) % 3 } else { proc };
                        prev = proc;
                        (proc, Dur::from_ticks(c))
                    })
                    .collect();
                ChainSpec::new(Dur::from_ticks(p), subs).with_phase(Time::from_ticks(phase))
            })
            .collect();
        let set: TaskSet =
            build_with_policy(3, &specs, &ProportionalDeadlineMonotonic).unwrap();
        let text = textfmt::to_text(&set);
        let parsed = textfmt::parse(&text).unwrap();
        prop_assert_eq!(parsed, set);
    }

    /// Incremental admission control with memoization on is bit-identical
    /// to a from-scratch batch re-analysis (memoization off) across
    /// arbitrary admit/retire sequences, in both analysis modes: same
    /// verdicts, same bounds, same reject reasons, same resident state.
    #[test]
    fn incremental_admission_matches_batch(
        direct_sync in prop::bool::ANY,
        ops in prop::collection::vec(
            (
                0u8..4,                                       // 0 = retire, else admit
                2i64..40,                                     // period
                1i64..4,                                      // deadline = period × this
                0u32..6,                                      // rank
                prop::collection::vec((0usize..2, 1i64..4), 1..3), // subtasks
            ),
            1..16,
        ),
    ) {
        let mode = if direct_sync {
            AdmissionMode::DirectSync
        } else {
            AdmissionMode::PmFamily
        };
        let cfg = AdmissionConfig::new(mode);
        let mut warm = AdmissionState::new(2, cfg);
        let mut cold = AdmissionState::new(2, cfg.with_memoization(false));
        for (i, (op, period, dfac, rank, subs)) in ops.into_iter().enumerate() {
            // A small id space so retires hit residents and duplicate
            // admits genuinely occur.
            let id = (i % 5) as u64;
            if op == 0 {
                // The reanalyzed/skipped work counters legitimately differ
                // between the two configurations; the verdicts must not.
                let a = warm.retire(id);
                let b = cold.retire(id);
                prop_assert_eq!(a.is_ok(), b.is_ok());
                prop_assert_eq!(a.err(), b.err());
            } else {
                let subtasks = subs
                    .into_iter()
                    .map(|(proc, c)| (proc, Dur::from_ticks(c)))
                    .collect();
                let req = ChainRequest::new(id, Dur::from_ticks(period), subtasks)
                    .with_deadline(Dur::from_ticks(period * dfac))
                    .with_rank(rank);
                let a = warm.admit(req.clone());
                let b = cold.admit(req);
                prop_assert_eq!(a.admitted, b.admitted);
                prop_assert_eq!(a.bound, b.bound);
                prop_assert_eq!(a.reject, b.reject);
                prop_assert_eq!(a.residents, b.residents);
            }
            prop_assert_eq!(warm.resident_bounds(), cold.resident_bounds());
            prop_assert_eq!(warm.residents(), cold.residents());
        }
    }
}
