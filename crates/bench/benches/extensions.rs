//! Benchmarks of the beyond-the-paper extensions: sensitivity search,
//! the EER histogram, the RG rule-2 ablation and the (unsound)
//! first-instance-only analysis against Lehoczky's correct one.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rtsync_core::analysis::sa_pm::{analyze_pm, subtask_response_first_instance_only};
use rtsync_core::analysis::sensitivity::critical_scaling;
use rtsync_core::analysis::AnalysisConfig;
use rtsync_core::protocol::Protocol;
use rtsync_core::time::Dur;
use rtsync_sim::engine::{simulate, SimConfig};
use rtsync_sim::histogram::EerHistogram;
use rtsync_workload::{generate, WorkloadSpec};

fn bench_sensitivity(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let set = generate(&WorkloadSpec::paper(3, 0.6), &mut rng).expect("generates");
    let cfg = AnalysisConfig::default();
    c.bench_function("critical_scaling_n3_u60", |b| {
        b.iter(|| critical_scaling(black_box(&set), Protocol::ReleaseGuard, &cfg, 4_000))
    });
}

fn bench_histogram(c: &mut Criterion) {
    c.bench_function("histogram_record_10k_plus_quantiles", |b| {
        b.iter(|| {
            let mut h = EerHistogram::new();
            for i in 0..10_000i64 {
                h.record(Dur::from_ticks((i * 7919) % 1_000_000));
            }
            (h.quantile(0.5), h.quantile(0.99))
        })
    });
}

fn bench_rule2_ablation(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(4);
    let set =
        generate(&WorkloadSpec::paper(4, 0.7).with_random_phases(), &mut rng).expect("generates");
    let mut group = c.benchmark_group("rg_rule2");
    group.sample_size(20);
    group.bench_function("with_rule2", |b| {
        let cfg = SimConfig::new(Protocol::ReleaseGuard).with_instances(10);
        b.iter(|| simulate(black_box(&set), &cfg).expect("simulates"))
    });
    group.bench_function("rule1_only", |b| {
        let cfg = SimConfig::new(Protocol::ReleaseGuard)
            .with_instances(10)
            .without_rg_rule2();
        b.iter(|| simulate(black_box(&set), &cfg).expect("simulates"))
    });
    group.finish();
}

fn bench_first_instance_ablation(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(5);
    let set = generate(&WorkloadSpec::paper(5, 0.8), &mut rng).expect("generates");
    let cfg = AnalysisConfig::default();
    let mut group = c.benchmark_group("busy_period_depth");
    group.sample_size(20);
    group.bench_function("lehoczky_all_instances", |b| {
        b.iter(|| analyze_pm(black_box(&set), &cfg).expect("analyzes"))
    });
    group.bench_function("first_instance_only_unsound", |b| {
        b.iter(|| {
            let mut acc = Dur::ZERO;
            for task in set.tasks() {
                for sub in task.subtasks() {
                    acc = acc.max(
                        subtask_response_first_instance_only(black_box(&set), sub.id(), &cfg)
                            .expect("analyzes"),
                    );
                }
            }
            acc
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_sensitivity,
    bench_histogram,
    bench_rule2_ablation,
    bench_first_instance_ablation
);
criterion_main!(benches);
