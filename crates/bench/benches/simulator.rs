//! Benchmarks of the discrete-event simulator: whole-system runs per
//! protocol and the event-queue kernel.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rtsync_core::protocol::Protocol;
use rtsync_core::task::TaskId;
use rtsync_core::time::Time;
use rtsync_sim::engine::{simulate, SimConfig};
use rtsync_sim::event::{EventKind, EventQueue};
use rtsync_workload::{generate, WorkloadSpec};

fn bench_protocols(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(7);
    let set = generate(&WorkloadSpec::paper(4, 0.7).with_random_phases(), &mut rng)
        .expect("paper spec generates");
    // Count the events once so the group can report events/second.
    let probe = simulate(
        &set,
        &SimConfig::new(Protocol::DirectSync).with_instances(10),
    )
    .expect("simulation runs");

    let mut group = c.benchmark_group("simulate_4x12_n4_u70");
    group.sample_size(20);
    group.throughput(Throughput::Elements(probe.events));
    for protocol in Protocol::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(protocol.tag()),
            &protocol,
            |b, &protocol| {
                let cfg = SimConfig::new(protocol).with_instances(10);
                b.iter(|| simulate(black_box(&set), &cfg).expect("simulation runs"))
            },
        );
    }
    group.finish();
}

fn bench_trace_recording_overhead(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(8);
    let set = generate(&WorkloadSpec::paper(3, 0.6), &mut rng).expect("paper spec generates");
    let mut group = c.benchmark_group("trace_overhead");
    group.sample_size(20);
    group.bench_function("metrics_only", |b| {
        let cfg = SimConfig::new(Protocol::DirectSync).with_instances(10);
        b.iter(|| simulate(black_box(&set), &cfg).expect("simulation runs"))
    });
    group.bench_function("with_trace", |b| {
        let cfg = SimConfig::new(Protocol::DirectSync)
            .with_instances(10)
            .with_trace();
        b.iter(|| simulate(black_box(&set), &cfg).expect("simulation runs"))
    });
    group.finish();
}

fn bench_engine_vs_reference(c: &mut Criterion) {
    // How much the event-driven engine buys over the naive tick loop on
    // the same workload (the reference is the correctness oracle, not a
    // performance baseline — ticks here are coarse; real workloads use
    // 1000 ticks per paper unit, where the gap widens proportionally).
    use rtsync_core::time::Time;
    use rtsync_sim::reference::simulate_reference;
    let mut rng = StdRng::seed_from_u64(11);
    let mut spec = WorkloadSpec::paper(3, 0.6);
    spec.ticks_per_unit = 1; // keep the tick loop feasible
    let set = generate(&spec, &mut rng).expect("generates");
    let horizon = Time::from_ticks(20_000);
    let mut group = c.benchmark_group("engine_vs_reference");
    group.sample_size(10);
    group.bench_function("event_driven", |b| {
        let cfg = SimConfig::new(Protocol::ReleaseGuard)
            .with_horizon(horizon)
            .with_instances(u64::MAX);
        b.iter(|| simulate(black_box(&set), &cfg).expect("simulates"))
    });
    group.bench_function("tick_reference", |b| {
        let cfg = SimConfig::new(Protocol::ReleaseGuard);
        b.iter(|| simulate_reference(black_box(&set), &cfg, horizon))
    });
    group.finish();
}

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue_push_pop_1k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..1_000i64 {
                q.push(
                    Time::from_ticks((i * 7919) % 1000),
                    EventKind::SourceRelease {
                        task: TaskId::new((i % 12) as usize),
                        instance: i as u64,
                    },
                );
            }
            let mut count = 0;
            while q.pop().is_some() {
                count += 1;
            }
            black_box(count)
        })
    });
}

criterion_group!(
    benches,
    bench_protocols,
    bench_trace_recording_overhead,
    bench_engine_vs_reference,
    bench_event_queue
);
criterion_main!(benches);
