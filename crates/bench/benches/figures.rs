//! One benchmark per evaluation figure: each measures the per-system
//! kernel that the `reproduce` binary scales up to the paper's 35
//! configurations × 1000 systems (Figures 12–16).

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rtsync_core::analysis::sa_ds::analyze_ds;
use rtsync_core::analysis::sa_pm::analyze_pm;
use rtsync_core::analysis::AnalysisConfig;
use rtsync_core::protocol::Protocol;
use rtsync_core::task::TaskSet;
use rtsync_sim::engine::{simulate, SimConfig};
use rtsync_workload::{generate, WorkloadSpec};

fn systems(n: usize, u: f64, count: usize) -> Vec<TaskSet> {
    (0..count)
        .map(|seed| {
            let mut rng = StdRng::seed_from_u64(1000 + seed as u64);
            generate(&WorkloadSpec::paper(n, u).with_random_phases(), &mut rng)
                .expect("paper spec generates")
        })
        .collect()
}

/// Figure 12 kernel: classify systems at a failure-prone configuration as
/// finite/failed under Algorithm SA/DS.
fn fig12_failure_rate(c: &mut Criterion) {
    let cfg = AnalysisConfig::default();
    let sets = systems(7, 0.9, 3);
    c.bench_function("fig12_failure_rate_kernel_n7_u90", |b| {
        b.iter(|| {
            sets.iter()
                .filter(|s| analyze_ds(black_box(s), &cfg).is_err())
                .count()
        })
    });
}

/// Figure 13 kernel: per-task bound ratio SA-DS / SA-PM.
fn fig13_bound_ratio(c: &mut Criterion) {
    let cfg = AnalysisConfig::default();
    let sets = systems(4, 0.7, 2);
    c.bench_function("fig13_bound_ratio_kernel_n4_u70", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for set in &sets {
                let pm = analyze_pm(set, &cfg).expect("U < 1 analyzes");
                if let Ok(ds) = analyze_ds(set, &cfg) {
                    for task in set.tasks() {
                        acc +=
                            ds.task_bound(task.id()).as_f64() / pm.task_bound(task.id()).as_f64();
                    }
                }
            }
            black_box(acc)
        })
    });
}

fn avg_ratio(set: &TaskSet, a: Protocol, b: Protocol, instances: u64) -> f64 {
    let run = |p| simulate(set, &SimConfig::new(p).with_instances(instances)).expect("simulates");
    let (oa, ob) = (run(a), run(b));
    let mut acc = 0.0;
    let mut count = 0;
    for task in set.tasks() {
        if let (Some(x), Some(y)) = (
            oa.metrics.task(task.id()).avg_eer(),
            ob.metrics.task(task.id()).avg_eer(),
        ) {
            acc += x / y;
            count += 1;
        }
    }
    acc / count.max(1) as f64
}

/// Figure 14 kernel: simulated avg-EER ratio PM / DS on one system.
fn fig14_pm_ds(c: &mut Criterion) {
    let set = &systems(5, 0.6, 1)[0];
    c.bench_function("fig14_pm_ds_kernel_n5_u60", |b| {
        b.iter(|| {
            black_box(avg_ratio(
                set,
                Protocol::PhaseModification,
                Protocol::DirectSync,
                10,
            ))
        })
    });
}

/// Figure 15 kernel: simulated avg-EER ratio RG / DS on one system.
fn fig15_rg_ds(c: &mut Criterion) {
    let set = &systems(5, 0.6, 1)[0];
    c.bench_function("fig15_rg_ds_kernel_n5_u60", |b| {
        b.iter(|| {
            black_box(avg_ratio(
                set,
                Protocol::ReleaseGuard,
                Protocol::DirectSync,
                10,
            ))
        })
    });
}

/// Figure 16 kernel: simulated avg-EER ratio PM / RG on one system.
fn fig16_pm_rg(c: &mut Criterion) {
    let set = &systems(5, 0.6, 1)[0];
    c.bench_function("fig16_pm_rg_kernel_n5_u60", |b| {
        b.iter(|| {
            black_box(avg_ratio(
                set,
                Protocol::PhaseModification,
                Protocol::ReleaseGuard,
                10,
            ))
        })
    });
}

fn configure() -> Criterion {
    Criterion::default().sample_size(10)
}

criterion_group! {
    name = benches;
    config = configure();
    targets = fig12_failure_rate, fig13_bound_ratio, fig14_pm_ds, fig15_rg_ds, fig16_pm_rg
}
criterion_main!(benches);
