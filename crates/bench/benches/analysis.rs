//! Benchmarks of the schedulability analyses: Algorithm SA/PM, Algorithm
//! SA/DS (Jacobi, per the paper's Figure 11) and the Gauss–Seidel ablation
//! from DESIGN.md, plus the busy-period fixed-point kernel.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rtsync_core::analysis::busy_period::{fixed_point, DemandTerm, FixedPointLimits};
use rtsync_core::analysis::sa_ds::{analyze_ds_with, SweepOrder};
use rtsync_core::analysis::sa_pm::analyze_pm;
use rtsync_core::analysis::AnalysisConfig;
use rtsync_core::task::TaskSet;
use rtsync_core::time::Dur;
use rtsync_workload::{generate, WorkloadSpec};

fn system(n: usize, u: f64, seed: u64) -> TaskSet {
    let mut rng = StdRng::seed_from_u64(seed);
    generate(&WorkloadSpec::paper(n, u), &mut rng).expect("paper spec generates")
}

fn bench_sa_pm(c: &mut Criterion) {
    let cfg = AnalysisConfig::default();
    let mut group = c.benchmark_group("sa_pm");
    group.sample_size(20);
    for (n, u) in [(2, 0.5), (5, 0.7), (8, 0.9)] {
        let set = system(n, u, 42);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("n{n}_u{}", (u * 100.0) as u32)),
            &set,
            |b, set| b.iter(|| analyze_pm(black_box(set), &cfg).unwrap()),
        );
    }
    group.finish();
}

fn bench_sa_ds_sweep_orders(c: &mut Criterion) {
    // The DESIGN.md ablation: the literal Jacobi iteration of Figure 11
    // versus in-place Gauss–Seidel sweeps (same least fixed point).
    let cfg = AnalysisConfig::default();
    let mut group = c.benchmark_group("sa_ds");
    group.sample_size(20);
    for (n, u) in [(2, 0.5), (4, 0.6), (5, 0.7)] {
        let set = system(n, u, 42);
        for (label, order) in [
            ("jacobi", SweepOrder::Jacobi),
            ("gauss_seidel", SweepOrder::GaussSeidel),
        ] {
            group.bench_with_input(
                BenchmarkId::new(label, format!("n{n}_u{}", (u * 100.0) as u32)),
                &set,
                |b, set| b.iter(|| analyze_ds_with(black_box(set), &cfg, order).unwrap()),
            );
        }
    }
    group.finish();
}

fn bench_sa_ds_failure_path(c: &mut Criterion) {
    // How fast the failure criterion fires on a hostile configuration —
    // this dominates the cost of Figure 12 at high (N, U).
    let cfg = AnalysisConfig::default();
    let mut group = c.benchmark_group("sa_ds_failure");
    group.sample_size(10);
    // Find a failing seed at (8, 90) once, outside the hot loop.
    let set = (0..50)
        .map(|s| system(8, 0.9, s))
        .find(|set| analyze_ds_with(set, &cfg, SweepOrder::Jacobi).is_err())
        .expect("(8, 90) fails for most seeds");
    group.bench_function("n8_u90_first_failing_seed", |b| {
        b.iter(|| {
            let r = analyze_ds_with(black_box(&set), &cfg, SweepOrder::Jacobi);
            debug_assert!(r.is_err());
            r.is_err()
        })
    });
    group.finish();
}

fn bench_busy_period_kernel(c: &mut Criterion) {
    // The fixed-point solver on a representative interference stack.
    let terms: Vec<DemandTerm> = (1..=12)
        .map(|k| {
            DemandTerm::jittered(
                Dur::from_ticks(100_000 + 37_000 * k),
                Dur::from_ticks(5_000 + 700 * k),
                Dur::from_ticks(10_000 * (k % 4)),
            )
        })
        .collect();
    let limits = FixedPointLimits::new(Dur::from_ticks(1_000_000_000), 100_000);
    c.bench_function("busy_period_fixed_point", |b| {
        b.iter(|| fixed_point(black_box(Dur::from_ticks(9_000)), black_box(&terms), limits))
    });
}

criterion_group!(
    benches,
    bench_sa_pm,
    bench_sa_ds_sweep_orders,
    bench_sa_ds_failure_path,
    bench_busy_period_kernel
);
criterion_main!(benches);
