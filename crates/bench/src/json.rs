//! A minimal JSON reader for the regression sentry — just enough to
//! parse `BENCH_sim.json` baselines (the workspace carries no serde,
//! and every writer here hand-rolls its JSON; this is the matching
//! hand-rolled reader).
//!
//! Full JSON value grammar: objects, arrays, strings with the standard
//! escapes, numbers via `f64`, `true`/`false`/`null`. Errors carry a
//! byte offset so a truncated or doctored baseline fails loudly.

/// A parsed JSON value. Objects preserve key order (harmless here and
/// keeps the parser allocation-simple).
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number, as `f64` (baseline fields all fit).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, as ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up `key` in an object; `None` on missing key or non-object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parses a complete JSON document; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&b) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{}` at byte {}", b as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
        None => Err("unexpected end of input".to_string()),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("bad literal at byte {}", *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|e| format!("bad number `{text}` at byte {start}: {e}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000C}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|e| format!("bad \\u escape: {e}"))?;
                        // Surrogate pairs don't occur in our baselines;
                        // map unpaired surrogates to the replacement char.
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(&b) if b < 0x80 => {
                out.push(b as char);
                *pos += 1;
            }
            Some(_) => {
                // Multi-byte UTF-8: copy the whole code point.
                let s = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let ch = s.chars().next().ok_or("unterminated string")?;
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected `,` or `]` at byte {}", *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut pairs = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(pairs));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        pairs.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_arrays_and_nested_objects() {
        let doc = r#"{"a": 1.5, "b": [true, null, "x\ny"], "c": {"d": -2e3}}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("a").unwrap().as_f64(), Some(1.5));
        let arr = v.get("b").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_bool(), Some(true));
        assert_eq!(arr[1], Json::Null);
        assert_eq!(arr[2].as_str(), Some("x\ny"));
        assert_eq!(
            v.get("c").unwrap().get("d").unwrap().as_f64(),
            Some(-2000.0)
        );
    }

    #[test]
    fn rejects_truncated_and_trailing_input() {
        assert!(parse("{\"a\": ").is_err());
        assert!(parse("[1, 2").is_err());
        assert!(parse("{} extra").is_err());
        assert!(parse("\"unterminated").is_err());
    }
}
