//! The bench regression sentry: compares a freshly measured suite
//! against a committed `BENCH_sim.json` baseline, cell by cell, with
//! noise-aware deltas and per-scenario tolerances.
//!
//! Noise handling: both sides compare on **best-of-N** throughput (the
//! iteration with the minimum wall time), which is far more stable than
//! the mean under scheduler jitter — a cell regresses only when even its
//! best iteration is more than the scenario's tolerance below the
//! baseline's best. `rtsync bench --compare` exits nonzero when any cell
//! regresses, which is what CI keys off.

use crate::json::{self, Json};
use crate::BenchReport;

/// Relative tolerances for the sentry: a cell regresses when its best
/// throughput falls below `baseline * (1 - tolerance)`.
#[derive(Clone, Debug)]
pub struct Tolerances {
    /// Fallback tolerance for scenarios without an override.
    pub default_frac: f64,
    /// Per-scenario overrides, e.g. `("faults_transport", 0.25)`.
    pub per_scenario: Vec<(String, f64)>,
}

impl Default for Tolerances {
    /// 15% across the board — generous enough for best-of-5 on a quiet
    /// machine, tight enough to catch a real hot-path regression.
    fn default() -> Tolerances {
        Tolerances {
            default_frac: 0.15,
            per_scenario: Vec::new(),
        }
    }
}

impl Tolerances {
    /// A uniform tolerance.
    pub fn uniform(frac: f64) -> Tolerances {
        Tolerances {
            default_frac: frac,
            per_scenario: Vec::new(),
        }
    }

    /// Adds (or replaces) a per-scenario override.
    pub fn with_scenario(mut self, scenario: &str, frac: f64) -> Tolerances {
        self.per_scenario.retain(|(s, _)| s != scenario);
        self.per_scenario.push((scenario.to_string(), frac));
        self
    }

    /// The tolerance applied to `scenario`.
    pub fn for_scenario(&self, scenario: &str) -> f64 {
        self.per_scenario
            .iter()
            .find(|(s, _)| s == scenario)
            .map_or(self.default_frac, |(_, f)| *f)
    }
}

/// One baseline cell as read from a `BENCH_sim.json`.
#[derive(Clone, Debug)]
pub struct BaselineCell {
    /// Protocol tag (`DS`, `PM`, `MPM`, `RG`).
    pub protocol: String,
    /// Scenario tag.
    pub scenario: String,
    /// Best-of-N throughput; for a v1 baseline (no per-iteration data)
    /// this falls back to the recorded mean.
    pub best_events_per_sec: f64,
}

/// A parsed baseline file.
#[derive(Clone, Debug)]
pub struct Baseline {
    /// The file's schema tag (`rtsync-bench-v1` or `-v2`).
    pub schema: String,
    /// Whether the baseline itself was a smoke run.
    pub smoke: bool,
    /// The baseline's cells.
    pub cells: Vec<BaselineCell>,
}

/// Reads a baseline out of a `BENCH_sim.json` document (v1 or v2).
///
/// # Errors
///
/// On malformed JSON, an unknown schema, or cells missing their
/// throughput fields.
pub fn parse_baseline(text: &str) -> Result<Baseline, String> {
    let doc = json::parse(text).map_err(|e| format!("baseline is not valid JSON: {e}"))?;
    let schema = doc
        .get("schema")
        .and_then(Json::as_str)
        .ok_or("baseline has no \"schema\" field")?
        .to_string();
    if !matches!(schema.as_str(), "rtsync-bench-v1" | "rtsync-bench-v2") {
        return Err(format!("unknown baseline schema `{schema}`"));
    }
    let smoke = doc.get("smoke").and_then(Json::as_bool).unwrap_or(false);
    let results = doc
        .get("results")
        .and_then(Json::as_arr)
        .ok_or("baseline has no \"results\" array")?;
    let mut cells = Vec::with_capacity(results.len());
    for (i, cell) in results.iter().enumerate() {
        let field = |key: &str| {
            cell.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or(format!("result {i} has no \"{key}\""))
        };
        let best = cell
            .get("best_events_per_sec")
            .or_else(|| cell.get("events_per_sec"))
            .and_then(Json::as_f64)
            .ok_or(format!("result {i} has no throughput field"))?;
        cells.push(BaselineCell {
            protocol: field("protocol")?,
            scenario: field("scenario")?,
            best_events_per_sec: best,
        });
    }
    Ok(Baseline {
        schema,
        smoke,
        cells,
    })
}

/// The sentry's verdict on one cell.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// Within tolerance of the baseline.
    Ok,
    /// Faster than the baseline by more than the tolerance.
    Improved,
    /// Slower than the baseline by more than the tolerance — the
    /// exit-nonzero case.
    Regressed,
    /// The baseline has no matching (protocol, scenario) cell; reported
    /// but not failed, so adding a scenario doesn't brick CI.
    NewCell,
}

/// One compared cell.
#[derive(Clone, Debug)]
pub struct CompareRow {
    /// Protocol tag.
    pub protocol: String,
    /// Scenario tag.
    pub scenario: String,
    /// Baseline best-of-N throughput (`None` for a new cell).
    pub baseline: Option<f64>,
    /// Freshly measured best-of-N throughput.
    pub current: f64,
    /// Relative delta vs baseline (`current / baseline - 1`; 0 for new).
    pub delta_frac: f64,
    /// The tolerance this cell was judged against.
    pub tolerance: f64,
    /// The verdict.
    pub verdict: Verdict,
}

/// The whole comparison.
#[derive(Clone, Debug)]
pub struct Comparison {
    /// Every cell of the fresh run, in suite order.
    pub rows: Vec<CompareRow>,
    /// Whether the baseline was a smoke run (mismatched smoke-ness makes
    /// absolute numbers incomparable; flagged in the rendering).
    pub baseline_smoke: bool,
    /// Whether the fresh run was a smoke run.
    pub current_smoke: bool,
}

impl Comparison {
    /// Rows that regressed.
    pub fn regressions(&self) -> impl Iterator<Item = &CompareRow> {
        self.rows.iter().filter(|r| r.verdict == Verdict::Regressed)
    }

    /// `true` when no cell regressed.
    pub fn is_clean(&self) -> bool {
        self.regressions().next().is_none()
    }

    /// Renders the comparison as an aligned table plus a one-line
    /// summary.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        if self.baseline_smoke != self.current_smoke {
            let _ = writeln!(
                out,
                "warning: comparing a {} run against a {} baseline — numbers are not comparable",
                if self.current_smoke { "smoke" } else { "full" },
                if self.baseline_smoke { "smoke" } else { "full" },
            );
        }
        let _ = writeln!(
            out,
            "{:<6}{:<18}{:>14}{:>14}{:>9}{:>7}  verdict",
            "proto", "scenario", "base ev/s", "now ev/s", "delta", "tol"
        );
        for r in &self.rows {
            let _ = writeln!(
                out,
                "{:<6}{:<18}{:>14}{:>14.0}{:>8.1}%{:>6.0}%  {}",
                r.protocol,
                r.scenario,
                r.baseline.map_or("-".to_string(), |b| format!("{b:.0}")),
                r.current,
                r.delta_frac * 100.0,
                r.tolerance * 100.0,
                match r.verdict {
                    Verdict::Ok => "ok",
                    Verdict::Improved => "improved",
                    Verdict::Regressed => "REGRESSED",
                    Verdict::NewCell => "new cell (no baseline)",
                },
            );
        }
        let regressed = self.regressions().count();
        if regressed == 0 {
            let _ = writeln!(out, "sentry: clean ({} cells compared)", self.rows.len());
        } else {
            let _ = writeln!(
                out,
                "sentry: {regressed} of {} cells REGRESSED beyond tolerance",
                self.rows.len()
            );
        }
        out
    }
}

/// Compares a fresh report against a parsed baseline.
pub fn compare(current: &BenchReport, baseline: &Baseline, tol: &Tolerances) -> Comparison {
    let rows = current
        .results
        .iter()
        .map(|r| {
            let tolerance = tol.for_scenario(r.scenario);
            let base = baseline
                .cells
                .iter()
                .find(|c| c.protocol == r.protocol && c.scenario == r.scenario)
                .map(|c| c.best_events_per_sec);
            let (delta_frac, verdict) = match base {
                None => (0.0, Verdict::NewCell),
                Some(b) => {
                    let delta = r.best_events_per_sec / b.max(f64::MIN_POSITIVE) - 1.0;
                    let verdict = if delta < -tolerance {
                        Verdict::Regressed
                    } else if delta > tolerance {
                        Verdict::Improved
                    } else {
                        Verdict::Ok
                    };
                    (delta, verdict)
                }
            };
            CompareRow {
                protocol: r.protocol.to_string(),
                scenario: r.scenario.to_string(),
                baseline: base,
                current: r.best_events_per_sec,
                delta_frac,
                tolerance,
                verdict,
            }
        })
        .collect();
    Comparison {
        rows,
        baseline_smoke: baseline.smoke,
        current_smoke: current.smoke,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BenchReport, BenchResult, Provenance};

    /// A tiny synthetic report — no measuring, just plumbing.
    fn report(best: f64) -> BenchReport {
        BenchReport {
            smoke: true,
            instances: 8,
            provenance: Provenance::collect(),
            results: vec![BenchResult {
                protocol: "DS",
                scenario: "ideal",
                iterations: 2,
                events_per_iter: 1000,
                elapsed_secs: 2000.0 / best,
                events_per_sec: best,
                iter_secs: vec![1000.0 / best, 1100.0 / best],
                best_events_per_sec: best,
                profile: None,
            }],
        }
    }

    #[test]
    fn round_trips_through_the_v2_writer() {
        let rep = report(1_000_000.0);
        let base = parse_baseline(&rep.to_json()).unwrap();
        assert_eq!(base.schema, "rtsync-bench-v2");
        assert!(base.smoke);
        assert_eq!(base.cells.len(), 1);
        assert_eq!(base.cells[0].protocol, "DS");
        assert!((base.cells[0].best_events_per_sec - 1_000_000.0).abs() < 1.0);
        let cmp = compare(&rep, &base, &Tolerances::default());
        assert!(cmp.is_clean());
        assert_eq!(cmp.rows[0].verdict, Verdict::Ok);
    }

    #[test]
    fn reads_v1_baselines_via_the_mean_fallback() {
        let v1 = r#"{
          "schema": "rtsync-bench-v1", "smoke": false,
          "results": [
            {"protocol": "DS", "scenario": "ideal", "events_per_sec": 500000}
          ]
        }"#;
        let base = parse_baseline(v1).unwrap();
        assert_eq!(base.cells[0].best_events_per_sec, 500000.0);
    }

    #[test]
    fn synthetic_regression_trips_the_sentry() {
        // Doctor the baseline to claim 10x the measured throughput: the
        // fresh run must register as a regression at any sane tolerance.
        let rep = report(1_000_000.0);
        let mut base = parse_baseline(&rep.to_json()).unwrap();
        base.cells[0].best_events_per_sec *= 10.0;
        let cmp = compare(&rep, &base, &Tolerances::default());
        assert!(!cmp.is_clean());
        assert_eq!(cmp.rows[0].verdict, Verdict::Regressed);
        assert!(cmp.render().contains("REGRESSED"));

        // ...and a per-scenario override can wave the same delta through.
        let lax = Tolerances::default().with_scenario("ideal", 0.95);
        assert!(compare(&rep, &base, &lax).is_clean());
    }

    #[test]
    fn improvements_and_new_cells_do_not_fail() {
        let rep = report(1_000_000.0);
        let mut base = parse_baseline(&rep.to_json()).unwrap();
        base.cells[0].best_events_per_sec /= 10.0;
        let cmp = compare(&rep, &base, &Tolerances::default());
        assert!(cmp.is_clean());
        assert_eq!(cmp.rows[0].verdict, Verdict::Improved);

        base.cells.clear();
        let cmp = compare(&rep, &base, &Tolerances::default());
        assert!(cmp.is_clean());
        assert_eq!(cmp.rows[0].verdict, Verdict::NewCell);
    }

    #[test]
    fn malformed_baselines_fail_loudly() {
        assert!(parse_baseline("not json").is_err());
        assert!(parse_baseline("{\"schema\": \"rtsync-bench-v9\", \"results\": []}").is_err());
        assert!(parse_baseline("{\"results\": []}").is_err());
        assert!(parse_baseline(
            "{\"schema\": \"rtsync-bench-v2\", \"results\": [{\"protocol\": \"DS\"}]}"
        )
        .is_err());
    }
}
