//! Criterion benchmark harness crate; see the `benches/` directory.
