//! Benchmark harness crate.
//!
//! Two entry points share the same scenarios:
//!
//! * the criterion microbenchmarks under `benches/` (statistical, for
//!   local investigation), and
//! * [`run_suite`] — a plain stopwatch runner with **no criterion
//!   dependency**, used by `rtsync bench --json` to record the tracked
//!   throughput baseline (`BENCH_sim.json`) and by the CI smoke job.
//!
//! The suite measures end-to-end simulator throughput (events per second
//! of wall time) for every protocol under four escalating condition
//! tiers: `ideal` (the paper's assumptions), `nonideal` (drifting clocks
//! and a lossy-free latency channel), `sync` (nonideal plus the periodic
//! clock-synchronization exchanges), and `faults_transport` (crash/
//! recovery plus the acked endpoint transport with failure detection).
//! Numbers are machine-dependent: compare trajectories on one machine,
//! not absolute values across machines.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;
use rtsync_core::protocol::Protocol;
use rtsync_core::task::TaskSet;
use rtsync_core::time::Dur;
use rtsync_sim::engine::{simulate, SimConfig};
use rtsync_sim::nonideal::{ChannelModel, ClockModel};
use rtsync_sim::{DetectorConfig, FaultConfig, SyncConfig, TransportConfig};
use rtsync_workload::{generate, WorkloadSpec};

/// Workload seed shared with the criterion benches, so both harnesses
/// measure the same task set.
const WORKLOAD_SEED: u64 = 7;
const WORKLOAD_TASKS: usize = 4;
const WORKLOAD_UTILIZATION: f64 = 0.7;

/// One measured cell of the suite.
#[derive(Clone, Debug)]
pub struct BenchResult {
    /// Protocol tag (`DS`, `PM`, `MPM`, `RG`).
    pub protocol: &'static str,
    /// Scenario tag (`ideal`, `nonideal`, `sync`, `faults_transport`).
    pub scenario: &'static str,
    /// Timed iterations (after one untimed warmup).
    pub iterations: u32,
    /// Events dispatched per iteration (identical across iterations —
    /// the simulator is deterministic).
    pub events_per_iter: u64,
    /// Total wall-clock seconds across the timed iterations.
    pub elapsed_secs: f64,
    /// The headline number: dispatched events per second of wall time.
    pub events_per_sec: f64,
}

/// The whole suite's outcome, serializable to the `rtsync-bench-v1`
/// JSON schema.
#[derive(Clone, Debug)]
pub struct BenchReport {
    /// `true` for the reduced CI variant.
    pub smoke: bool,
    /// Instances simulated per task in every run.
    pub instances: u64,
    /// All measured cells, protocol-major.
    pub results: Vec<BenchResult>,
}

impl BenchReport {
    /// Renders the `rtsync-bench-v1` JSON document (hand-rolled — the
    /// workspace carries no serde).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"schema\": \"rtsync-bench-v1\",\n");
        out.push_str(&format!("  \"smoke\": {},\n", self.smoke));
        out.push_str(&format!(
            "  \"workload\": {{\"tasks\": {WORKLOAD_TASKS}, \"utilization\": {WORKLOAD_UTILIZATION}, \"seed\": {WORKLOAD_SEED}, \"instances_per_task\": {}}},\n",
            self.instances
        ));
        out.push_str("  \"unit\": \"events per second of wall time\",\n");
        out.push_str("  \"results\": [\n");
        for (i, r) in self.results.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"protocol\": \"{}\", \"scenario\": \"{}\", \"iterations\": {}, \"events_per_iter\": {}, \"elapsed_secs\": {:.6}, \"events_per_sec\": {:.0}}}{}\n",
                r.protocol,
                r.scenario,
                r.iterations,
                r.events_per_iter,
                r.elapsed_secs,
                r.events_per_sec,
                if i + 1 < self.results.len() { "," } else { "" },
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// The four condition tiers, in escalating order.
const SCENARIOS: [&str; 4] = ["ideal", "nonideal", "sync", "faults_transport"];

/// Builds the `SimConfig` of one cell. Seeds are fixed so every
/// invocation measures the identical event sequence.
fn cell_config(protocol: Protocol, scenario: &str, instances: u64) -> SimConfig {
    let base = SimConfig::new(protocol).with_instances(instances);
    match scenario {
        "ideal" => base,
        "nonideal" => base
            .with_clocks(ClockModel::Random {
                max_offset: Dur::from_ticks(500),
                max_drift_ppm: 200,
                seed: 21,
            })
            .with_channel(
                ChannelModel::uniform(Dur::from_ticks(50), Dur::from_ticks(400)).with_seed(22),
            ),
        "sync" => {
            // Nonideal clocks plus the clock-synchronization layer: the
            // price of the periodic NTP-style exchanges riding the same
            // event queue and channel as the protocol traffic.
            base.with_clocks(ClockModel::Random {
                max_offset: Dur::from_ticks(500),
                max_drift_ppm: 200,
                seed: 21,
            })
            .with_channel(
                ChannelModel::uniform(Dur::from_ticks(50), Dur::from_ticks(400)).with_seed(22),
            )
            .with_sync(SyncConfig::new(Dur::from_ticks(20_000)))
        }
        "faults_transport" => {
            // Mirrors the chaos harness's transport-mode configuration:
            // real endpoint drops recovered by ack/retransmit, plus a
            // heartbeat failure detector and a random crash schedule.
            let latency = 1_000;
            let restart_delay = 200_000;
            base.with_channel(
                ChannelModel::constant(Dur::from_ticks(latency))
                    .with_endpoint_drops(0.05)
                    .with_seed(33),
            )
            .with_transport(
                TransportConfig::new(Dur::from_ticks(4 * latency))
                    .with_seed(34)
                    .with_detector(DetectorConfig::new(Dur::from_ticks(restart_delay / 20))),
            )
            .with_faults(FaultConfig::random(
                Dur::from_ticks(5_000_000),
                Dur::from_ticks(restart_delay),
                35,
            ))
        }
        other => unreachable!("unknown scenario {other}"),
    }
}

/// The shared benchmark task set (§5.1 workload, random phases).
pub fn bench_task_set() -> TaskSet {
    let mut rng = StdRng::seed_from_u64(WORKLOAD_SEED);
    generate(
        &WorkloadSpec::paper(WORKLOAD_TASKS, WORKLOAD_UTILIZATION).with_random_phases(),
        &mut rng,
    )
    .expect("paper spec generates")
}

/// Runs the full suite: every protocol × every scenario, one untimed
/// warmup then `iterations` timed runs per cell. `smoke` shrinks the
/// instance count and iteration count for CI (the numbers are then only
/// a crash canary, not a baseline).
pub fn run_suite(smoke: bool) -> BenchReport {
    let (instances, iterations) = if smoke { (8, 1) } else { (50, 5) };
    let set = bench_task_set();
    let mut results = Vec::new();
    for protocol in Protocol::ALL {
        for scenario in SCENARIOS {
            let cfg = cell_config(protocol, scenario, instances);
            // Warmup: touches the page cache and verifies the cell runs.
            let events_per_iter = simulate(&set, &cfg)
                .expect("benchmark cell simulates")
                .events;
            let start = Instant::now();
            for _ in 0..iterations {
                let out = simulate(&set, &cfg).expect("benchmark cell simulates");
                assert_eq!(
                    out.events, events_per_iter,
                    "simulator must be deterministic across iterations"
                );
            }
            let elapsed_secs = start.elapsed().as_secs_f64();
            let total_events = events_per_iter * u64::from(iterations);
            results.push(BenchResult {
                protocol: protocol.tag(),
                scenario,
                iterations,
                events_per_iter,
                elapsed_secs,
                events_per_sec: total_events as f64 / elapsed_secs.max(1e-9),
            });
        }
    }
    BenchReport {
        smoke,
        instances,
        results,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_suite_runs_every_cell_and_serializes() {
        let report = run_suite(true);
        assert_eq!(report.results.len(), Protocol::ALL.len() * SCENARIOS.len());
        for r in &report.results {
            assert!(
                r.events_per_iter > 0,
                "{}/{} ran no events",
                r.protocol,
                r.scenario
            );
            assert!(r.events_per_sec > 0.0);
        }
        let json = report.to_json();
        assert!(json.starts_with("{\n  \"schema\": \"rtsync-bench-v1\""));
        assert_eq!(json.matches("\"protocol\"").count(), report.results.len());
        // Balanced braces/brackets as a cheap well-formedness check.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
