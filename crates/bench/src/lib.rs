//! Benchmark harness crate.
//!
//! Two entry points share the same scenarios:
//!
//! * the criterion microbenchmarks under `benches/` (statistical, for
//!   local investigation), and
//! * [`run_suite`] — a plain stopwatch runner with **no criterion
//!   dependency**, used by `rtsync bench --json` to record the tracked
//!   throughput baseline (`BENCH_sim.json`) and by the CI smoke job.
//!
//! The suite measures end-to-end simulator throughput (events per second
//! of wall time) for every protocol under six escalating condition
//! tiers: `ideal` (the paper's assumptions), `nonideal` (drifting clocks
//! and a lossy-free latency channel), `sync` (nonideal plus the periodic
//! clock-synchronization exchanges), `partition` (sync plus a seeded
//! random partition schedule severing and replaying traffic),
//! `faults_transport` (crash/recovery plus the acked endpoint transport
//! with failure detection), and `gray` (slowdown/stall/degraded-link
//! personas under the adaptive φ-accrual detector — the price of the
//! gray penalty lookups, stretched service accounting, and φ window
//! updates on every heartbeat). A seventh `admit` tier measures the
//! incremental admission-control engine instead of the simulator: its
//! "events" are admit/retire decisions served against the same §5.1
//! workload (fill + churn), so `events_per_sec` reads as decisions per
//! second there. DS cells run the engine in SA/DS mode; PM, MPM and RG
//! share the SA/PM analysis and measure the PM-family mode.
//! Numbers are machine-dependent: compare trajectories on one machine,
//! not absolute values across machines — which is exactly what the
//! [`compare`] sentry automates: per-iteration timings make a
//! noise-aware best-of-N comparison against the committed baseline, and
//! `rtsync bench --compare` exits nonzero on regression. The
//! `rtsync-bench-v2` JSON schema carries [`Provenance`] (git describe,
//! seed, wall-clock timestamp, host) following the convention of
//! `results/reproduce_run.txt`, plus an optional engine self-profile per
//! cell (`rtsync bench --profile`, see `rtsync_sim::perf`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compare;
pub mod json;

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;
use rtsync_core::analysis::admission::{
    AdmissionConfig, AdmissionMode, AdmissionState, ChainRequest,
};
use rtsync_core::protocol::Protocol;
use rtsync_core::task::TaskSet;
use rtsync_core::time::Dur;
use rtsync_sim::engine::{simulate, simulate_profiled, SimConfig};
use rtsync_sim::nonideal::{ChannelModel, ClockModel};
use rtsync_sim::{
    DetectorConfig, EngineProfile, FaultConfig, GrayConfig, LinkSchedule, PartitionSchedule,
    PhiConfig, SlowSchedule, StallSchedule, SyncConfig, TransportConfig,
};
use rtsync_workload::{generate, WorkloadSpec};

/// Workload seed shared with the criterion benches, so both harnesses
/// measure the same task set.
const WORKLOAD_SEED: u64 = 7;
const WORKLOAD_TASKS: usize = 4;
const WORKLOAD_UTILIZATION: f64 = 0.7;

/// Where the measurement came from: enough context to judge whether two
/// baselines are comparable, following the `results/reproduce_run.txt`
/// convention (command, git, seed, config).
#[derive(Clone, Debug)]
pub struct Provenance {
    /// `git describe --always --dirty` at measurement time (`unknown`
    /// outside a work tree).
    pub git: String,
    /// Wall-clock capture time, seconds since the Unix epoch.
    pub timestamp_unix: u64,
    /// The same instant as UTC `YYYY-MM-DDTHH:MM:SSZ`.
    pub timestamp_utc: String,
    /// Host kernel/arch line (`uname -srm`, falling back to the compiled
    /// OS/arch).
    pub host: String,
    /// Available hardware parallelism on the measuring host.
    pub parallelism: usize,
    /// The workload seed the suite ran with.
    pub seed: u64,
}

impl Provenance {
    /// Captures provenance on this host, now.
    pub fn collect() -> Provenance {
        let git = std::process::Command::new("git")
            .args(["describe", "--always", "--dirty"])
            .output()
            .ok()
            .filter(|o| o.status.success())
            .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
            .filter(|s| !s.is_empty())
            .unwrap_or_else(|| "unknown".to_string());
        let host = std::process::Command::new("uname")
            .args(["-srm"])
            .output()
            .ok()
            .filter(|o| o.status.success())
            .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
            .filter(|s| !s.is_empty())
            .unwrap_or_else(|| format!("{} {}", std::env::consts::OS, std::env::consts::ARCH));
        let timestamp_unix = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        Provenance {
            git,
            timestamp_unix,
            timestamp_utc: utc_string(timestamp_unix),
            host,
            parallelism: std::thread::available_parallelism().map_or(1, usize::from),
            seed: WORKLOAD_SEED,
        }
    }
}

/// Formats Unix seconds as UTC `YYYY-MM-DDTHH:MM:SSZ` (civil-from-days,
/// no date dependency).
fn utc_string(secs: u64) -> String {
    let days = (secs / 86_400) as i64;
    let rem = secs % 86_400;
    let (hh, mm, ss) = (rem / 3600, (rem % 3600) / 60, rem % 60);
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = mp + if mp < 10 { 3 } else { -9 };
    let y = yoe + era * 400 + i64::from(m <= 2);
    format!("{y:04}-{m:02}-{d:02}T{hh:02}:{mm:02}:{ss:02}Z")
}

/// Escapes a string for embedding in a JSON document.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// One measured cell of the suite.
#[derive(Clone, Debug)]
pub struct BenchResult {
    /// Protocol tag (`DS`, `PM`, `MPM`, `RG`).
    pub protocol: &'static str,
    /// Scenario tag (`ideal`, `nonideal`, `sync`, `partition`,
    /// `faults_transport`, `gray`, `admit`).
    pub scenario: &'static str,
    /// Timed iterations (after one untimed warmup).
    pub iterations: u32,
    /// Events dispatched per iteration (identical across iterations —
    /// the simulator is deterministic).
    pub events_per_iter: u64,
    /// Total wall-clock seconds across the timed iterations.
    pub elapsed_secs: f64,
    /// Mean throughput: dispatched events per second of wall time.
    pub events_per_sec: f64,
    /// Wall-clock seconds of each timed iteration, in run order.
    pub iter_secs: Vec<f64>,
    /// Best-of-N throughput (fastest iteration) — the noise-resistant
    /// number the regression sentry compares.
    pub best_events_per_sec: f64,
    /// Engine self-profile of one extra run of this cell, when the suite
    /// ran with profiling on.
    pub profile: Option<EngineProfile>,
}

/// The whole suite's outcome, serializable to the `rtsync-bench-v2`
/// JSON schema.
#[derive(Clone, Debug)]
pub struct BenchReport {
    /// `true` for the reduced CI variant.
    pub smoke: bool,
    /// Instances simulated per task in every run.
    pub instances: u64,
    /// Where and when the numbers were measured.
    pub provenance: Provenance,
    /// All measured cells, protocol-major.
    pub results: Vec<BenchResult>,
}

impl BenchReport {
    /// Renders the `rtsync-bench-v2` JSON document (hand-rolled — the
    /// workspace carries no serde).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"schema\": \"rtsync-bench-v2\",\n");
        out.push_str(&format!("  \"smoke\": {},\n", self.smoke));
        let p = &self.provenance;
        out.push_str(&format!(
            "  \"provenance\": {{\"git\": \"{}\", \"timestamp_unix\": {}, \"timestamp_utc\": \"{}\", \"host\": \"{}\", \"parallelism\": {}, \"seed\": {}}},\n",
            json_escape(&p.git),
            p.timestamp_unix,
            p.timestamp_utc,
            json_escape(&p.host),
            p.parallelism,
            p.seed,
        ));
        out.push_str(&format!(
            "  \"workload\": {{\"tasks\": {WORKLOAD_TASKS}, \"utilization\": {WORKLOAD_UTILIZATION}, \"seed\": {WORKLOAD_SEED}, \"instances_per_task\": {}}},\n",
            self.instances
        ));
        out.push_str("  \"unit\": \"events per second of wall time\",\n");
        out.push_str("  \"results\": [\n");
        for (i, r) in self.results.iter().enumerate() {
            let iter_secs: Vec<String> = r.iter_secs.iter().map(|s| format!("{s:.6}")).collect();
            let profile = r
                .profile
                .as_ref()
                .map(|p| format!(", \"profile\": {}", p.to_json()))
                .unwrap_or_default();
            out.push_str(&format!(
                "    {{\"protocol\": \"{}\", \"scenario\": \"{}\", \"iterations\": {}, \"events_per_iter\": {}, \"elapsed_secs\": {:.6}, \"events_per_sec\": {:.0}, \"iter_secs\": [{}], \"best_events_per_sec\": {:.0}{}}}{}\n",
                r.protocol,
                r.scenario,
                r.iterations,
                r.events_per_iter,
                r.elapsed_secs,
                r.events_per_sec,
                iter_secs.join(", "),
                r.best_events_per_sec,
                profile,
                if i + 1 < self.results.len() { "," } else { "" },
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// The six simulator condition tiers in escalating order, plus the
/// `admit` tier driving the admission-control engine.
const SCENARIOS: [&str; 7] = [
    "ideal",
    "nonideal",
    "sync",
    "partition",
    "faults_transport",
    "gray",
    "admit",
];

/// Builds the `SimConfig` of one cell. Seeds are fixed so every
/// invocation measures the identical event sequence.
fn cell_config(protocol: Protocol, scenario: &str, instances: u64) -> SimConfig {
    let base = SimConfig::new(protocol).with_instances(instances);
    match scenario {
        "ideal" => base,
        "nonideal" => base
            .with_clocks(ClockModel::Random {
                max_offset: Dur::from_ticks(500),
                max_drift_ppm: 200,
                seed: 21,
            })
            .with_channel(
                ChannelModel::uniform(Dur::from_ticks(50), Dur::from_ticks(400)).with_seed(22),
            ),
        "sync" => {
            // Nonideal clocks plus the clock-synchronization layer: the
            // price of the periodic NTP-style exchanges riding the same
            // event queue and channel as the protocol traffic.
            base.with_clocks(ClockModel::Random {
                max_offset: Dur::from_ticks(500),
                max_drift_ppm: 200,
                seed: 21,
            })
            .with_channel(
                ChannelModel::uniform(Dur::from_ticks(50), Dur::from_ticks(400)).with_seed(22),
            )
            .with_sync(SyncConfig::new(Dur::from_ticks(20_000)))
        }
        "partition" => {
            // The sync tier plus a seeded random partition schedule:
            // the price of the partition gate on every frame send, the
            // parked-signal bookkeeping, and the heal-time replays.
            base.with_clocks(ClockModel::Random {
                max_offset: Dur::from_ticks(500),
                max_drift_ppm: 200,
                seed: 21,
            })
            .with_channel(
                ChannelModel::uniform(Dur::from_ticks(50), Dur::from_ticks(400)).with_seed(22),
            )
            .with_sync(SyncConfig::new(Dur::from_ticks(20_000)))
            .with_faults(FaultConfig::explicit(Vec::new()).with_partitions(
                PartitionSchedule::Random {
                    mean_connected: Dur::from_ticks(2_000_000),
                    heal_delay: Dur::from_ticks(500_000),
                    seed: 44,
                },
            ))
        }
        "faults_transport" => {
            // Mirrors the chaos harness's transport-mode configuration:
            // real endpoint drops recovered by ack/retransmit, plus a
            // heartbeat failure detector and a random crash schedule.
            let latency = 1_000;
            let restart_delay = 200_000;
            base.with_channel(
                ChannelModel::constant(Dur::from_ticks(latency))
                    .with_endpoint_drops(0.05)
                    .with_seed(33),
            )
            .with_transport(
                TransportConfig::new(Dur::from_ticks(4 * latency))
                    .with_seed(34)
                    .with_detector(DetectorConfig::new(Dur::from_ticks(restart_delay / 20))),
            )
            .with_faults(FaultConfig::random(
                Dur::from_ticks(5_000_000),
                Dur::from_ticks(restart_delay),
                35,
            ))
        }
        "gray" => {
            // Gray failures under the adaptive detector: slow windows,
            // stalls and degraded links on a live system, with φ-accrual
            // (window updates per heartbeat, Degraded cadence stretches)
            // riding the acked transport. Nothing actually crashes.
            let latency = 1_000;
            base.with_channel(ChannelModel::constant(Dur::from_ticks(latency)).with_seed(33))
                .with_transport(
                    TransportConfig::new(Dur::from_ticks(4 * latency))
                        .with_seed(34)
                        .with_detector(
                            DetectorConfig::new(Dur::from_ticks(10_000)).with_phi(PhiConfig::new()),
                        ),
                )
                .with_faults(FaultConfig::gray_only(
                    GrayConfig::new()
                        .with_slow(SlowSchedule::Random {
                            mean_healthy: Dur::from_ticks(4_000_000),
                            span: Dur::from_ticks(200_000),
                            factor: 8,
                            seed: 36,
                        })
                        .with_stalls(StallSchedule::Random {
                            mean_healthy: Dur::from_ticks(6_000_000),
                            span: Dur::from_ticks(40_000),
                            seed: 37,
                        })
                        .with_links(LinkSchedule::Random {
                            mean_healthy: Dur::from_ticks(3_000_000),
                            span: Dur::from_ticks(400_000),
                            extra_latency: Dur::from_ticks(2_000),
                            jitter: Dur::from_ticks(1_000),
                            drop_permille: 300,
                            seed: 38,
                        })
                        .with_frame_seed(39),
                ))
        }
        other => unreachable!("unknown scenario {other}"),
    }
}

/// The benchmark task set as admission requests: one chain per task,
/// ranked shortest-period-first.
fn admit_requests(set: &TaskSet) -> Vec<ChainRequest> {
    set.tasks()
        .iter()
        .enumerate()
        .map(|(i, task)| {
            let subtasks = task
                .subtasks()
                .iter()
                .map(|sub| (sub.processor().index(), sub.execution()))
                .collect();
            ChainRequest::new(i as u64, task.period(), subtasks)
                .with_deadline(task.deadline())
                .with_rank(task.period().ticks().min(i64::from(u32::MAX)) as u32)
        })
        .collect()
}

/// One iteration of the `admit` tier: fill the engine with every chain
/// of the shared workload, then `churn` retire + re-admit rounds
/// cycling over the chains. Returns decisions served (deterministic for
/// a given workload and churn count).
fn admit_ops(set: &TaskSet, mode: AdmissionMode, churn: usize) -> u64 {
    let requests = admit_requests(set);
    let mut state = AdmissionState::new(set.num_processors(), AdmissionConfig::new(mode));
    for req in &requests {
        state.admit(req.clone());
    }
    for round in 0..churn {
        let id = (round % requests.len()) as u64;
        if state.retire(id).is_ok() {
            state.admit(requests[id as usize].clone());
        }
    }
    let stats = state.stats();
    stats.decisions + stats.retired
}

/// The shared benchmark task set (§5.1 workload, random phases).
pub fn bench_task_set() -> TaskSet {
    let mut rng = StdRng::seed_from_u64(WORKLOAD_SEED);
    generate(
        &WorkloadSpec::paper(WORKLOAD_TASKS, WORKLOAD_UTILIZATION).with_random_phases(),
        &mut rng,
    )
    .expect("paper spec generates")
}

/// Runs the full suite: every protocol × every scenario, one untimed
/// warmup then `iterations` timed runs per cell. `smoke` shrinks the
/// instance count and iteration count for CI (the numbers are then only
/// a crash canary, not a baseline). Equivalent to
/// [`run_suite_opts`]`(smoke, false)`.
pub fn run_suite(smoke: bool) -> BenchReport {
    run_suite_opts(smoke, false)
}

/// [`run_suite`] with an option: when `profile` is set, each cell runs
/// once more under the engine's wall-clock self-profiler (see
/// `rtsync_sim::perf`) and the resulting [`EngineProfile`] rides along
/// in the cell — the profiled run is *extra* and never part of the
/// timed iterations, so profiling cannot perturb the throughput numbers.
pub fn run_suite_opts(smoke: bool, profile: bool) -> BenchReport {
    let (instances, iterations) = if smoke { (8, 1) } else { (50, 5) };
    let set = bench_task_set();
    let mut results = Vec::new();
    for protocol in Protocol::ALL {
        for scenario in SCENARIOS {
            if scenario == "admit" {
                // The admission tier measures the engine, not the
                // simulator: events are admit/retire decisions.
                let mode = match protocol {
                    Protocol::DirectSync => AdmissionMode::DirectSync,
                    _ => AdmissionMode::PmFamily,
                };
                let churn = instances as usize * 10;
                let events_per_iter = admit_ops(&set, mode, churn);
                let mut iter_secs = Vec::with_capacity(iterations as usize);
                for _ in 0..iterations {
                    let start = Instant::now();
                    let ops = admit_ops(&set, mode, churn);
                    iter_secs.push(start.elapsed().as_secs_f64());
                    assert_eq!(
                        ops, events_per_iter,
                        "admission engine must be deterministic across iterations"
                    );
                }
                let elapsed_secs: f64 = iter_secs.iter().sum();
                let best_secs = iter_secs.iter().cloned().fold(f64::INFINITY, f64::min);
                let total_events = events_per_iter * u64::from(iterations);
                results.push(BenchResult {
                    protocol: protocol.tag(),
                    scenario,
                    iterations,
                    events_per_iter,
                    elapsed_secs,
                    events_per_sec: total_events as f64 / elapsed_secs.max(1e-9),
                    iter_secs,
                    best_events_per_sec: events_per_iter as f64 / best_secs.max(1e-9),
                    profile: None,
                });
                continue;
            }
            let cfg = cell_config(protocol, scenario, instances);
            // Warmup: touches the page cache and verifies the cell runs.
            let events_per_iter = simulate(&set, &cfg)
                .expect("benchmark cell simulates")
                .events;
            let mut iter_secs = Vec::with_capacity(iterations as usize);
            for _ in 0..iterations {
                let start = Instant::now();
                let out = simulate(&set, &cfg).expect("benchmark cell simulates");
                iter_secs.push(start.elapsed().as_secs_f64());
                assert_eq!(
                    out.events, events_per_iter,
                    "simulator must be deterministic across iterations"
                );
            }
            let elapsed_secs: f64 = iter_secs.iter().sum();
            let best_secs = iter_secs.iter().cloned().fold(f64::INFINITY, f64::min);
            let total_events = events_per_iter * u64::from(iterations);
            let cell_profile = profile.then(|| {
                simulate_profiled(&set, &cfg)
                    .expect("benchmark cell simulates")
                    .1
            });
            results.push(BenchResult {
                protocol: protocol.tag(),
                scenario,
                iterations,
                events_per_iter,
                elapsed_secs,
                events_per_sec: total_events as f64 / elapsed_secs.max(1e-9),
                iter_secs,
                best_events_per_sec: events_per_iter as f64 / best_secs.max(1e-9),
                profile: cell_profile,
            });
        }
    }
    BenchReport {
        smoke,
        instances,
        provenance: Provenance::collect(),
        results,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_suite_runs_every_cell_and_serializes() {
        let report = run_suite(true);
        assert_eq!(report.results.len(), Protocol::ALL.len() * SCENARIOS.len());
        for r in &report.results {
            assert!(
                r.events_per_iter > 0,
                "{}/{} ran no events",
                r.protocol,
                r.scenario
            );
            assert!(r.events_per_sec > 0.0);
            assert_eq!(r.iter_secs.len(), r.iterations as usize);
            // Best-of-N throughput can't be slower than the mean.
            assert!(r.best_events_per_sec >= r.events_per_sec * 0.999);
            assert!(r.profile.is_none());
        }
        // The admit tier ran for every protocol, and the PM-family
        // protocols (PM, MPM, RG) share one engine mode, so they serve
        // identical decision counts.
        let admit: Vec<&BenchResult> = report
            .results
            .iter()
            .filter(|r| r.scenario == "admit")
            .collect();
        assert_eq!(admit.len(), Protocol::ALL.len());
        let pm_family: Vec<u64> = admit
            .iter()
            .filter(|r| r.protocol != "DS")
            .map(|r| r.events_per_iter)
            .collect();
        assert!(pm_family.windows(2).all(|w| w[0] == w[1]));
        let json = report.to_json();
        assert!(json.starts_with("{\n  \"schema\": \"rtsync-bench-v2\""));
        assert!(json.contains("\"provenance\""));
        assert!(json.contains("\"best_events_per_sec\""));
        assert_eq!(json.matches("\"protocol\"").count(), report.results.len());
        // Balanced braces/brackets as a cheap well-formedness check.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        // The hand-rolled writer parses with the hand-rolled reader.
        let parsed = json::parse(&json).unwrap();
        assert_eq!(
            parsed.get("schema").unwrap().as_str(),
            Some("rtsync-bench-v2")
        );
    }

    #[test]
    fn provenance_is_populated_and_timestamps_render() {
        let p = Provenance::collect();
        assert!(!p.git.is_empty());
        assert!(!p.host.is_empty());
        assert!(p.parallelism >= 1);
        assert_eq!(p.seed, WORKLOAD_SEED);
        assert_eq!(utc_string(0), "1970-01-01T00:00:00Z");
        assert_eq!(utc_string(951_867_228), "2000-02-29T23:33:48Z");
        assert!(p.timestamp_utc.ends_with('Z') && p.timestamp_utc.len() == 20);
    }
}
