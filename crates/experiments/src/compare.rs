//! Side-by-side protocol comparison for one system: the analysis bounds
//! and simulated statistics of every protocol in a single table — the
//! summary a system designer choosing a synchronization protocol wants.

use std::fmt;

use rtsync_core::analysis::sa_ds::analyze_ds;
use rtsync_core::analysis::sa_pm::analyze_pm;
use rtsync_core::analysis::AnalysisConfig;
use rtsync_core::protocol::Protocol;
use rtsync_core::task::{TaskId, TaskSet};
use rtsync_core::time::Dur;
use rtsync_sim::engine::{simulate, SimConfig, SimulateError};

/// Simulated statistics of one task under one protocol.
#[derive(Clone, Copy, Debug)]
pub struct SimCell {
    /// Mean end-to-end response.
    pub avg: f64,
    /// Worst observed end-to-end response.
    pub max: Dur,
    /// p99 end-to-end response (histogram upper bound).
    pub p99: Dur,
    /// Deadline misses.
    pub misses: u64,
}

/// One task's comparison row.
#[derive(Clone, Debug)]
pub struct CompareRow {
    /// The task.
    pub task: TaskId,
    /// Its relative deadline.
    pub deadline: Dur,
    /// SA/PM bound (valid for PM, MPM and RG).
    pub pm_bound: Dur,
    /// SA/DS bound, `None` on the paper's failure outcome.
    pub ds_bound: Option<Dur>,
    /// Simulated statistics per protocol, in [`Protocol::ALL`] order.
    pub sim: [Option<SimCell>; 4],
}

/// A full comparison for one system.
#[derive(Clone, Debug)]
pub struct ProtocolComparison {
    rows: Vec<CompareRow>,
    instances: u64,
}

impl ProtocolComparison {
    /// Per-task rows, indexed by [`TaskId::index`].
    pub fn rows(&self) -> &[CompareRow] {
        &self.rows
    }
}

/// Analyzes and simulates `set` under every protocol.
///
/// # Errors
///
/// Propagates a [`SimulateError`] if PM/MPM cannot be simulated (SA/PM
/// analysis failure); the DS *analysis* failing is an expected outcome and
/// shows up as `ds_bound: None`.
pub fn compare(
    set: &TaskSet,
    instances: u64,
    cfg: &AnalysisConfig,
) -> Result<ProtocolComparison, SimulateError> {
    let pm = analyze_pm(set, cfg)?;
    let ds = analyze_ds(set, cfg).ok();
    let mut sims = Vec::new();
    for protocol in Protocol::ALL {
        sims.push(simulate(
            set,
            &SimConfig::new(protocol).with_instances(instances),
        )?);
    }
    let rows = set
        .tasks()
        .iter()
        .map(|task| {
            let mut sim = [None; 4];
            for (k, outcome) in sims.iter().enumerate() {
                let s = outcome.metrics.task(task.id());
                sim[k] = match (s.avg_eer(), s.max_eer(), s.eer_quantile(0.99)) {
                    (Some(avg), Some(max), Some(p99)) => Some(SimCell {
                        avg,
                        max,
                        p99,
                        misses: s.deadline_misses(),
                    }),
                    _ => None,
                };
            }
            CompareRow {
                task: task.id(),
                deadline: task.deadline(),
                pm_bound: pm.task_bound(task.id()),
                ds_bound: ds.as_ref().map(|b| b.task_bound(task.id())),
                sim,
            }
        })
        .collect();
    Ok(ProtocolComparison { rows, instances })
}

impl fmt::Display for ProtocolComparison {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "protocol comparison ({} end-to-end instances per task)",
            self.instances
        )?;
        writeln!(
            f,
            "{:<6}{:>10}{:>12}{:>12}  avg EER per protocol (DS | PM | MPM | RG)",
            "task", "deadline", "DS bound", "PM/RG bound"
        )?;
        for row in &self.rows {
            let ds_bound = row
                .ds_bound
                .map(|d| d.ticks().to_string())
                .unwrap_or_else(|| "infinite".into());
            let avgs: Vec<String> = row
                .sim
                .iter()
                .map(|c| c.map_or("-".into(), |c| format!("{:.0}", c.avg)))
                .collect();
            writeln!(
                f,
                "{:<6}{:>10}{:>12}{:>12}  {}",
                row.task.to_string(),
                row.deadline.ticks(),
                ds_bound,
                row.pm_bound.ticks(),
                avgs.join(" | ")
            )?;
        }
        writeln!(f)?;
        writeln!(
            f,
            "      worst observed | p99 | misses per protocol (same order)"
        )?;
        for row in &self.rows {
            let cells: Vec<String> = row
                .sim
                .iter()
                .map(|c| {
                    c.map_or("-".into(), |c| {
                        format!("{}/{}/{}", c.max.ticks(), c.p99.ticks(), c.misses)
                    })
                })
                .collect();
            writeln!(f, "{:<6}{}", row.task.to_string(), cells.join("  "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtsync_core::examples::example2;

    #[test]
    fn compare_covers_all_protocols_and_bounds() {
        let set = example2();
        let cmp = compare(&set, 20, &AnalysisConfig::default()).unwrap();
        assert_eq!(cmp.rows().len(), 3);
        let t2 = &cmp.rows()[2]; // the paper's T3
        assert_eq!(t2.pm_bound, Dur::from_ticks(5));
        assert_eq!(t2.ds_bound, Some(Dur::from_ticks(8)));
        for cell in t2.sim.iter() {
            let cell = cell.expect("all protocols simulated");
            assert!(cell.avg > 0.0);
            assert!(cell.max >= Dur::from_ticks(4));
        }
        // Under DS the paper's T3 misses; under the others it does not.
        assert!(t2.sim[0].unwrap().misses > 0);
        for k in 1..4 {
            assert_eq!(t2.sim[k].unwrap().misses, 0, "protocol {k}");
        }
    }

    #[test]
    fn unanalyzable_system_is_a_simulate_error() {
        use rtsync_core::task::{Priority, TaskSet};
        // Overloaded processor: SA/PM fails, so PM cannot be simulated.
        let set = TaskSet::builder(1)
            .task(Dur::from_ticks(4))
            .subtask(0, Dur::from_ticks(3), Priority::new(0))
            .finish_task()
            .task(Dur::from_ticks(4))
            .subtask(0, Dur::from_ticks(3), Priority::new(1))
            .finish_task()
            .build()
            .unwrap();
        assert!(compare(&set, 5, &AnalysisConfig::default()).is_err());
    }

    #[test]
    fn display_renders_rows_and_failure() {
        let set = example2();
        let cmp = compare(&set, 10, &AnalysisConfig::default()).unwrap();
        let text = cmp.to_string();
        assert!(text.contains("protocol comparison"));
        assert!(text.contains("T2"));
        assert!(text.contains("DS | PM | MPM | RG"));
    }
}
