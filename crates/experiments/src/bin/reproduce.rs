//! `reproduce` — regenerate the paper's figures from the command line.
//!
//! ```text
//! reproduce all                      # every figure, small default study
//! reproduce fig3 fig7                # just the schedule traces
//! reproduce fig12 --systems 1000     # the paper-scale failure-rate study
//! reproduce study --out results/     # figs 12-16 + CSVs under results/
//! ```
//!
//! Options: `--systems N` (per configuration; paper used 1000),
//! `--instances I` (end-to-end instances per task in the average-EER
//! simulations), `--seed S`, `--threads T`, `--out DIR` (write CSVs).

use std::collections::BTreeSet;
use std::path::PathBuf;
use std::process::ExitCode;

use rtsync_experiments::figures::{custom_grid, figure_grid, Figure};
use rtsync_experiments::robustness::{self, RobustnessConfig};
use rtsync_experiments::study::{run_study, StudyConfig};
use rtsync_experiments::traces::TraceFigure;

struct Options {
    trace_figures: BTreeSet<u32>,
    study_figures: BTreeSet<u32>,
    run_rule2_ablation: bool,
    run_distribution_ablation: bool,
    run_tightness: bool,
    run_exact: bool,
    run_tails: bool,
    run_contention: bool,
    run_policies: bool,
    run_convergence: bool,
    run_robustness: bool,
    run_sync: bool,
    obs: bool,
    cfg: StudyConfig,
    out_dir: Option<PathBuf>,
}

fn parse_args() -> Result<Options, String> {
    let mut trace_figures = BTreeSet::new();
    let mut study_figures = BTreeSet::new();
    let mut run_rule2_ablation = false;
    let mut run_distribution_ablation = false;
    let mut run_tightness = false;
    let mut run_exact = false;
    let mut run_tails = false;
    let mut run_contention = false;
    let mut run_policies = false;
    let mut run_convergence = false;
    let mut run_robustness = false;
    let mut run_sync = false;
    let mut obs = false;
    let mut cfg = StudyConfig::default();
    let mut out_dir = None;
    let mut saw_selector = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut grab = |name: &str| -> Result<String, String> {
            args.next().ok_or(format!("{name} needs a value"))
        };
        match arg.as_str() {
            "all" => {
                saw_selector = true;
                trace_figures.extend([3, 5, 6, 7]);
                study_figures.extend([12, 13, 14, 15, 16]);
            }
            "traces" => {
                saw_selector = true;
                trace_figures.extend([3, 5, 6, 7]);
            }
            "study" => {
                saw_selector = true;
                study_figures.extend([12, 13, 14, 15, 16]);
            }
            "fig3" => {
                saw_selector = true;
                trace_figures.insert(3);
            }
            "fig5" => {
                saw_selector = true;
                trace_figures.insert(5);
            }
            "fig6" => {
                saw_selector = true;
                trace_figures.insert(6);
            }
            "fig7" => {
                saw_selector = true;
                trace_figures.insert(7);
            }
            "fig12" | "fig13" | "fig14" | "fig15" | "fig16" => {
                saw_selector = true;
                study_figures.insert(arg[3..].parse().expect("matched digits"));
            }
            "rule2" => {
                saw_selector = true;
                run_rule2_ablation = true;
            }
            "distributions" => {
                saw_selector = true;
                run_distribution_ablation = true;
            }
            "tightness" => {
                saw_selector = true;
                run_tightness = true;
            }
            "exact" => {
                saw_selector = true;
                run_exact = true;
            }
            "tails" => {
                saw_selector = true;
                run_tails = true;
            }
            "contention" => {
                saw_selector = true;
                run_contention = true;
            }
            "policies" => {
                saw_selector = true;
                run_policies = true;
            }
            "convergence" => {
                saw_selector = true;
                run_convergence = true;
            }
            "robustness" => {
                saw_selector = true;
                run_robustness = true;
            }
            "sync" => {
                saw_selector = true;
                run_sync = true;
            }
            "ablations" => {
                saw_selector = true;
                run_rule2_ablation = true;
                run_distribution_ablation = true;
                run_tightness = true;
                run_contention = true;
                run_policies = true;
            }
            "--systems" => {
                cfg.systems_per_config = grab("--systems")?
                    .parse()
                    .map_err(|e| format!("--systems: {e}"))?;
            }
            "--instances" => {
                cfg.instances_per_task = grab("--instances")?
                    .parse()
                    .map_err(|e| format!("--instances: {e}"))?;
            }
            "--seed" => {
                cfg.seed = grab("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--threads" => {
                cfg.threads = grab("--threads")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?;
            }
            "--out" => out_dir = Some(PathBuf::from(grab("--out")?)),
            "--obs" => obs = true,
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    if !saw_selector {
        trace_figures.extend([3, 5, 6, 7]);
        study_figures.extend([12, 13, 14, 15, 16]);
    }
    Ok(Options {
        trace_figures,
        study_figures,
        run_rule2_ablation,
        run_distribution_ablation,
        run_tightness,
        run_exact,
        run_tails,
        run_contention,
        run_policies,
        run_convergence,
        run_robustness,
        run_sync,
        obs,
        cfg,
        out_dir,
    })
}

/// `git describe` of the working tree, for run-log provenance.
fn git_describe() -> String {
    std::process::Command::new("git")
        .args(["describe", "--always", "--dirty"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Accumulates the provenance log written to `results/reproduce_run.txt`:
/// seed, git revision, and wall-clock / event-throughput per study.
struct RunLog {
    lines: Vec<String>,
}

impl RunLog {
    fn new(cfg: &StudyConfig) -> RunLog {
        RunLog {
            lines: vec![
                format!("command: reproduce {}", {
                    let args: Vec<String> = std::env::args().skip(1).collect();
                    args.join(" ")
                }),
                format!("git: {}", git_describe()),
                format!("seed: {:#x}", cfg.seed),
                format!(
                    "config: {} systems/config, {} instances/task, {} threads",
                    cfg.systems_per_config, cfg.instances_per_task, cfg.threads
                ),
            ],
        }
    }

    /// Records one study section: wall-clock, and events/sec when the
    /// section reports simulated-event totals (`events > 0`).
    fn study(&mut self, name: &str, elapsed: std::time::Duration, events: u64) {
        let secs = elapsed.as_secs_f64();
        let mut line = format!("{name}: {secs:.2}s");
        if events > 0 {
            line.push_str(&format!(
                ", {events} events ({:.0} events/s)",
                events as f64 / secs.max(1e-9)
            ));
        }
        self.lines.push(line);
    }

    fn render(&self) -> String {
        let mut out = self.lines.join("\n");
        out.push('\n');
        out
    }
}

fn write_csv(out_dir: &Option<PathBuf>, name: &str, content: &str) -> Result<(), String> {
    let Some(dir) = out_dir else {
        return Ok(());
    };
    std::fs::create_dir_all(dir).map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
    let path = dir.join(name);
    std::fs::write(&path, content).map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    println!("wrote {}", path.display());
    Ok(())
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!(
                "usage: reproduce [all|traces|study|fig3..fig7|fig12..fig16|rule2|distributions|tightness|exact|tails|contention|policies|convergence|robustness|sync|ablations]... \
                 [--systems N] [--instances I] [--seed S] [--threads T] [--out DIR] [--obs]"
            );
            return ExitCode::FAILURE;
        }
    };
    let mut run_log = RunLog::new(&opts.cfg);

    for fig in TraceFigure::ALL {
        if opts.trace_figures.contains(&fig.number()) {
            println!("{}", fig.render());
        }
    }

    if opts.run_tails {
        println!("running the tail-latency study (p99 EER ratios; beyond the paper)…");
        let started = std::time::Instant::now();
        let outcomes = run_study(&opts.cfg);
        run_log.study(
            "tails",
            started.elapsed(),
            outcomes.iter().map(|o| o.events).sum(),
        );
        for (name, file, extract) in [
            (
                "p99-EER ratio PM/DS",
                "tails_pm_ds_p99.csv",
                (|o: &rtsync_experiments::ConfigOutcome| o.pm_ds_p99_mean)
                    as fn(&rtsync_experiments::ConfigOutcome) -> f64,
            ),
            ("p99-EER ratio RG/DS", "tails_rg_ds_p99.csv", |o| {
                o.rg_ds_p99_mean
            }),
        ] {
            let grid = custom_grid(name, &outcomes, extract);
            println!("{grid}");
            if let Err(e) = write_csv(&opts.out_dir, file, &grid.to_csv()) {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    if !opts.study_figures.is_empty() {
        println!(
            "running the simulation study: {} configurations x {} systems, \
             {} instances/task, seed {} ({} threads)",
            opts.cfg.n_values.len() * opts.cfg.u_values.len(),
            opts.cfg.systems_per_config,
            opts.cfg.instances_per_task,
            opts.cfg.seed,
            opts.cfg.threads,
        );
        let started = std::time::Instant::now();
        let outcomes = run_study(&opts.cfg);
        run_log.study(
            "study",
            started.elapsed(),
            outcomes.iter().map(|o| o.events).sum(),
        );
        // The paper: "the 90% confidence intervals are negligibly small".
        let max_ci = |f: fn(&rtsync_experiments::ConfigOutcome) -> f64| {
            outcomes
                .iter()
                .map(f)
                .filter(|v| v.is_finite())
                .fold(0.0f64, f64::max)
        };
        println!(
            "90% CI half-widths (max over the grid): PM/DS ±{:.3}, RG/DS ±{:.3}, bound ratio ±{:.3}\n",
            max_ci(|o| o.pm_ds_ci90),
            max_ci(|o| o.rg_ds_ci90),
            max_ci(|o| o.bound_ratio_ci90),
        );
        for fig in Figure::ALL {
            if !opts.study_figures.contains(&fig.number()) {
                continue;
            }
            let grid = figure_grid(fig, &outcomes);
            println!("{grid}");
            if let Err(e) = write_csv(
                &opts.out_dir,
                &format!("fig{}.csv", fig.number()),
                &grid.to_csv(),
            ) {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    if opts.run_rule2_ablation {
        println!("running the RG rule-2 ablation…");
        let grid = rtsync_experiments::ablation::rule2_ablation(&opts.cfg);
        println!("{grid}");
        if let Err(e) = write_csv(&opts.out_dir, "ablation_rule2.csv", &grid.to_csv()) {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    }

    if opts.run_distribution_ablation {
        println!("running the period-distribution ablation…");
        for (i, grid) in rtsync_experiments::ablation::distribution_ablation(&opts.cfg)
            .iter()
            .enumerate()
        {
            println!("{grid}");
            if let Err(e) = write_csv(
                &opts.out_dir,
                &format!("ablation_distribution_{i}.csv"),
                &grid.to_csv(),
            ) {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    if opts.run_exact {
        use rtsync_core::analysis::sa_ds::analyze_ds;
        use rtsync_core::analysis::sa_pm::analyze_pm;
        use rtsync_core::examples::example2;
        use rtsync_core::protocol::Protocol;
        use rtsync_experiments::exact::{exact_worst_case, ExactConfig};
        println!("exhaustive phase search on Example 2 (full integer grid):");
        let set = example2();
        let cfg = ExactConfig {
            phase_steps: 0,
            instances_per_task: 12,
            max_combinations: 1_000,
        };
        let pm = analyze_pm(&set, &opts.cfg.analysis).expect("example 2 analyzes");
        let ds = analyze_ds(&set, &opts.cfg.analysis).expect("example 2 analyzes");
        for protocol in [
            Protocol::DirectSync,
            Protocol::ReleaseGuard,
            Protocol::PhaseModification,
        ] {
            let exact = exact_worst_case(&set, protocol, &cfg).expect("example 2 simulates");
            println!("  {}:", protocol.tag());
            for (i, w) in exact.iter().enumerate() {
                let bound = match protocol {
                    Protocol::DirectSync => ds.task_bounds()[i],
                    _ => pm.task_bounds()[i],
                };
                println!(
                    "    T{i}: exact worst observed {} vs analyzed bound {}{}",
                    w.ticks(),
                    bound.ticks(),
                    if *w == bound { "  (tight)" } else { "" }
                );
            }
        }
    }

    if opts.run_contention {
        println!("running the resource-contention ablation…");
        for (i, grid) in rtsync_experiments::ablation::contention_ablation(&opts.cfg, &[0.2, 0.5])
            .iter()
            .enumerate()
        {
            println!("{grid}");
            if let Err(e) = write_csv(
                &opts.out_dir,
                &format!("ablation_contention_{i}.csv"),
                &grid.to_csv(),
            ) {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    if opts.run_policies {
        println!("running the priority-policy (deadline split) ablation…");
        for (i, grid) in rtsync_experiments::ablation::priority_policy_ablation(&opts.cfg)
            .iter()
            .enumerate()
        {
            println!("{grid}");
            if let Err(e) = write_csv(
                &opts.out_dir,
                &format!("ablation_policy_{i}.csv"),
                &grid.to_csv(),
            ) {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    if opts.run_robustness {
        println!("running the nonideal-conditions robustness grid (drift × latency)…");
        let rcfg = RobustnessConfig {
            systems_per_config: opts.cfg.systems_per_config.min(20),
            seed: opts.cfg.seed,
            instances_per_task: opts.cfg.instances_per_task,
            threads: opts.cfg.threads,
            analysis: opts.cfg.analysis,
            ..RobustnessConfig::default()
        };
        println!(
            "  {} drift values x {} latency values x {} systems, seed {} ({} threads)",
            rcfg.drift_ppm_values.len(),
            rcfg.latency_values.len(),
            rcfg.systems_per_config,
            rcfg.seed,
            rcfg.threads,
        );
        let started = std::time::Instant::now();
        let cells = robustness::run_robustness(&rcfg);
        run_log.study("robustness", started.elapsed(), 0);
        println!("{}", robustness::render(&cells));
        // The robustness grid always records its results (default:
        // `results/`), so the recorded-run command line in EXPERIMENTS.md
        // reproduces the committed CSVs.
        let dir = opts
            .out_dir
            .clone()
            .or_else(|| Some(PathBuf::from("results")));
        if let Err(e) = write_csv(&dir, "robustness.csv", &robustness::to_csv(&cells)) {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
        for protocol in rtsync_core::protocol::Protocol::ALL {
            let name = format!("robustness_inflation_{}.csv", protocol.tag().to_lowercase());
            let csv = robustness::inflation_matrix_csv(&cells, protocol);
            if let Err(e) = write_csv(&dir, &name, &csv) {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    if opts.run_sync {
        use rtsync_experiments::sync::{self, SyncStudyConfig};
        println!("running the clock-synchronization study (drift × latency × sync-period)…");
        let scfg = SyncStudyConfig {
            systems_per_config: opts.cfg.systems_per_config.min(10),
            seed: opts.cfg.seed,
            threads: opts.cfg.threads,
            analysis: opts.cfg.analysis,
            ..SyncStudyConfig::default()
        };
        println!(
            "  {} drift values x {} latency values x {} periods x {} systems \
             ({} simulation runs, seed {}, {} threads)",
            scfg.drift_ppm_values.len(),
            scfg.latency_values.len(),
            scfg.sync_periods.len(),
            scfg.systems_per_config,
            scfg.total_runs(),
            scfg.seed,
            scfg.threads,
        );
        let started = std::time::Instant::now();
        let outcome = sync::run_sync_study(&scfg);
        run_log.study("sync", started.elapsed(), 0);
        println!("{}", sync::render(&outcome));
        // Like the robustness grid, the sync study always records its
        // results so EXPERIMENTS.md's recorded command reproduces the
        // committed CSVs.
        let dir = opts
            .out_dir
            .clone()
            .or_else(|| Some(PathBuf::from("results")));
        if let Err(e) = write_csv(&dir, "sync_grid.csv", &sync::grid_csv(&outcome)) {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
        if let Err(e) = write_csv(&dir, "sync_summary.csv", &sync::summary_csv(&outcome)) {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
        // The PM-synced companion to robustness_inflation_pm.csv: same
        // grid, same systems and seeds, PM with sync at a feasible
        // period (10k ticks: 5% drift accumulates only ~500 ticks of
        // error between rounds, against task periods of 100k–10M ticks).
        println!("re-running the robustness PM rows with sync attached…");
        let rcfg = RobustnessConfig {
            systems_per_config: opts.cfg.systems_per_config.min(10),
            seed: opts.cfg.seed,
            instances_per_task: opts.cfg.instances_per_task,
            threads: opts.cfg.threads,
            analysis: opts.cfg.analysis,
            ..RobustnessConfig::default()
        };
        let started = std::time::Instant::now();
        let csv = sync::robustness_pm_synced_csv(&rcfg, 10_000, rtsync_sim::SyncPolicy::Step);
        run_log.study("robustness_pm_synced", started.elapsed(), 0);
        print!("PM inflation matrix, synced (period 10000, step policy):\n{csv}");
        if let Err(e) = write_csv(&dir, "robustness_pm_synced.csv", &csv) {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    }

    if opts.run_convergence {
        println!("running the ratio-convergence study…");
        let started = std::time::Instant::now();
        for (n, u) in [(3usize, 0.6f64), (6, 0.8)] {
            let rows = rtsync_experiments::convergence::convergence_study(
                n,
                u,
                &opts.cfg,
                &[5, 10, 20, 40, 80],
            );
            println!("{}", rtsync_experiments::convergence::render(n, u, &rows));
        }
        run_log.study("convergence", started.elapsed(), 0);
        if opts.obs {
            // Analysis-convergence instrumentation: per-system SA/PM
            // iteration counts and SA/DS sweep trajectories, as CSV.
            println!("running the analysis-convergence study (--obs)…");
            let mut all = Vec::new();
            for (n, u) in [(3usize, 0.6f64), (6, 0.8)] {
                let rows =
                    rtsync_experiments::convergence::analysis_convergence_study(n, u, &opts.cfg);
                print!(
                    "{}",
                    rtsync_experiments::convergence::render_analysis(&rows)
                );
                all.extend(rows);
            }
            let dir = opts
                .out_dir
                .clone()
                .or_else(|| Some(PathBuf::from("results")));
            if let Err(e) = write_csv(
                &dir,
                "convergence_obs.csv",
                &rtsync_experiments::convergence::analysis_convergence_csv(&all),
            ) {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    if opts.run_tightness {
        println!("running the bound-tightness study…");
        let mut rows = Vec::new();
        for &n in &opts.cfg.n_values {
            for &u in &opts.cfg.u_values {
                rows.push(rtsync_experiments::tightness::tightness_config(
                    n, u, &opts.cfg,
                ));
            }
        }
        println!("{}", rtsync_experiments::tightness::render(&rows));
    }

    // Provenance run log: what ran, from which revision, how fast.
    let dir = opts
        .out_dir
        .clone()
        .or_else(|| Some(PathBuf::from("results")));
    if let Err(e) = write_csv(&dir, "reproduce_run.txt", &run_log.render()) {
        eprintln!("error: {e}");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
