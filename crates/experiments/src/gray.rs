//! The gray-failure campaign: processor slowdowns × GC-pause stalls ×
//! degraded links, swept as a grid with a fixed-timeout and an adaptive
//! φ-accrual failure-detector arm over the *same* seeded conditions.
//!
//! Each run draws a synthetic §5.1 system (4 processors), lays a seeded
//! gray schedule over it — slow windows stretching execution by the
//! cell's factor, full-stop stalls, lossy/laggy link windows — and
//! simulates it twice with heartbeat failure detection riding the acked
//! endpoint transport: once under the fixed `suspect_after`/`dead_after`
//! cliff and once under φ-accrual with the `Degraded` intermediate
//! state. No processor ever actually crashes, so *every* Dead verdict
//! in the campaign is false by ground truth. The campaign reports, per
//! `(slow factor, stall span, link drop)` cell,
//!
//! * **verdict accuracy** — false-dead and false-suspect counts per arm,
//!   with the adaptive arm's Degraded verdicts scored against gray
//!   ground truth (`gray_hits`). The headline is the slowdown-only
//!   column: a merely-slow peer false-deads the fixed cliff on every
//!   stretched heartbeat gap while φ re-centers on the observed
//!   inter-arrival mean and holds at Degraded;
//! * **EER inflation** — mean per-task `avg-EER(gray) / avg-EER(benign)`
//!   per arm against a same-system, same-conditions run with every gray
//!   knob off — the cost of the degradation itself plus whatever the
//!   detector's false verdicts (forced releases, premature cadences)
//!   add on top;
//! * **invariant verdicts** — the [`InvariantObserver`] battery on both
//!   arms. Clock-independent safety invariants (precedence, signal
//!   conservation, down-processor silence) are fatal in every cell;
//!   load-dependent kinds (backlog growth, guard spacing) are recorded
//!   but non-fatal in gray cells, where a 16x slowdown legitimately
//!   piles up backlog.
//!
//! Like [`chaos`](crate::chaos) and [`adversary`](crate::adversary),
//! the campaign is embarrassingly parallel over runs and bit-for-bit
//! deterministic for a given seed regardless of the thread count.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::seeding::job_seed;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rtsync_core::protocol::Protocol;
use rtsync_core::time::Dur;
use rtsync_sim::engine::{simulate, simulate_observed, SimConfig};
use rtsync_sim::nonideal::{eer_inflation, ChannelModel};
use rtsync_sim::{
    DetectorConfig, FaultConfig, GrayConfig, InvariantKind, InvariantObserver, InvariantViolation,
    LinkSchedule, PhiConfig, SlowSchedule, StallSchedule, TransportConfig,
};
use rtsync_workload::{generate, WorkloadSpec};

/// Gray-campaign parameters.
#[derive(Clone, Debug)]
pub struct GrayStudyConfig {
    /// Execution-rate divisors to sweep; `1` keeps processors at nominal
    /// speed. `8` stays below φ's dead threshold (9.2x the observed
    /// mean) while sailing past the fixed 6-period cliff; `16` crosses
    /// even φ's warmup deadline once per window — the adaptive arm's own
    /// cliff, documented rather than hidden.
    pub slow_factors: Vec<u32>,
    /// Stall spans (ticks) to sweep; `0` disables stalls. Spans beyond
    /// both arms' death thresholds false-dead *both* detectors — a long
    /// enough freeze is indistinguishable from death.
    pub stall_spans: Vec<i64>,
    /// Link drop probabilities (permille) to sweep; `0` disables link
    /// degradation windows.
    pub link_drops: Vec<u32>,
    /// Runs per grid cell; the protocol rotates over the run index, so 4
    /// runs cover DS/PM/MPM/RG.
    pub runs_per_cell: usize,
    /// Subtasks per task of the synthetic systems.
    pub n: usize,
    /// Per-processor utilization of the synthetic systems.
    pub u: f64,
    /// End-to-end instances simulated per task.
    pub instances_per_task: u64,
    /// Heartbeat broadcast period (ticks).
    pub heartbeat: i64,
    /// Upper bound of the uniform channel latency (ticks).
    pub latency: i64,
    /// Span of every slow window (ticks).
    pub slow_span: i64,
    /// Mean healthy time between slow windows (ticks).
    pub slow_mean_healthy: i64,
    /// Mean healthy time between stalls (ticks).
    pub stall_mean_healthy: i64,
    /// Span of every link-degradation window (ticks).
    pub link_span: i64,
    /// Mean healthy time between link windows (ticks).
    pub link_mean_healthy: i64,
    /// Deterministic extra latency inside link windows (ticks).
    pub link_extra_latency: i64,
    /// Per-frame jitter bound inside link windows (ticks).
    pub link_jitter: i64,
    /// Consecutive deadline misses before the watchdog trips.
    pub watchdog_misses: u32,
    /// Master seed; system and condition seeds derive from it.
    pub seed: u64,
    /// Worker threads.
    pub threads: usize,
}

impl Default for GrayStudyConfig {
    fn default() -> GrayStudyConfig {
        GrayStudyConfig {
            slow_factors: vec![1, 8, 16],
            stall_spans: vec![0, 40_000, 400_000],
            link_drops: vec![0, 200, 500],
            runs_per_cell: 4,
            n: 3,
            u: 0.6,
            instances_per_task: 10,
            heartbeat: 10_000,
            latency: 1_000,
            slow_span: 400_000,
            slow_mean_healthy: 20_000_000,
            stall_mean_healthy: 25_000_000,
            link_span: 1_000_000,
            link_mean_healthy: 10_000_000,
            link_extra_latency: 2_000,
            link_jitter: 1_000,
            watchdog_misses: 4,
            seed: 0x6EA7_FA11,
            threads: std::thread::available_parallelism().map_or(4, |n| n.get()),
        }
    }
}

impl GrayStudyConfig {
    /// A reduced campaign for CI smoke jobs and tests: the same three
    /// axes with fewer levels and runs.
    pub fn smoke(total_runs: usize) -> GrayStudyConfig {
        let cfg = GrayStudyConfig {
            slow_factors: vec![1, 8],
            stall_spans: vec![0, 400_000],
            link_drops: vec![0, 500],
            instances_per_task: 6,
            ..GrayStudyConfig::default()
        };
        let cells = cfg.slow_factors.len() * cfg.stall_spans.len() * cfg.link_drops.len();
        GrayStudyConfig {
            runs_per_cell: total_runs.div_ceil(cells).max(1),
            ..cfg
        }
    }

    /// Total runs in the campaign (each run simulates both detector arms
    /// plus one benign baseline).
    pub fn total_runs(&self) -> usize {
        self.slow_factors.len()
            * self.stall_spans.len()
            * self.link_drops.len()
            * self.runs_per_cell
    }
}

/// One grid coordinate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct CellSpec {
    slow_factor: u32,
    stall_span: i64,
    link_drop: u32,
}

impl CellSpec {
    /// Slowdowns only — the headline column: no stall or link window
    /// ever silences a peer outright, so a dead verdict has no excuse.
    fn slowdown_only(&self) -> bool {
        self.slow_factor > 1 && self.stall_span == 0 && self.link_drop == 0
    }
}

/// One detector arm's counters out of one run.
#[derive(Clone, Copy, Debug, Default)]
pub struct ArmStats {
    /// Suspect verdicts.
    pub suspects: u64,
    /// Suspect verdicts on an up peer.
    pub false_suspects: u64,
    /// Dead verdicts.
    pub deads: u64,
    /// Dead verdicts on an up peer (= all of them: nothing crashes).
    pub false_deads: u64,
    /// False deads whose subject was gray at the verdict instant.
    pub false_dead_gray: u64,
    /// Degraded verdicts (φ arm only).
    pub degradeds: u64,
    /// Degraded verdicts confirmed gray by ground truth (φ arm only).
    pub gray_hits: u64,
    /// Heartbeats held back from reviving a suspect by hysteresis.
    pub hysteresis_holds: u64,
    /// Suspect/Dead -> Alive revivals.
    pub revivals: u64,
    /// Successor instances force-released on a dead verdict.
    pub forced_releases: u64,
    /// Deadline-watchdog trips.
    pub watchdog_trips: u64,
    /// Mean per-task EER inflation over the benign twin (`NaN` when no
    /// task completed in both runs).
    pub mean_inflation: f64,
    /// `true` if the run stopped before resolving every instance.
    pub stalled: bool,
}

/// The verdict of one gray run (both arms over the same conditions).
#[derive(Clone, Debug)]
pub struct GrayVerdict {
    /// The protocol (rotates over the run index).
    pub protocol: Protocol,
    /// Execution-rate divisor of this run's cell.
    pub slow_factor: u32,
    /// Stall span of this run's cell (ticks, 0 = none).
    pub stall_span: i64,
    /// Link drop rate of this run's cell (permille, 0 = none).
    pub link_drop: u32,
    /// Run index within the cell.
    pub run_index: usize,
    /// Seed the synthetic system was generated from.
    pub system_seed: u64,
    /// Seed of the run's condition streams (channel, gray schedules).
    pub cond_seed: u64,
    /// The fixed suspect/dead-cliff arm.
    pub fixed: ArmStats,
    /// The adaptive φ-accrual arm.
    pub adaptive: ArmStats,
    /// Slow windows entered (adaptive arm's run).
    pub slowdowns: u64,
    /// Stalls entered (adaptive arm's run).
    pub stalls: u64,
    /// Link windows opened (adaptive arm's run).
    pub link_degrades: u64,
    /// Heartbeats dropped by degraded links (adaptive arm's run).
    pub gray_dropped_heartbeats: u64,
    /// Extra latency injected by degraded links (adaptive arm's run).
    pub gray_extra_latency_ticks: u64,
    /// Fixed-arm invariant violations.
    pub fixed_violations: Vec<InvariantViolation>,
    /// Adaptive-arm invariant violations.
    pub adaptive_violations: Vec<InvariantViolation>,
}

impl GrayVerdict {
    /// `true` when both arms upheld every clock-independent safety
    /// invariant. Load-dependent kinds (backlog growth under a 16x
    /// slowdown, guard spacing under degraded-mode slack) are recorded
    /// but non-fatal once any gray persona is armed.
    pub fn is_clean(&self) -> bool {
        let gray = self.slow_factor > 1 || self.stall_span > 0 || self.link_drop > 0;
        let load_dependent = [InvariantKind::UnboundedBacklog, InvariantKind::GuardSpacing];
        self.fixed_violations
            .iter()
            .chain(&self.adaptive_violations)
            .filter(|v| !gray || !load_dependent.contains(&v.kind))
            .count()
            == 0
    }
}

/// Aggregate of one `(slow factor, stall span, link drop)` cell.
#[derive(Clone, Debug)]
pub struct GrayCell {
    /// Execution-rate divisor.
    pub slow_factor: u32,
    /// Stall span (ticks).
    pub stall_span: i64,
    /// Link drop rate (permille).
    pub link_drop: u32,
    /// Whether this is a slowdown-only cell (the headline column).
    pub slowdown_only: bool,
    /// Runs aggregated.
    pub runs: usize,
    /// Fixed-arm false deads (every dead is false: nothing crashes).
    pub fixed_false_deads: u64,
    /// Fixed-arm false deads charged to gray ground truth.
    pub fixed_false_dead_gray: u64,
    /// Fixed-arm false suspects.
    pub fixed_false_suspects: u64,
    /// Fixed-arm forced releases.
    pub fixed_forced_releases: u64,
    /// Fixed-arm watchdog trips.
    pub fixed_watchdog_trips: u64,
    /// Adaptive-arm false deads.
    pub adaptive_false_deads: u64,
    /// Adaptive-arm false deads charged to gray ground truth.
    pub adaptive_false_dead_gray: u64,
    /// Adaptive-arm false suspects.
    pub adaptive_false_suspects: u64,
    /// Adaptive-arm Degraded verdicts.
    pub adaptive_degradeds: u64,
    /// Adaptive-arm Degraded verdicts confirmed gray.
    pub adaptive_gray_hits: u64,
    /// Adaptive-arm forced releases.
    pub adaptive_forced_releases: u64,
    /// Adaptive-arm watchdog trips.
    pub adaptive_watchdog_trips: u64,
    /// Slow windows entered across the cell's runs.
    pub slowdowns: u64,
    /// Stalls entered.
    pub stalls: u64,
    /// Link windows opened.
    pub link_degrades: u64,
    /// Mean of per-run mean EER inflation, fixed arm (finite runs only).
    pub fixed_inflation: f64,
    /// Mean of per-run mean EER inflation, adaptive arm.
    pub adaptive_inflation: f64,
    /// Runs (either arm) that stopped before the instance target.
    pub stalled_runs: usize,
    /// Total invariant violations recorded across both arms.
    pub invariant_violations: usize,
}

impl GrayCell {
    /// Fixed-arm false deads per run.
    pub fn fixed_false_dead_rate(&self) -> f64 {
        self.fixed_false_deads as f64 / self.runs.max(1) as f64
    }

    /// Adaptive-arm false deads per run.
    pub fn adaptive_false_dead_rate(&self) -> f64 {
        self.adaptive_false_deads as f64 / self.runs.max(1) as f64
    }
}

/// The whole campaign's outcome.
#[derive(Clone, Debug)]
pub struct GrayOutcome {
    /// Cell aggregates: slow factors outer, stall spans middle, link
    /// drops inner.
    pub cells: Vec<GrayCell>,
    /// Per-run verdicts in deterministic (cell, run) order.
    pub verdicts: Vec<GrayVerdict>,
}

impl GrayOutcome {
    /// `true` when every run upheld every clock-independent safety
    /// invariant in both arms.
    pub fn is_clean(&self) -> bool {
        self.verdicts.iter().all(GrayVerdict::is_clean)
    }

    /// The failing runs.
    pub fn failures(&self) -> Vec<&GrayVerdict> {
        self.verdicts.iter().filter(|v| !v.is_clean()).collect()
    }

    /// `true` when the adaptive arm strictly dominates the fixed arm on
    /// false deads in every slowdown-only cell that false-deads at all —
    /// the campaign's headline claim.
    pub fn adaptive_dominates(&self) -> bool {
        self.cells
            .iter()
            .filter(|c| c.slowdown_only && c.fixed_false_deads + c.adaptive_false_deads > 0)
            .all(|c| c.adaptive_false_deads < c.fixed_false_deads)
    }
}

/// The gray personas of one cell, seeded from the run's condition seed.
fn gray_config(cfg: &GrayStudyConfig, cell: CellSpec, cond_seed: u64) -> GrayConfig {
    let mut gray = GrayConfig::new().with_frame_seed(cond_seed ^ 0xF4A3_E0E0);
    if cell.slow_factor > 1 {
        gray = gray.with_slow(SlowSchedule::Random {
            mean_healthy: Dur::from_ticks(cfg.slow_mean_healthy),
            span: Dur::from_ticks(cfg.slow_span),
            factor: cell.slow_factor,
            seed: cond_seed ^ 0x510_0000,
        });
    }
    if cell.stall_span > 0 {
        gray = gray.with_stalls(StallSchedule::Random {
            mean_healthy: Dur::from_ticks(cfg.stall_mean_healthy),
            span: Dur::from_ticks(cell.stall_span),
            seed: cond_seed ^ 0x57A_1100,
        });
    }
    if cell.link_drop > 0 {
        gray = gray.with_links(LinkSchedule::Random {
            mean_healthy: Dur::from_ticks(cfg.link_mean_healthy),
            span: Dur::from_ticks(cfg.link_span),
            extra_latency: Dur::from_ticks(cfg.link_extra_latency),
            jitter: Dur::from_ticks(cfg.link_jitter),
            drop_permille: cell.link_drop,
            seed: cond_seed ^ 0x11C4_0000,
        });
    }
    gray
}

/// The endpoint transport of one arm: acked signals plus the heartbeat
/// detector, fixed cliff or φ-accrual.
fn transport(cfg: &GrayStudyConfig, cond_seed: u64, phi: bool) -> TransportConfig {
    let mut det =
        DetectorConfig::new(Dur::from_ticks(cfg.heartbeat)).with_watchdog(cfg.watchdog_misses);
    if phi {
        det = det.with_phi(PhiConfig::new());
    }
    TransportConfig::new(Dur::from_ticks((4 * cfg.latency).max(250)))
        .with_seed(cond_seed ^ 0xF00D)
        .with_detector(det)
}

/// Evaluates one run of one cell: a benign baseline plus both detector
/// arms over the same seeded gray schedule.
fn evaluate_run(
    cfg: &GrayStudyConfig,
    cell: CellSpec,
    run_index: usize,
    system_seed: u64,
    cond_seed: u64,
) -> GrayVerdict {
    let spec = WorkloadSpec::paper(cfg.n, cfg.u).with_random_phases();
    let set = generate(&spec, &mut StdRng::seed_from_u64(system_seed))
        .expect("paper spec always generates");
    let protocol = Protocol::ALL[run_index % Protocol::ALL.len()];
    let channel = ChannelModel::uniform(Dur::ZERO, Dur::from_ticks(cfg.latency))
        .with_seed(cond_seed ^ 0x5ca1_ab1e);

    let base = |phi: bool| {
        SimConfig::new(protocol)
            .with_instances(cfg.instances_per_task)
            .with_channel(channel)
            .with_transport(transport(cfg, cond_seed, phi))
    };

    // The benign twin: same system, channel, transport and detector
    // cadence, every gray knob off — the inflation baseline. Detector
    // mode is irrelevant without gray faults (no verdict ever fires), so
    // one baseline serves both arms.
    let baseline = simulate(&set, &base(false)).expect("paper systems are analyzable under SA/PM");

    let arm = |phi: bool| {
        let sim = base(phi).with_faults(FaultConfig::gray_only(gray_config(cfg, cell, cond_seed)));
        let mut obs = InvariantObserver::default();
        let out = simulate_observed(&set, &sim, &mut obs)
            .expect("paper systems are analyzable under SA/PM");
        obs.check_outcome(&out);
        let mut inflation_sum = 0.0;
        let mut inflation_count = 0u64;
        for ratio in eer_inflation(&baseline.metrics, &out.metrics)
            .into_iter()
            .flatten()
        {
            inflation_sum += ratio;
            inflation_count += 1;
        }
        let dt = &out.detect_stats;
        let stats = ArmStats {
            suspects: dt.suspects,
            false_suspects: dt.false_suspects,
            deads: dt.deads,
            false_deads: dt.false_deads,
            false_dead_gray: dt.false_dead_gray,
            degradeds: dt.degradeds,
            gray_hits: dt.gray_hits,
            hysteresis_holds: dt.hysteresis_holds,
            revivals: dt.revivals,
            forced_releases: dt.forced_releases,
            watchdog_trips: dt.watchdog_trips,
            mean_inflation: if inflation_count == 0 {
                f64::NAN
            } else {
                inflation_sum / inflation_count as f64
            },
            stalled: !out.reached_target,
        };
        (stats, out, obs.violations().to_vec())
    };

    let (fixed, _, fixed_violations) = arm(false);
    let (adaptive, adaptive_out, adaptive_violations) = arm(true);

    GrayVerdict {
        protocol,
        slow_factor: cell.slow_factor,
        stall_span: cell.stall_span,
        link_drop: cell.link_drop,
        run_index,
        system_seed,
        cond_seed,
        fixed,
        adaptive,
        slowdowns: adaptive_out.fault_stats.slowdowns,
        stalls: adaptive_out.fault_stats.stalls,
        link_degrades: adaptive_out.fault_stats.link_degrades,
        gray_dropped_heartbeats: adaptive_out.fault_stats.gray_dropped_heartbeats,
        gray_extra_latency_ticks: adaptive_out.fault_stats.gray_extra_latency_ticks,
        fixed_violations,
        adaptive_violations,
    }
}

/// Runs the whole campaign: `slow factors × stall spans × link drops ×
/// runs_per_cell` seeded runs, two detector arms each. Cells come back
/// factors-outer, spans-middle, drops-inner; verdicts in (cell, run)
/// order. The outcome is bit-for-bit deterministic for a given config
/// regardless of `threads`.
pub fn run_gray(cfg: &GrayStudyConfig) -> GrayOutcome {
    let cells: Vec<CellSpec> = cfg
        .slow_factors
        .iter()
        .flat_map(|&slow_factor| {
            cfg.stall_spans.iter().flat_map(move |&stall_span| {
                cfg.link_drops.iter().map(move |&link_drop| CellSpec {
                    slow_factor,
                    stall_span,
                    link_drop,
                })
            })
        })
        .collect();
    let jobs: Vec<(usize, usize)> = (0..cells.len())
        .flat_map(|c| (0..cfg.runs_per_cell).map(move |r| (c, r)))
        .collect();

    let results: Mutex<Vec<Option<GrayVerdict>>> = Mutex::new(vec![None; jobs.len()]);
    let next = AtomicUsize::new(0);
    let threads = cfg.threads.clamp(1, jobs.len().max(1));
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let j = next.fetch_add(1, Ordering::Relaxed);
                if j >= jobs.len() {
                    break;
                }
                let (c, r) = jobs[j];
                let system_seed = job_seed(cfg.seed, 0, r);
                let cond_seed = job_seed(cfg.seed, c + 1, r);
                let verdict = evaluate_run(cfg, cells[c], r, system_seed, cond_seed);
                results.lock().expect("no panics while holding the lock")[j] = Some(verdict);
            });
        }
    });
    let verdicts: Vec<GrayVerdict> = results
        .into_inner()
        .expect("lock released")
        .into_iter()
        .map(|r| r.expect("every run was evaluated"))
        .collect();

    let cells = cells
        .iter()
        .enumerate()
        .map(|(c, spec)| {
            let runs = &verdicts[c * cfg.runs_per_cell..(c + 1) * cfg.runs_per_cell];
            let mut cell = GrayCell {
                slow_factor: spec.slow_factor,
                stall_span: spec.stall_span,
                link_drop: spec.link_drop,
                slowdown_only: spec.slowdown_only(),
                runs: runs.len(),
                fixed_false_deads: 0,
                fixed_false_dead_gray: 0,
                fixed_false_suspects: 0,
                fixed_forced_releases: 0,
                fixed_watchdog_trips: 0,
                adaptive_false_deads: 0,
                adaptive_false_dead_gray: 0,
                adaptive_false_suspects: 0,
                adaptive_degradeds: 0,
                adaptive_gray_hits: 0,
                adaptive_forced_releases: 0,
                adaptive_watchdog_trips: 0,
                slowdowns: 0,
                stalls: 0,
                link_degrades: 0,
                fixed_inflation: f64::NAN,
                adaptive_inflation: f64::NAN,
                stalled_runs: 0,
                invariant_violations: 0,
            };
            let (mut fx_sum, mut fx_n, mut ad_sum, mut ad_n) = (0.0, 0u64, 0.0, 0u64);
            for v in runs {
                cell.fixed_false_deads += v.fixed.false_deads;
                cell.fixed_false_dead_gray += v.fixed.false_dead_gray;
                cell.fixed_false_suspects += v.fixed.false_suspects;
                cell.fixed_forced_releases += v.fixed.forced_releases;
                cell.fixed_watchdog_trips += v.fixed.watchdog_trips;
                cell.adaptive_false_deads += v.adaptive.false_deads;
                cell.adaptive_false_dead_gray += v.adaptive.false_dead_gray;
                cell.adaptive_false_suspects += v.adaptive.false_suspects;
                cell.adaptive_degradeds += v.adaptive.degradeds;
                cell.adaptive_gray_hits += v.adaptive.gray_hits;
                cell.adaptive_forced_releases += v.adaptive.forced_releases;
                cell.adaptive_watchdog_trips += v.adaptive.watchdog_trips;
                cell.slowdowns += v.slowdowns;
                cell.stalls += v.stalls;
                cell.link_degrades += v.link_degrades;
                cell.stalled_runs += usize::from(v.fixed.stalled || v.adaptive.stalled);
                cell.invariant_violations += v.fixed_violations.len() + v.adaptive_violations.len();
                if v.fixed.mean_inflation.is_finite() {
                    fx_sum += v.fixed.mean_inflation;
                    fx_n += 1;
                }
                if v.adaptive.mean_inflation.is_finite() {
                    ad_sum += v.adaptive.mean_inflation;
                    ad_n += 1;
                }
            }
            if fx_n > 0 {
                cell.fixed_inflation = fx_sum / fx_n as f64;
            }
            if ad_n > 0 {
                cell.adaptive_inflation = ad_sum / ad_n as f64;
            }
            cell
        })
        .collect();

    GrayOutcome { cells, verdicts }
}

/// Cell-level CSV: one row per grid coordinate, both arms side by side.
pub fn grid_csv(outcome: &GrayOutcome) -> String {
    let mut out = String::from(
        "slow_factor,stall_span,link_drop,slowdown_only,runs,\
         slowdowns,stalls,link_degrades,\
         fixed_false_deads,fixed_false_dead_gray,fixed_false_suspects,\
         fixed_forced_releases,fixed_watchdog_trips,fixed_inflation,\
         adaptive_false_deads,adaptive_false_dead_gray,adaptive_false_suspects,\
         adaptive_degradeds,adaptive_gray_hits,adaptive_forced_releases,\
         adaptive_watchdog_trips,adaptive_inflation,stalled_runs,\
         invariant_violations\n",
    );
    for c in &outcome.cells {
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}\n",
            c.slow_factor,
            c.stall_span,
            c.link_drop,
            u8::from(c.slowdown_only),
            c.runs,
            c.slowdowns,
            c.stalls,
            c.link_degrades,
            c.fixed_false_deads,
            c.fixed_false_dead_gray,
            c.fixed_false_suspects,
            c.fixed_forced_releases,
            c.fixed_watchdog_trips,
            fmt_f64(c.fixed_inflation),
            c.adaptive_false_deads,
            c.adaptive_false_dead_gray,
            c.adaptive_false_suspects,
            c.adaptive_degradeds,
            c.adaptive_gray_hits,
            c.adaptive_forced_releases,
            c.adaptive_watchdog_trips,
            fmt_f64(c.adaptive_inflation),
            c.stalled_runs,
            c.invariant_violations,
        ));
    }
    out
}

/// Summary CSV: one row per slowdown factor, aggregated over the stall
/// and link axes — the false-dead cliff in three lines.
pub fn summary_csv(outcome: &GrayOutcome) -> String {
    let mut out = String::from(
        "slow_factor,cells,runs,fixed_false_deads,fixed_false_dead_rate,\
         adaptive_false_deads,adaptive_false_dead_rate,adaptive_degradeds,\
         adaptive_gray_hits,fixed_inflation,adaptive_inflation,\
         invariant_violations\n",
    );
    let mut levels: Vec<u32> = outcome.cells.iter().map(|c| c.slow_factor).collect();
    levels.dedup();
    for factor in levels {
        let group: Vec<&GrayCell> = outcome
            .cells
            .iter()
            .filter(|c| c.slow_factor == factor)
            .collect();
        let runs: usize = group.iter().map(|c| c.runs).sum();
        let fixed: u64 = group.iter().map(|c| c.fixed_false_deads).sum();
        let adaptive: u64 = group.iter().map(|c| c.adaptive_false_deads).sum();
        let mean = |pick: fn(&GrayCell) -> f64| {
            let finite: Vec<f64> = group
                .iter()
                .map(|c| pick(c))
                .filter(|v| v.is_finite())
                .collect();
            if finite.is_empty() {
                f64::NAN
            } else {
                finite.iter().sum::<f64>() / finite.len() as f64
            }
        };
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{},{},{},{},{}\n",
            factor,
            group.len(),
            runs,
            fixed,
            fmt_f64(fixed as f64 / runs.max(1) as f64),
            adaptive,
            fmt_f64(adaptive as f64 / runs.max(1) as f64),
            group.iter().map(|c| c.adaptive_degradeds).sum::<u64>(),
            group.iter().map(|c| c.adaptive_gray_hits).sum::<u64>(),
            fmt_f64(mean(|c| c.fixed_inflation)),
            fmt_f64(mean(|c| c.adaptive_inflation)),
            group.iter().map(|c| c.invariant_violations).sum::<usize>(),
        ));
    }
    out
}

/// ASCII rendering of the campaign for the terminal.
pub fn render(outcome: &GrayOutcome) -> String {
    let mut out = String::from(
        "gray campaign: false deads fixed vs adaptive (degradeds | gray hits | dropped hbs)\n",
    );
    for c in &outcome.cells {
        out.push_str(&format!(
            "  slow {:>2}x stall {:>7} drop {:>3}: {:>4} vs {:<4} ({:>5} | {:>5} | {:>5}){}{}\n",
            c.slow_factor,
            c.stall_span,
            c.link_drop,
            c.fixed_false_deads,
            c.adaptive_false_deads,
            c.adaptive_degradeds,
            c.adaptive_gray_hits,
            outcome
                .verdicts
                .iter()
                .filter(|v| {
                    v.slow_factor == c.slow_factor
                        && v.stall_span == c.stall_span
                        && v.link_drop == c.link_drop
                })
                .map(|v| v.gray_dropped_heartbeats)
                .sum::<u64>(),
            if c.slowdown_only { "  <- headline" } else { "" },
            if c.invariant_violations > 0 {
                format!(", {} recorded violations", c.invariant_violations)
            } else {
                String::new()
            },
        ));
    }
    let failures = outcome.failures();
    out.push_str(&format!(
        "{} runs, {} failing, adaptive dominates slowdown-only cells: {}\n",
        outcome.verdicts.len(),
        failures.len(),
        outcome.adaptive_dominates(),
    ));
    for v in failures {
        out.push_str(&format!(
            "  FAIL {} slow={} stall={} drop={} run={} seed={:#018x}: {}\n",
            v.protocol.tag(),
            v.slow_factor,
            v.stall_span,
            v.link_drop,
            v.run_index,
            v.cond_seed,
            v.fixed_violations
                .first()
                .or(v.adaptive_violations.first())
                .map_or_else(|| "stalled".to_string(), |viol| viol.to_string()),
        ));
    }
    out
}

fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.4}")
    } else {
        String::from("NaN")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> GrayStudyConfig {
        GrayStudyConfig {
            slow_factors: vec![1, 8],
            stall_spans: vec![0],
            link_drops: vec![0],
            runs_per_cell: 2,
            instances_per_task: 5,
            threads: 2,
            ..GrayStudyConfig::default()
        }
    }

    #[test]
    fn campaign_is_clean_and_adaptive_dominates_slowdowns() {
        let outcome = run_gray(&tiny_cfg());
        assert!(
            outcome.is_clean(),
            "{:?}",
            outcome
                .failures()
                .first()
                .map(|v| (&v.fixed_violations, &v.adaptive_violations))
        );
        assert_eq!(outcome.verdicts.len(), 4);
        let slowdowns: u64 = outcome.cells.iter().map(|c| c.slowdowns).sum();
        assert!(slowdowns > 0, "slow cells must enter slow windows");
        let headline: Vec<&GrayCell> = outcome.cells.iter().filter(|c| c.slowdown_only).collect();
        assert!(!headline.is_empty());
        for c in &headline {
            assert!(
                c.fixed_false_deads > 0,
                "the fixed cliff must false-dead the slow peer: {c:?}"
            );
            assert_eq!(
                c.adaptive_false_deads, 0,
                "φ must absorb an 8x slowdown: {c:?}"
            );
            assert!(c.adaptive_gray_hits > 0, "{c:?}");
        }
        assert!(outcome.adaptive_dominates());
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let mut cfg = tiny_cfg();
        cfg.threads = 1;
        let a = run_gray(&cfg);
        cfg.threads = 4;
        let b = run_gray(&cfg);
        assert_eq!(grid_csv(&a), grid_csv(&b));
        assert_eq!(summary_csv(&a), summary_csv(&b));
    }

    #[test]
    fn smoke_config_covers_the_grid() {
        let cfg = GrayStudyConfig::smoke(16);
        assert!(cfg.total_runs() >= 16);
        assert!(cfg.slow_factors.contains(&1) && cfg.slow_factors.iter().any(|&f| f > 1));
        assert!(cfg.stall_spans.iter().any(|&s| s > 0));
        assert!(cfg.link_drops.iter().any(|&d| d > 0));
    }
}
