//! The chaos campaign: seeded crash/recovery fault injection over a grid
//! of protocols × crash rates, every run checked against the protocol
//! invariants of [`rtsync_sim::InvariantObserver`].
//!
//! Each run draws a synthetic §5.1 system, injects a seeded random crash
//! schedule ([`rtsync_sim::CrashSchedule::Random`]) and simulates it next
//! to a fault-free baseline of the same system. The campaign reports, per
//! `(protocol, mean-uptime)` cell,
//!
//! * **deadline-miss-or-loss ratio** — `(missed + lost) / (measured +
//!   lost)` end-to-end instances, the paper's miss rate extended to count
//!   chain instances that died in a crash;
//! * **EER inflation** — mean per-task `avg-EER(faulted) /
//!   avg-EER(baseline)` over tasks that completed in both runs;
//! * **availability** — fraction of processor-ticks not spent down;
//! * **invariant verdicts** — precedence order, RG guard spacing, no
//!   activity on a down processor, signal conservation among surviving
//!   signals and bounded backlog, with any violation reported as a
//!   [`ChaosFailure`].
//!
//! A failing run is **minimized**: its random schedule is resolved to the
//! explicit crash windows that actually fired and binary-searched down to
//! the shortest time-ordered prefix that still fails, then packaged as a
//! [`ReproBundle`] (human summary + JSONL event log + Perfetto trace).
//!
//! Like [`robustness`](crate::robustness), the campaign is
//! embarrassingly parallel over runs and bit-for-bit deterministic for a
//! given seed regardless of the thread count.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::seeding::job_seed;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rtsync_core::protocol::Protocol;
use rtsync_core::task::TaskSet;
use rtsync_core::time::{Dur, Time};
use rtsync_sim::engine::{simulate, simulate_observed, SimConfig, SimOutcome};
use rtsync_sim::nonideal::{eer_inflation, ChannelModel};
use rtsync_sim::{
    CrashWindow, DetectorConfig, EventLogObserver, FaultConfig, InvariantObserver,
    InvariantViolation, OverloadPolicy, Tee, TelemetryObserver, TelemetryReport, TransportConfig,
};
use rtsync_workload::{generate, WorkloadSpec};

/// Chaos-campaign parameters.
#[derive(Clone, Debug)]
pub struct ChaosConfig {
    /// Protocols under test.
    pub protocols: Vec<Protocol>,
    /// Mean uptime between crashes, in ticks — one grid level per value
    /// (crash rate = 1 / mean uptime). The §5.1 workload has periods of
    /// 1e5–1e7 ticks, so meaningful uptimes are millions of ticks.
    pub mean_uptimes: Vec<i64>,
    /// Restart delay after each crash, in ticks.
    pub restart_delay: i64,
    /// Runs per `(protocol, uptime)` cell. Overload policies rotate over
    /// the run index; odd runs add a constant-latency signal channel so
    /// the conservation invariant is exercised with in-flight deliveries.
    pub runs_per_cell: usize,
    /// Subtasks per task of the synthetic systems.
    pub n: usize,
    /// Per-processor utilization of the synthetic systems.
    pub u: f64,
    /// End-to-end instances simulated per task.
    pub instances_per_task: u64,
    /// Constant signal latency (ticks) applied on odd-indexed runs.
    pub signal_latency: i64,
    /// Attach the endpoint transport (ack/retransmit + heartbeat failure
    /// detection) to every run. Channel runs gain 10% endpoint drops so
    /// retransmission is exercised alongside the crash schedule; the
    /// retry budget stays unbounded, so signal loss remains a failure.
    pub transport: bool,
    /// Master seed; system and fault seeds derive from it.
    pub seed: u64,
    /// Worker threads.
    pub threads: usize,
}

impl Default for ChaosConfig {
    fn default() -> ChaosConfig {
        ChaosConfig {
            protocols: Protocol::ALL.to_vec(),
            mean_uptimes: vec![20_000_000, 5_000_000, 1_000_000],
            restart_delay: 200_000,
            runs_per_cell: 17,
            n: 3,
            u: 0.6,
            instances_per_task: 12,
            signal_latency: 1_000,
            transport: false,
            seed: 0xC4A0_5CA2,
            threads: std::thread::available_parallelism().map_or(4, |n| n.get()),
        }
    }
}

impl ChaosConfig {
    /// A reduced campaign for CI smoke jobs and tests: fewer, shorter
    /// runs with the same grid shape.
    pub fn smoke(total_runs: usize) -> ChaosConfig {
        let cfg = ChaosConfig::default();
        let cells = cfg.protocols.len() * cfg.mean_uptimes.len();
        ChaosConfig {
            runs_per_cell: total_runs.div_ceil(cells).max(1),
            instances_per_task: 6,
            ..cfg
        }
    }

    /// Total runs in the campaign.
    pub fn total_runs(&self) -> usize {
        self.protocols.len() * self.mean_uptimes.len() * self.runs_per_cell
    }
}

/// The verdict of one chaos run.
#[derive(Clone, Debug)]
pub struct RunVerdict {
    /// The protocol.
    pub protocol: Protocol,
    /// Mean uptime (ticks) of this run's cell.
    pub mean_uptime: i64,
    /// Overload policy applied at recovery.
    pub policy: OverloadPolicy,
    /// Run index within the cell.
    pub run_index: usize,
    /// Seed the synthetic system was generated from.
    pub system_seed: u64,
    /// Seed of the random crash schedule.
    pub fault_seed: u64,
    /// Whether this run rode a constant-latency signal channel.
    pub with_channel: bool,
    /// Fault-domain counters of the faulted run.
    pub crashes: u64,
    /// Recoveries (equals crashes unless the run ended while down).
    pub recoveries: u64,
    /// Jobs killed mid-execution or while queued on a crashed processor.
    pub killed_jobs: u64,
    /// End-to-end instances lost to crashes.
    pub lost: u64,
    /// End-to-end deadline misses among completed instances.
    pub missed: u64,
    /// End-to-end instances with measured response times.
    pub measured: u64,
    /// Mean per-task EER inflation over the fault-free baseline (`NaN`
    /// when no task completed in both runs).
    pub mean_inflation: f64,
    /// Processor-ticks spent down, summed over processors.
    pub downtime_ticks: i64,
    /// Run span in ticks × number of processors (availability denominator).
    pub span_ticks: i64,
    /// `true` if the run stopped before resolving every instance.
    pub stalled: bool,
    /// Invariant violations (empty for a clean run).
    pub violations: Vec<InvariantViolation>,
}

impl RunVerdict {
    /// `true` when the run upheld every invariant and resolved all work.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty() && !self.stalled
    }

    /// `(missed + lost) / (measured + lost)`, `NaN` with no instances.
    pub fn miss_or_loss_ratio(&self) -> f64 {
        let denom = self.measured + self.lost;
        if denom == 0 {
            f64::NAN
        } else {
            (self.missed + self.lost) as f64 / denom as f64
        }
    }
}

/// Aggregate of one `(protocol, mean uptime)` cell.
#[derive(Clone, Debug)]
pub struct ChaosCell {
    /// The protocol.
    pub protocol: Protocol,
    /// Mean uptime (ticks).
    pub mean_uptime: i64,
    /// Runs aggregated.
    pub runs: usize,
    /// Total crashes injected.
    pub crashes: u64,
    /// Total jobs killed.
    pub killed_jobs: u64,
    /// Total end-to-end instances lost.
    pub lost: u64,
    /// Aggregate `(missed + lost) / (measured + lost)`.
    pub miss_or_loss_ratio: f64,
    /// Mean of per-run mean EER inflation (finite runs only).
    pub mean_inflation: f64,
    /// Mean fraction of processor-ticks spent up.
    pub availability: f64,
    /// Runs that stopped before resolving every instance.
    pub stalls: usize,
    /// Total invariant violations across the cell's runs.
    pub invariant_violations: usize,
}

/// A failing run: its verdict plus the minimized crash schedule.
#[derive(Clone, Debug)]
pub struct ChaosFailure {
    /// The failing run's verdict.
    pub verdict: RunVerdict,
    /// Shortest failing prefix of the resolved crash windows, as
    /// `(processor, window)` in time order — `None` when the resolved
    /// schedule did not reproduce the failure (the original random
    /// config is then the repro).
    pub minimized: Option<Vec<(usize, CrashWindow)>>,
    /// Number of resolved windows before minimization.
    pub original_windows: usize,
}

/// The whole campaign's outcome.
#[derive(Clone, Debug)]
pub struct ChaosOutcome {
    /// Cell aggregates, protocols outer × uptimes inner.
    pub cells: Vec<ChaosCell>,
    /// Per-run verdicts in deterministic (cell, run) order.
    pub verdicts: Vec<RunVerdict>,
    /// Failing runs with minimized schedules (empty on a clean campaign).
    pub failures: Vec<ChaosFailure>,
}

impl ChaosOutcome {
    /// `true` when every run upheld every invariant and resolved.
    pub fn is_clean(&self) -> bool {
        self.failures.is_empty()
    }
}

/// A self-contained reproduction of one failing run.
#[derive(Clone, Debug)]
pub struct ReproBundle {
    /// Human-readable summary: config, seeds, schedule, violations.
    pub summary: String,
    /// JSONL event log of the failing run.
    pub jsonl: String,
    /// Perfetto/Chrome trace of the failing run.
    pub perfetto_json: String,
}

/// The simulation config of one chaos run, minus the fault schedule.
/// `seed` feeds the channel/transport RNG streams in transport mode; the
/// ideal (transport-off) configs ignore it.
fn base_sim_config(
    cfg: &ChaosConfig,
    protocol: Protocol,
    with_channel: bool,
    seed: u64,
) -> SimConfig {
    let mut sim = SimConfig::new(protocol).with_instances(cfg.instances_per_task);
    if with_channel && cfg.signal_latency > 0 {
        let mut channel = ChannelModel::constant(Dur::from_ticks(cfg.signal_latency));
        if cfg.transport {
            channel = channel.with_endpoint_drops(0.1).with_seed(seed ^ 0xCAFE);
        }
        sim = sim.with_channel(channel);
    }
    if cfg.transport {
        let timeout = Dur::from_ticks(4 * cfg.signal_latency.max(250));
        sim = sim.with_transport(
            TransportConfig::new(timeout)
                .with_seed(seed ^ 0xF00D)
                .with_detector(DetectorConfig::new(Dur::from_ticks(
                    (cfg.restart_delay / 20).max(1),
                ))),
        );
    }
    sim
}

/// Runs one faulted simulation under the invariant observer.
fn checked_run(
    set: &TaskSet,
    sim: &SimConfig,
    faults: FaultConfig,
) -> (SimOutcome, Vec<InvariantViolation>) {
    let mut obs = InvariantObserver::default();
    let out = simulate_observed(set, &sim.clone().with_faults(faults), &mut obs)
        .expect("chaos systems are analyzable under SA/PM");
    obs.check_outcome(&out);
    (out, obs.violations().to_vec())
}

/// Total downtime the resolved schedule imposes before `end`.
fn downtime_before(windows: &[Vec<CrashWindow>], end: Time) -> i64 {
    windows
        .iter()
        .flatten()
        .map(|w| {
            let up = w.recovers_at().min(end);
            (up - w.at).ticks().max(0)
        })
        .sum()
}

/// Evaluates one run of one cell.
fn evaluate_run(
    cfg: &ChaosConfig,
    protocol: Protocol,
    mean_uptime: i64,
    run_index: usize,
    system_seed: u64,
    fault_seed: u64,
) -> (RunVerdict, Option<ChaosFailure>) {
    let spec = WorkloadSpec::paper(cfg.n, cfg.u).with_random_phases();
    let set = generate(&spec, &mut StdRng::seed_from_u64(system_seed))
        .expect("paper spec always generates");
    let policy = OverloadPolicy::ALL[run_index % OverloadPolicy::ALL.len()];
    let with_channel = run_index % 2 == 1;
    let sim = base_sim_config(cfg, protocol, with_channel, system_seed);
    let faults = FaultConfig::random(
        Dur::from_ticks(mean_uptime),
        Dur::from_ticks(cfg.restart_delay),
        fault_seed,
    )
    .with_policy(policy);

    let baseline = simulate(&set, &sim).expect("chaos systems are analyzable under SA/PM");
    let (out, violations) = checked_run(&set, &sim, faults.clone());

    let mut inflation_sum = 0.0;
    let mut inflation_count = 0u64;
    for ratio in eer_inflation(&baseline.metrics, &out.metrics)
        .into_iter()
        .flatten()
    {
        inflation_sum += ratio;
        inflation_count += 1;
    }
    let (mut missed, mut measured) = (0, 0);
    for t in out.metrics.tasks() {
        missed += t.deadline_misses();
        measured += t.measured();
    }
    let resolved = faults.resolve(set.num_processors(), out.end_time);
    let verdict = RunVerdict {
        protocol,
        mean_uptime,
        policy,
        run_index,
        system_seed,
        fault_seed,
        with_channel,
        crashes: out.fault_stats.crashes,
        recoveries: out.fault_stats.recoveries,
        killed_jobs: out.fault_stats.killed_jobs,
        lost: out.metrics.total_lost(),
        missed,
        measured,
        mean_inflation: if inflation_count == 0 {
            f64::NAN
        } else {
            inflation_sum / inflation_count as f64
        },
        downtime_ticks: downtime_before(&resolved, out.end_time),
        span_ticks: out.end_time.since_origin().ticks() * set.num_processors() as i64,
        stalled: !out.reached_target,
        violations,
    };

    let failure = (!verdict.is_clean()).then(|| {
        let minimized = minimize_schedule(&set, &sim, policy, &resolved);
        ChaosFailure {
            verdict: verdict.clone(),
            original_windows: resolved.iter().map(Vec::len).sum(),
            minimized,
        }
    });
    (verdict, failure)
}

/// Flattens per-processor windows into one time-ordered list.
fn flatten_windows(windows: &[Vec<CrashWindow>]) -> Vec<(usize, CrashWindow)> {
    let mut flat: Vec<(usize, CrashWindow)> = windows
        .iter()
        .enumerate()
        .flat_map(|(p, ws)| ws.iter().map(move |&w| (p, w)))
        .collect();
    flat.sort_by_key(|&(p, w)| (w.at, p));
    flat
}

/// Rebuilds per-processor windows from a flat prefix.
fn unflatten(prefix: &[(usize, CrashWindow)], num_procs: usize) -> Vec<Vec<CrashWindow>> {
    let mut out = vec![Vec::new(); num_procs];
    for &(p, w) in prefix {
        out[p].push(w);
    }
    out
}

/// Binary-searches the resolved crash windows of a failing run down to
/// the shortest time-ordered prefix that still fails. Returns `None`
/// when the explicit full schedule does not reproduce the failure (the
/// run is then reported with its original random config).
fn minimize_schedule(
    set: &TaskSet,
    sim: &SimConfig,
    policy: OverloadPolicy,
    resolved: &[Vec<CrashWindow>],
) -> Option<Vec<(usize, CrashWindow)>> {
    let flat = flatten_windows(resolved);
    let fails = |k: usize| -> bool {
        let faults =
            FaultConfig::explicit(unflatten(&flat[..k], set.num_processors())).with_policy(policy);
        let (out, violations) = checked_run(set, sim, faults);
        !violations.is_empty() || !out.reached_target
    };
    if !fails(flat.len()) {
        return None;
    }
    // Invariant: fails(hi) holds; lo is the largest known-passing prefix.
    let (mut lo, mut hi) = (0usize, flat.len());
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if fails(mid) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    Some(flat[..hi].to_vec())
}

/// Runs the whole campaign: `protocols × mean_uptimes × runs_per_cell`
/// seeded runs, each checked against the protocol invariants. Cells come
/// back protocol-outer, uptime-inner; verdicts in (cell, run) order. The
/// outcome is bit-for-bit deterministic for a given config regardless of
/// `threads`.
pub fn run_chaos(cfg: &ChaosConfig) -> ChaosOutcome {
    let cells: Vec<(Protocol, i64)> = cfg
        .protocols
        .iter()
        .flat_map(|&p| cfg.mean_uptimes.iter().map(move |&u| (p, u)))
        .collect();
    let jobs: Vec<(usize, usize)> = (0..cells.len())
        .flat_map(|c| (0..cfg.runs_per_cell).map(move |r| (c, r)))
        .collect();

    type JobResult = (RunVerdict, Option<ChaosFailure>);
    let results: Mutex<Vec<Option<JobResult>>> = Mutex::new(vec![None; jobs.len()]);
    let next = AtomicUsize::new(0);
    let threads = cfg.threads.clamp(1, jobs.len().max(1));
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let j = next.fetch_add(1, Ordering::Relaxed);
                if j >= jobs.len() {
                    break;
                }
                let (c, r) = jobs[j];
                let (protocol, uptime) = cells[c];
                let system_seed = job_seed(cfg.seed, 0, r);
                let fault_seed = job_seed(cfg.seed, c + 1, r);
                let result = evaluate_run(cfg, protocol, uptime, r, system_seed, fault_seed);
                results.lock().expect("no panics while holding the lock")[j] = Some(result);
            });
        }
    });
    let results: Vec<JobResult> = results
        .into_inner()
        .expect("lock released")
        .into_iter()
        .map(|r| r.expect("every run was evaluated"))
        .collect();

    let mut verdicts = Vec::with_capacity(results.len());
    let mut failures = Vec::new();
    for (verdict, failure) in results {
        verdicts.push(verdict);
        failures.extend(failure);
    }

    let cells = cells
        .iter()
        .enumerate()
        .map(|(c, &(protocol, mean_uptime))| {
            let runs = &verdicts[c * cfg.runs_per_cell..(c + 1) * cfg.runs_per_cell];
            let mut cell = ChaosCell {
                protocol,
                mean_uptime,
                runs: runs.len(),
                crashes: 0,
                killed_jobs: 0,
                lost: 0,
                miss_or_loss_ratio: f64::NAN,
                mean_inflation: f64::NAN,
                availability: f64::NAN,
                stalls: 0,
                invariant_violations: 0,
            };
            let (mut missed, mut measured) = (0u64, 0u64);
            let (mut infl_sum, mut infl_n) = (0.0, 0u64);
            let (mut down, mut span) = (0i64, 0i64);
            for v in runs {
                cell.crashes += v.crashes;
                cell.killed_jobs += v.killed_jobs;
                cell.lost += v.lost;
                cell.stalls += usize::from(v.stalled);
                cell.invariant_violations += v.violations.len();
                missed += v.missed;
                measured += v.measured;
                if v.mean_inflation.is_finite() {
                    infl_sum += v.mean_inflation;
                    infl_n += 1;
                }
                down += v.downtime_ticks;
                span += v.span_ticks;
            }
            if measured + cell.lost > 0 {
                cell.miss_or_loss_ratio =
                    (missed + cell.lost) as f64 / (measured + cell.lost) as f64;
            }
            if infl_n > 0 {
                cell.mean_inflation = infl_sum / infl_n as f64;
            }
            if span > 0 {
                cell.availability = 1.0 - down as f64 / span as f64;
            }
            cell
        })
        .collect();

    ChaosOutcome {
        cells,
        verdicts,
        failures,
    }
}

/// Re-runs the campaign's worst run with the telemetry recorder attached
/// and returns its verdict plus the windowed time series — the crash
/// dips and recovery backlog drain are visible in the per-processor
/// backlog, detector-census and completion series.
///
/// "Worst" is the run with the most `missed + lost` instances, ties
/// broken by crash count then killed jobs (integer keys, so a campaign
/// with NaN ratios still picks deterministically). `window` is the
/// telemetry window width; pass `None` to auto-size to ~120 windows via
/// an untelemetered pre-run. Returns `None` on an empty campaign.
pub fn worst_case_telemetry(
    cfg: &ChaosConfig,
    outcome: &ChaosOutcome,
    window: Option<Dur>,
) -> Option<(RunVerdict, TelemetryReport)> {
    let v = outcome
        .verdicts
        .iter()
        .max_by_key(|v| (v.missed + v.lost, v.crashes, v.killed_jobs))?
        .clone();
    let spec = WorkloadSpec::paper(cfg.n, cfg.u).with_random_phases();
    let set = generate(&spec, &mut StdRng::seed_from_u64(v.system_seed))
        .expect("paper spec always generates");
    let sim = base_sim_config(cfg, v.protocol, v.with_channel, v.system_seed);
    let faults = FaultConfig::random(
        Dur::from_ticks(v.mean_uptime),
        Dur::from_ticks(cfg.restart_delay),
        v.fault_seed,
    )
    .with_policy(v.policy);
    let sim = sim.with_faults(faults);
    let width = window.unwrap_or_else(|| {
        let end = simulate(&set, &sim)
            .expect("telemetry re-run of an analyzable system")
            .end_time;
        Dur::from_ticks((end.ticks() / 120).max(1))
    });
    let mut tel = TelemetryObserver::new(width);
    simulate_observed(&set, &sim, &mut tel).expect("telemetry re-run of an analyzable system");
    Some((v, tel.into_report()))
}

/// Rebuilds a failure's exact run and packages it for offline debugging.
/// The rerun uses the minimized explicit schedule when one reproduced,
/// otherwise the original random config.
pub fn repro_bundle(cfg: &ChaosConfig, failure: &ChaosFailure) -> ReproBundle {
    let v = &failure.verdict;
    let spec = WorkloadSpec::paper(cfg.n, cfg.u).with_random_phases();
    let set = generate(&spec, &mut StdRng::seed_from_u64(v.system_seed))
        .expect("paper spec always generates");
    let sim = base_sim_config(cfg, v.protocol, v.with_channel, v.system_seed);
    let faults = match &failure.minimized {
        Some(prefix) => {
            FaultConfig::explicit(unflatten(prefix, set.num_processors())).with_policy(v.policy)
        }
        None => FaultConfig::random(
            Dur::from_ticks(v.mean_uptime),
            Dur::from_ticks(cfg.restart_delay),
            v.fault_seed,
        )
        .with_policy(v.policy),
    };

    let mut log = EventLogObserver::default();
    let mut inv = InvariantObserver::default();
    let out = simulate_observed(&set, &sim.with_faults(faults), &mut Tee(&mut inv, &mut log))
        .expect("repro of an analyzable system");
    inv.check_outcome(&out);

    let mut summary = String::new();
    summary.push_str(&format!(
        "chaos failure: protocol={} mean_uptime={} policy={} run_index={}\n\
         system_seed={:#018x} fault_seed={:#018x} channel={}\n",
        v.protocol.tag(),
        v.mean_uptime,
        v.policy.tag(),
        v.run_index,
        v.system_seed,
        v.fault_seed,
        if v.with_channel {
            format!("constant {} ticks", cfg.signal_latency)
        } else {
            "none".to_string()
        },
    ));
    match &failure.minimized {
        Some(prefix) => {
            summary.push_str(&format!(
                "minimized schedule ({} of {} windows):\n",
                prefix.len(),
                failure.original_windows
            ));
            for (p, w) in prefix {
                summary.push_str(&format!(
                    "  P{p}: crash at {} recover at {}\n",
                    w.at.ticks(),
                    w.recovers_at().ticks()
                ));
            }
        }
        None => summary.push_str(
            "schedule: not minimized (explicit replay did not reproduce; \
             use the random config above)\n",
        ),
    }
    summary.push_str(&format!(
        "stalled={} violations={}\n",
        !out.reached_target,
        inv.violations().len()
    ));
    for viol in inv.violations() {
        summary.push_str(&format!("  {viol}\n"));
    }
    ReproBundle {
        summary,
        jsonl: log.to_jsonl(),
        perfetto_json: log.to_chrome_trace(),
    }
}

/// Cell-level CSV: the per-protocol degradation curves (one row per
/// `(protocol, mean uptime)` cell).
pub fn to_csv(outcome: &ChaosOutcome) -> String {
    let mut out = String::from(
        "protocol,mean_uptime,runs,crashes,killed_jobs,lost,\
         miss_or_loss_ratio,mean_inflation,availability,stalls,invariant_violations\n",
    );
    for c in &outcome.cells {
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{},{},{},{}\n",
            c.protocol.tag(),
            c.mean_uptime,
            c.runs,
            c.crashes,
            c.killed_jobs,
            c.lost,
            fmt_f64(c.miss_or_loss_ratio),
            fmt_f64(c.mean_inflation),
            fmt_f64(c.availability),
            c.stalls,
            c.invariant_violations,
        ));
    }
    out
}

/// Run-level CSV: one row per run, in deterministic (cell, run) order.
pub fn runs_csv(outcome: &ChaosOutcome) -> String {
    let mut out = String::from(
        "protocol,mean_uptime,policy,run_index,system_seed,fault_seed,channel,\
         crashes,recoveries,killed_jobs,lost,missed,measured,miss_or_loss_ratio,\
         mean_inflation,downtime_ticks,span_ticks,stalled,violations\n",
    );
    for v in &outcome.verdicts {
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}\n",
            v.protocol.tag(),
            v.mean_uptime,
            v.policy.tag(),
            v.run_index,
            v.system_seed,
            v.fault_seed,
            u8::from(v.with_channel),
            v.crashes,
            v.recoveries,
            v.killed_jobs,
            v.lost,
            v.missed,
            v.measured,
            fmt_f64(v.miss_or_loss_ratio()),
            fmt_f64(v.mean_inflation),
            v.downtime_ticks,
            v.span_ticks,
            u8::from(v.stalled),
            v.violations.len(),
        ));
    }
    out
}

/// ASCII rendering of the campaign for the terminal.
pub fn render(outcome: &ChaosOutcome) -> String {
    let mut out =
        String::from("chaos campaign: miss-or-loss ratio (EER inflation | availability)\n");
    for c in &outcome.cells {
        out.push_str(&format!(
            "  {:>3} @ uptime {:>10}: {:<7} (x{:<7} | {:.4}) — {} crashes, {} lost{}{}\n",
            c.protocol.tag(),
            c.mean_uptime,
            fmt_f64(c.miss_or_loss_ratio),
            fmt_f64(c.mean_inflation),
            c.availability,
            c.crashes,
            c.lost,
            if c.stalls > 0 {
                format!(", {} STALLED", c.stalls)
            } else {
                String::new()
            },
            if c.invariant_violations > 0 {
                format!(", {} VIOLATIONS", c.invariant_violations)
            } else {
                String::new()
            },
        ));
    }
    out.push_str(&format!(
        "{} runs, {} failing\n",
        outcome.verdicts.len(),
        outcome.failures.len()
    ));
    out
}

fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.4}")
    } else {
        String::from("NaN")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> ChaosConfig {
        ChaosConfig {
            mean_uptimes: vec![5_000_000, 1_000_000],
            runs_per_cell: 2,
            instances_per_task: 6,
            threads: 2,
            ..ChaosConfig::default()
        }
    }

    #[test]
    fn campaign_is_clean_and_injects_crashes() {
        let outcome = run_chaos(&tiny_cfg());
        assert!(outcome.is_clean(), "{:?}", outcome.failures);
        assert_eq!(outcome.verdicts.len(), 16);
        let total_crashes: u64 = outcome.cells.iter().map(|c| c.crashes).sum();
        assert!(total_crashes > 0, "the grid must actually crash nodes");
        for c in &outcome.cells {
            assert!(
                c.availability.is_finite() && c.availability <= 1.0,
                "{}: {}",
                c.protocol.tag(),
                c.availability
            );
        }
    }

    #[test]
    fn transport_campaign_is_clean() {
        // The endpoint transport (retransmission over lossy channel runs,
        // heartbeat detection, degraded releases) must not break any
        // invariant the oracle-recovery campaign holds.
        let mut cfg = tiny_cfg();
        cfg.transport = true;
        let outcome = run_chaos(&cfg);
        assert!(outcome.is_clean(), "{:?}", outcome.failures);
        let total_crashes: u64 = outcome.cells.iter().map(|c| c.crashes).sum();
        assert!(total_crashes > 0, "the grid must actually crash nodes");
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let mut cfg = tiny_cfg();
        cfg.threads = 1;
        let a = run_chaos(&cfg);
        cfg.threads = 4;
        let b = run_chaos(&cfg);
        assert_eq!(to_csv(&a), to_csv(&b));
        assert_eq!(runs_csv(&a), runs_csv(&b));
    }

    #[test]
    fn smoke_config_covers_the_grid() {
        let cfg = ChaosConfig::smoke(25);
        assert!(cfg.total_runs() >= 25);
        assert_eq!(cfg.protocols.len(), 4);
        assert!(cfg.mean_uptimes.len() >= 3);
    }

    #[test]
    fn minimization_finds_a_short_failing_prefix() {
        // Plant a synthetic failure predicate via a passing schedule: the
        // minimizer must return None when the full schedule is clean...
        let cfg = tiny_cfg();
        let spec = WorkloadSpec::paper(cfg.n, cfg.u).with_random_phases();
        let set = generate(&spec, &mut StdRng::seed_from_u64(7)).unwrap();
        let sim = base_sim_config(&cfg, Protocol::DirectSync, false, 7);
        let faults = FaultConfig::random(
            Dur::from_ticks(2_000_000),
            Dur::from_ticks(cfg.restart_delay),
            3,
        );
        let (out, violations) = checked_run(&set, &sim, faults.clone());
        assert!(violations.is_empty() && out.reached_target);
        let resolved = faults.resolve(set.num_processors(), out.end_time);
        assert_eq!(
            minimize_schedule(&set, &sim, OverloadPolicy::ReleaseAll, &resolved),
            Option::None,
            "a clean run has no failing prefix"
        );
        // ...and the flatten/unflatten round trip preserves the schedule.
        let flat = flatten_windows(&resolved);
        let round = unflatten(&flat, set.num_processors());
        assert_eq!(resolved, round);
    }

    #[test]
    fn repro_bundle_is_self_describing() {
        // Bundle an arbitrary (clean) run as if it had failed: the bundle
        // must carry the config, the schedule and a non-empty event log.
        let cfg = tiny_cfg();
        let outcome = run_chaos(&cfg);
        let failure = ChaosFailure {
            verdict: outcome.verdicts[0].clone(),
            minimized: Option::None,
            original_windows: 0,
        };
        let bundle = repro_bundle(&cfg, &failure);
        assert!(bundle.summary.contains("protocol=DS"));
        assert!(bundle.summary.contains("fault_seed="));
        assert!(bundle.jsonl.lines().count() > 2);
        assert!(bundle.perfetto_json.contains("\"ph\""));
    }
}
