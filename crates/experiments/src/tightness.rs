//! Bound-tightness study (beyond the paper).
//!
//! The paper compares protocols by their *estimated* worst-case EER times
//! because "the actual worst-case EER times of tasks can be found only via
//! exhaustive search". This study measures how pessimistic the estimates
//! are in practice: simulate each system with **zero phases** (a
//! synchronous start approximates the critical instant) for many
//! instances, and report `max observed EER / analyzed bound` per task —
//! 1.0 means the bound was attained, small values mean pessimism.
//!
//! Expected findings (recorded in EXPERIMENTS.md): SA/PM is fairly tight
//! for PM (whose schedule *is* the analyzed worst case), looser for RG
//! (rule 2 undercuts the analyzed pattern), and SA/DS is the loosest —
//! that pessimism is exactly why the paper's Figure 13 ratios explode.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rtsync_core::analysis::sa_ds::analyze_ds;
use rtsync_core::analysis::sa_pm::analyze_pm;
use rtsync_core::protocol::Protocol;
use rtsync_core::task::TaskSet;
use rtsync_sim::engine::{simulate, SimConfig};
use rtsync_workload::{generate, PhaseModel, WorkloadSpec};

use crate::study::StudyConfig;

/// Mean observed-to-bound ratios for one configuration.
#[derive(Clone, Copy, Debug)]
pub struct TightnessRow {
    /// Subtasks per task.
    pub n: usize,
    /// Per-processor utilization.
    pub u: f64,
    /// `max simulated EER under PM / SA-PM bound`, averaged per task.
    pub pm: f64,
    /// `max simulated EER under RG / SA-PM bound` (Theorem 1's bound).
    pub rg: f64,
    /// `max simulated EER under DS / SA-DS bound`, over DS-finite systems.
    pub ds: f64,
}

/// Measures tightness at configuration `(n, u)`.
pub fn tightness_config(n: usize, u: f64, cfg: &StudyConfig) -> TightnessRow {
    let mut spec = WorkloadSpec::paper(n, u);
    spec.phases = PhaseModel::Zero; // synchronous start ≈ critical instant
    let mut pm_acc = RatioAcc::default();
    let mut rg_acc = RatioAcc::default();
    let mut ds_acc = RatioAcc::default();
    for index in 0..cfg.systems_per_config {
        let mut rng = StdRng::seed_from_u64(
            cfg.seed ^ 0x7159_5300 ^ (n as u64) << 24 ^ ((u * 100.0) as u64) << 8 ^ index as u64,
        );
        let set = generate(&spec, &mut rng).expect("paper spec generates");
        let Ok(pm_bounds) = analyze_pm(&set, &cfg.analysis) else {
            continue;
        };
        observe(&set, Protocol::PhaseModification, cfg, |task, max| {
            pm_acc.push(max / pm_bounds.task_bound(task).as_f64());
        });
        observe(&set, Protocol::ReleaseGuard, cfg, |task, max| {
            rg_acc.push(max / pm_bounds.task_bound(task).as_f64());
        });
        if let Ok(ds_bounds) = analyze_ds(&set, &cfg.analysis) {
            observe(&set, Protocol::DirectSync, cfg, |task, max| {
                ds_acc.push(max / ds_bounds.task_bound(task).as_f64());
            });
        }
    }
    TightnessRow {
        n,
        u,
        pm: pm_acc.mean(),
        rg: rg_acc.mean(),
        ds: ds_acc.mean(),
    }
}

fn observe(
    set: &TaskSet,
    protocol: Protocol,
    cfg: &StudyConfig,
    mut record: impl FnMut(rtsync_core::task::TaskId, f64),
) {
    let out = simulate(
        set,
        &SimConfig::new(protocol).with_instances(cfg.instances_per_task),
    )
    .expect("analyzable systems simulate");
    for task in set.tasks() {
        if let Some(max) = out.metrics.task(task.id()).max_eer() {
            record(task.id(), max.as_f64());
        }
    }
}

#[derive(Default)]
struct RatioAcc {
    sum: f64,
    count: usize,
}

impl RatioAcc {
    fn push(&mut self, v: f64) {
        self.sum += v;
        self.count += 1;
    }

    fn mean(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.sum / self.count as f64
        }
    }
}

/// Renders tightness rows as a text table.
pub fn render(rows: &[TightnessRow]) -> String {
    let mut out =
        String::from("bound tightness: mean(max observed EER / bound); 1.0 = bound attained\n");
    out.push_str(&format!(
        "{:>3}{:>5}{:>10}{:>10}{:>10}\n",
        "N", "U%", "PM", "RG", "DS"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:>3}{:>5.0}{:>10.3}{:>10.3}{:>10.3}\n",
            r.n,
            r.u * 100.0,
            r.pm,
            r.rg,
            r.ds
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tightness_ratios_are_sound_and_ordered() {
        let cfg = StudyConfig {
            systems_per_config: 3,
            instances_per_task: 15,
            seed: 5,
            ..StudyConfig::default()
        };
        let row = tightness_config(3, 0.7, &cfg);
        // Soundness: observed never exceeds the bound.
        for v in [row.pm, row.rg, row.ds] {
            assert!(v > 0.0 && v <= 1.0 + 1e-9, "{row:?}");
        }
        // PM's schedule is the analyzed pattern: at least as tight as DS's
        // jitter-padded analysis.
        assert!(row.pm >= row.ds - 0.05, "{row:?}");
    }

    #[test]
    fn render_contains_rows() {
        let rows = vec![TightnessRow {
            n: 3,
            u: 0.7,
            pm: 0.9,
            rg: 0.8,
            ds: 0.5,
        }];
        let text = render(&rows);
        assert!(text.contains("0.900"));
        assert!(text.contains("70"));
    }
}
