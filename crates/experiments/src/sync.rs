//! The clock-synchronization study: does sync reopen PM's viability
//! under nonideal clocks, and how accurate does it have to be?
//!
//! The robustness grid ([`robustness`](crate::robustness)) shows PM —
//! the only protocol that reads absolute local time — inflating its
//! end-to-end responses 4–5x under 5% drift, while MPM and RG shrug it
//! off. This study attaches the [`rtsync_sim::sync`] layer to PM and
//! sweeps **drift × latency × sync-period** on the same synthetic §5.1
//! systems. Per `(drift, latency, period)` cell it reports
//!
//! * **PM synced EER inflation** — mean per-task
//!   `avg-EER(synced nonideal) / avg-EER(ideal)`;
//! * **achieved clock error** — the oracle mean/max `|corrected local −
//!   true|` sampled at sync rounds ([`rtsync_sim::SyncStats`]), the
//!   residual `drift · period + RTT/2` floor made measurable;
//! * **sync cost** — rounds, frames, and the sync share of all channel
//!   traffic;
//! * **PM precedence violations** with sync on (drift breaks PM's
//!   release-time math outright; sync must repair that too).
//!
//! The summary then locates, per `(drift, latency)`, the **viability
//! threshold**: the coarsest sync period at which synced PM still beats
//! the better of MPM and RG on EER inflation, together with the achieved
//! clock error at that period — the sync accuracy PM needs before it is
//! competitive again (the sensitivity framing of Sun, Soulat & Lipari's
//! parametric analysis, measured instead of derived).
//!
//! Like the other studies the run is embarrassingly parallel over
//! systems and bit-for-bit deterministic for a given seed regardless of
//! thread count.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::seeding::job_seed;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rtsync_core::analysis::AnalysisConfig;
use rtsync_core::protocol::Protocol;
use rtsync_core::task::TaskSet;
use rtsync_core::time::Dur;
use rtsync_sim::engine::{simulate, SimConfig, SimOutcome};
use rtsync_sim::nonideal::{eer_inflation, ChannelModel, ClockModel, NonidealConfig};
use rtsync_sim::{SyncConfig, SyncPolicy, SyncStats, ViolationKind};
use rtsync_workload::{generate, WorkloadSpec};

/// Sync-study parameters.
#[derive(Clone, Debug)]
pub struct SyncStudyConfig {
    /// Clock drift bounds ε in ppm (> 0 — an ideal clock needs no sync).
    pub drift_ppm_values: Vec<i64>,
    /// Signal latency bounds L in ticks (0 = instantaneous wire; sync
    /// frames then still flow as zero-delay events).
    pub latency_values: Vec<i64>,
    /// Sync-round periods in ticks, the accuracy axis: residual clock
    /// error scales like `drift · period + latency/2`.
    pub sync_periods: Vec<i64>,
    /// The correction policy of the synced runs.
    pub policy: SyncPolicy,
    /// Clock offset bound in ticks (a drifting clock also starts
    /// misaligned).
    pub max_offset: i64,
    /// Subtasks per task of the synthetic systems.
    pub n: usize,
    /// Per-processor utilization of the synthetic systems.
    pub u: f64,
    /// Systems evaluated per grid cell (the *same* systems in every cell).
    pub systems_per_config: usize,
    /// Master seed; system and nonideal seeds derive from it.
    pub seed: u64,
    /// End-to-end instances simulated per task.
    pub instances_per_task: u64,
    /// Worker threads.
    pub threads: usize,
    /// Analysis knobs (PM/MPM need SA/PM bounds).
    pub analysis: AnalysisConfig,
}

impl Default for SyncStudyConfig {
    fn default() -> SyncStudyConfig {
        SyncStudyConfig {
            drift_ppm_values: vec![10_000, 50_000],
            latency_values: vec![0, 1_000, 20_000],
            sync_periods: vec![10_000, 50_000, 200_000, 1_000_000],
            policy: SyncPolicy::Step,
            max_offset: 1_000,
            n: 3,
            u: 0.6,
            systems_per_config: 10,
            seed: 0xD81F_7002,
            instances_per_task: 10,
            threads: std::thread::available_parallelism().map_or(4, |n| n.get()),
            analysis: AnalysisConfig::default(),
        }
    }
}

impl SyncStudyConfig {
    /// A reduced study for CI smoke jobs and tests: the same axes with
    /// fewer levels and systems.
    pub fn smoke() -> SyncStudyConfig {
        SyncStudyConfig {
            drift_ppm_values: vec![50_000],
            latency_values: vec![0, 1_000],
            sync_periods: vec![20_000, 500_000],
            systems_per_config: 2,
            instances_per_task: 5,
            ..SyncStudyConfig::default()
        }
    }

    /// Simulation runs the study performs: per cell and system, one
    /// ideal + one unsynced run for each of PM/MPM/RG, plus one synced
    /// PM run per period.
    pub fn total_runs(&self) -> usize {
        self.drift_ppm_values.len()
            * self.latency_values.len()
            * self.systems_per_config
            * (6 + self.sync_periods.len())
    }
}

/// Mean-inflation accumulator.
#[derive(Clone, Copy, Default)]
struct InflTally {
    sum: f64,
    count: u64,
}

impl InflTally {
    fn absorb(&mut self, ideal: &SimOutcome, observed: &SimOutcome) {
        for ratio in eer_inflation(&ideal.metrics, &observed.metrics)
            .into_iter()
            .flatten()
        {
            self.sum += ratio;
            self.count += 1;
        }
    }

    fn mean(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.sum / self.count as f64
        }
    }
}

/// One synced PM run's contribution to a `(cell, period)` aggregate.
#[derive(Clone, Default)]
struct PeriodTally {
    inflation: InflTally,
    precedence_violations: u64,
    sync_error_sum: i64,
    sync_error_samples: u64,
    sync_max_error: i64,
    sync_max_uncertainty: i64,
    sync_rounds: u64,
    sync_frames: u64,
    channel_sent: u64,
}

/// One system's results in one `(drift, latency)` cell.
#[derive(Clone, Default)]
struct SystemTally {
    pm_unsynced: InflTally,
    pm_unsynced_precedence: u64,
    mpm: InflTally,
    rg: InflTally,
    per_period: Vec<PeriodTally>,
}

/// One `(drift, latency, period)` row of the grid.
#[derive(Clone, Debug)]
pub struct SyncCell {
    /// Clock drift bound ε in ppm.
    pub drift_ppm: i64,
    /// Signal latency bound L in ticks.
    pub latency: i64,
    /// Sync-round period in ticks.
    pub sync_period: i64,
    /// Mean per-task EER inflation of synced PM over ideal PM.
    pub pm_synced_inflation: f64,
    /// Synced PM precedence violations across the cell's systems.
    pub pm_synced_precedence: u64,
    /// Oracle mean `|corrected local − true|` at sync rounds (ticks).
    pub mean_clock_error: f64,
    /// Oracle worst clock error (ticks).
    pub max_clock_error: i64,
    /// Worst Marzullo half-width: the node-visible uncertainty bound.
    pub max_uncertainty: i64,
    /// Sync rounds executed across the cell's systems.
    pub sync_rounds: u64,
    /// Sync frames as a fraction of all channel sends.
    pub sync_traffic_share: f64,
}

/// The `(drift, latency)` summary: unsynced baselines and the viability
/// threshold over the period axis.
#[derive(Clone, Debug)]
pub struct SyncSummary {
    /// Clock drift bound ε in ppm.
    pub drift_ppm: i64,
    /// Signal latency bound L in ticks.
    pub latency: i64,
    /// Mean EER inflation of PM without sync (the 4–5x finding).
    pub pm_unsynced_inflation: f64,
    /// PM precedence violations without sync.
    pub pm_unsynced_precedence: u64,
    /// Mean EER inflation of MPM under the same conditions (no sync).
    pub mpm_inflation: f64,
    /// Mean EER inflation of RG under the same conditions (no sync).
    pub rg_inflation: f64,
    /// Coarsest swept sync period at which synced PM's inflation beats
    /// `min(MPM, RG)`; `None` when no swept period does.
    pub threshold_period: Option<i64>,
    /// Achieved mean clock error at the threshold period (ticks) — the
    /// sync accuracy PM needs to be competitive.
    pub threshold_clock_error: Option<f64>,
    /// Synced PM inflation at the threshold period.
    pub threshold_pm_inflation: Option<f64>,
}

/// The study outcome: the full grid plus its per-cell summary.
#[derive(Clone, Debug)]
pub struct SyncStudyOutcome {
    /// One row per `(drift, latency, period)`, row-major (drift outer,
    /// latency middle, period inner).
    pub cells: Vec<SyncCell>,
    /// One row per `(drift, latency)`.
    pub summaries: Vec<SyncSummary>,
}

/// The nonideal conditions of one `(drift, latency)` cell.
fn cell_conditions(
    cfg: &SyncStudyConfig,
    drift_ppm: i64,
    latency: i64,
    seed: u64,
) -> NonidealConfig {
    let mut ni = NonidealConfig::default().with_clocks(ClockModel::Random {
        max_offset: Dur::from_ticks(cfg.max_offset),
        max_drift_ppm: drift_ppm,
        seed,
    });
    if latency > 0 {
        ni = ni.with_channel(
            ChannelModel::uniform(Dur::ZERO, Dur::from_ticks(latency))
                .with_seed(seed ^ 0x5ca1_ab1e),
        );
    }
    ni
}

fn precedence_count(out: &SimOutcome) -> u64 {
    out.violations
        .iter()
        .filter(|v| v.kind == ViolationKind::PrecedenceViolated)
        .count() as u64
}

/// Evaluates one system in one `(drift, latency)` cell: ideal + unsynced
/// baselines for PM/MPM/RG, then one synced PM run per period.
fn evaluate_system(
    set: &TaskSet,
    cfg: &SyncStudyConfig,
    conditions: &NonidealConfig,
) -> SystemTally {
    let base = |protocol: Protocol| SimConfig::new(protocol).with_instances(cfg.instances_per_task);
    let run = |simcfg: &SimConfig| simulate(set, simcfg).expect("study systems are analyzable");

    let mut tally = SystemTally::default();
    for protocol in [
        Protocol::PhaseModification,
        Protocol::ModifiedPhaseModification,
        Protocol::ReleaseGuard,
    ] {
        let ideal = run(&base(protocol));
        let observed = run(&base(protocol).with_nonideal(conditions.clone()));
        match protocol {
            Protocol::PhaseModification => {
                tally.pm_unsynced.absorb(&ideal, &observed);
                tally.pm_unsynced_precedence = precedence_count(&observed);
            }
            Protocol::ModifiedPhaseModification => tally.mpm.absorb(&ideal, &observed),
            _ => tally.rg.absorb(&ideal, &observed),
        }
    }

    let pm_ideal = run(&base(Protocol::PhaseModification));
    for &period in &cfg.sync_periods {
        let synced = run(&base(Protocol::PhaseModification)
            .with_nonideal(conditions.clone())
            .with_sync(SyncConfig::new(Dur::from_ticks(period)).with_policy(cfg.policy)));
        let s: &SyncStats = &synced.sync_stats;
        let mut pt = PeriodTally {
            precedence_violations: precedence_count(&synced),
            sync_error_sum: s.sum_true_error,
            sync_error_samples: s.true_error_samples,
            sync_max_error: s.max_true_error.ticks(),
            sync_max_uncertainty: s.max_uncertainty.ticks(),
            sync_rounds: s.rounds,
            sync_frames: s.frames,
            channel_sent: synced.channel_stats.sent,
            ..PeriodTally::default()
        };
        pt.inflation.absorb(&pm_ideal, &synced);
        tally.per_period.push(pt);
    }
    tally
}

/// Runs the whole study. See [`SyncStudyOutcome`] for the result layout.
pub fn run_sync_study(cfg: &SyncStudyConfig) -> SyncStudyOutcome {
    let spec = WorkloadSpec::paper(cfg.n, cfg.u).with_random_phases();
    let system_seeds: Vec<u64> = (0..cfg.systems_per_config)
        .map(|i| job_seed(cfg.seed, 0, i))
        .collect();

    let conditions: Vec<(i64, i64)> = cfg
        .drift_ppm_values
        .iter()
        .flat_map(|&eps| cfg.latency_values.iter().map(move |&l| (eps, l)))
        .collect();
    let jobs: Vec<(usize, usize)> = (0..conditions.len())
        .flat_map(|c| (0..cfg.systems_per_config).map(move |s| (c, s)))
        .collect();

    let results: Mutex<Vec<Option<SystemTally>>> = Mutex::new(vec![None; jobs.len()]);
    let next = AtomicUsize::new(0);
    let threads = cfg.threads.clamp(1, jobs.len().max(1));
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let j = next.fetch_add(1, Ordering::Relaxed);
                if j >= jobs.len() {
                    break;
                }
                let (c, s) = jobs[j];
                let (eps, latency) = conditions[c];
                let mut rng = StdRng::seed_from_u64(system_seeds[s]);
                let set = generate(&spec, &mut rng).expect("paper spec always generates");
                let cell = cell_conditions(cfg, eps, latency, job_seed(cfg.seed, c + 1, s));
                let tally = evaluate_system(&set, cfg, &cell);
                results.lock().expect("no panics while holding the lock")[j] = Some(tally);
            });
        }
    });
    let results: Vec<SystemTally> = results
        .into_inner()
        .expect("lock released")
        .into_iter()
        .map(|t| t.expect("every job was evaluated"))
        .collect();

    let mut cells = Vec::new();
    let mut summaries = Vec::new();
    for (c, &(eps, latency)) in conditions.iter().enumerate() {
        let systems = &results[c * cfg.systems_per_config..(c + 1) * cfg.systems_per_config];
        let mut pm_unsynced = InflTally::default();
        let mut mpm = InflTally::default();
        let mut rg = InflTally::default();
        let mut pm_unsynced_precedence = 0;
        for t in systems {
            pm_unsynced.sum += t.pm_unsynced.sum;
            pm_unsynced.count += t.pm_unsynced.count;
            mpm.sum += t.mpm.sum;
            mpm.count += t.mpm.count;
            rg.sum += t.rg.sum;
            rg.count += t.rg.count;
            pm_unsynced_precedence += t.pm_unsynced_precedence;
        }

        let mut cell_rows = Vec::new();
        for (pi, &period) in cfg.sync_periods.iter().enumerate() {
            let mut infl = InflTally::default();
            let mut agg = PeriodTally::default();
            for t in systems {
                let pt = &t.per_period[pi];
                infl.sum += pt.inflation.sum;
                infl.count += pt.inflation.count;
                agg.precedence_violations += pt.precedence_violations;
                agg.sync_error_sum += pt.sync_error_sum;
                agg.sync_error_samples += pt.sync_error_samples;
                agg.sync_max_error = agg.sync_max_error.max(pt.sync_max_error);
                agg.sync_max_uncertainty = agg.sync_max_uncertainty.max(pt.sync_max_uncertainty);
                agg.sync_rounds += pt.sync_rounds;
                agg.sync_frames += pt.sync_frames;
                agg.channel_sent += pt.channel_sent;
            }
            cell_rows.push(SyncCell {
                drift_ppm: eps,
                latency,
                sync_period: period,
                pm_synced_inflation: infl.mean(),
                pm_synced_precedence: agg.precedence_violations,
                mean_clock_error: if agg.sync_error_samples == 0 {
                    f64::NAN
                } else {
                    agg.sync_error_sum as f64 / agg.sync_error_samples as f64
                },
                max_clock_error: agg.sync_max_error,
                max_uncertainty: agg.sync_max_uncertainty,
                sync_rounds: agg.sync_rounds,
                sync_traffic_share: if agg.channel_sent == 0 {
                    f64::NAN
                } else {
                    agg.sync_frames as f64 / agg.channel_sent as f64
                },
            });
        }

        // The viability threshold: the coarsest (cheapest) period whose
        // synced PM still beats the better unsynced alternative.
        let alternative = mpm.mean().min(rg.mean());
        let threshold = cell_rows
            .iter()
            .filter(|r| r.pm_synced_inflation < alternative)
            .max_by_key(|r| r.sync_period);
        summaries.push(SyncSummary {
            drift_ppm: eps,
            latency,
            pm_unsynced_inflation: pm_unsynced.mean(),
            pm_unsynced_precedence,
            mpm_inflation: mpm.mean(),
            rg_inflation: rg.mean(),
            threshold_period: threshold.map(|r| r.sync_period),
            threshold_clock_error: threshold.map(|r| r.mean_clock_error),
            threshold_pm_inflation: threshold.map(|r| r.pm_synced_inflation),
        });
        cells.extend(cell_rows);
    }
    SyncStudyOutcome { cells, summaries }
}

/// Long-format CSV of the grid: one row per `(drift, latency, period)`.
pub fn grid_csv(outcome: &SyncStudyOutcome) -> String {
    let mut out = String::from(
        "drift_ppm,latency,sync_period,pm_synced_inflation,pm_synced_precedence,\
         mean_clock_error,max_clock_error,max_uncertainty,sync_rounds,sync_traffic_share\n",
    );
    for c in &outcome.cells {
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{},{},{}\n",
            c.drift_ppm,
            c.latency,
            c.sync_period,
            fmt_f64(c.pm_synced_inflation),
            c.pm_synced_precedence,
            fmt_f64(c.mean_clock_error),
            c.max_clock_error,
            c.max_uncertainty,
            c.sync_rounds,
            fmt_f64(c.sync_traffic_share),
        ));
    }
    out
}

/// Summary CSV: one row per `(drift, latency)` with the viability
/// threshold.
pub fn summary_csv(outcome: &SyncStudyOutcome) -> String {
    let mut out = String::from(
        "drift_ppm,latency,pm_unsynced_inflation,pm_unsynced_precedence,mpm_inflation,\
         rg_inflation,threshold_period,threshold_clock_error,threshold_pm_inflation\n",
    );
    for s in &outcome.summaries {
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{},{}\n",
            s.drift_ppm,
            s.latency,
            fmt_f64(s.pm_unsynced_inflation),
            s.pm_unsynced_precedence,
            fmt_f64(s.mpm_inflation),
            fmt_f64(s.rg_inflation),
            s.threshold_period.map_or(String::new(), |p| p.to_string()),
            s.threshold_clock_error
                .map_or(String::new(), |e| format!("{e:.2}")),
            s.threshold_pm_inflation
                .map_or(String::new(), |i| format!("{i:.4}")),
        ));
    }
    out
}

/// ASCII rendering for the terminal.
pub fn render(outcome: &SyncStudyOutcome) -> String {
    let mut out = String::from("sync study: PM EER inflation vs sync period\n");
    for s in &outcome.summaries {
        out.push_str(&format!(
            "  ε = {:>6} ppm, L = {:>6} ticks: PM x{} unsynced ({} violations), MPM x{}, RG x{}\n",
            s.drift_ppm,
            s.latency,
            fmt_f64(s.pm_unsynced_inflation),
            s.pm_unsynced_precedence,
            fmt_f64(s.mpm_inflation),
            fmt_f64(s.rg_inflation),
        ));
        for c in outcome
            .cells
            .iter()
            .filter(|c| c.drift_ppm == s.drift_ppm && c.latency == s.latency)
        {
            out.push_str(&format!(
                "    period {:>9}: x{:<8} clock err {:>8.1} (max {}), {} rounds, {:.1}% of wire{}\n",
                c.sync_period,
                fmt_f64(c.pm_synced_inflation),
                c.mean_clock_error,
                c.max_clock_error,
                c.sync_rounds,
                c.sync_traffic_share * 100.0,
                if c.pm_synced_precedence > 0 {
                    format!(", {} violations", c.pm_synced_precedence)
                } else {
                    String::new()
                },
            ));
        }
        match (s.threshold_period, s.threshold_clock_error) {
            (Some(p), Some(e)) => out.push_str(&format!(
                "    -> PM beats min(MPM, RG) up to period {p} (clock error {e:.1} ticks)\n"
            )),
            _ => out.push_str("    -> no swept period makes PM competitive\n"),
        }
    }
    out
}

/// Re-runs the PM rows of the [`robustness`](crate::robustness) grid with
/// the sync layer attached, as a drop-in companion to
/// `robustness_inflation_pm.csv`: same drift × latency matrix, same
/// systems and seeds, PM only, synced at `sync_period` with `policy`.
pub fn robustness_pm_synced_csv(
    rcfg: &crate::robustness::RobustnessConfig,
    sync_period: i64,
    policy: SyncPolicy,
) -> String {
    let spec = WorkloadSpec::paper(rcfg.n, rcfg.u).with_random_phases();
    let system_seeds: Vec<u64> = (0..rcfg.systems_per_config)
        .map(|i| job_seed(rcfg.seed, 0, i))
        .collect();
    let cells: Vec<(i64, i64)> = rcfg
        .drift_ppm_values
        .iter()
        .flat_map(|&eps| rcfg.latency_values.iter().map(move |&l| (eps, l)))
        .collect();
    let jobs: Vec<(usize, usize)> = (0..cells.len())
        .flat_map(|c| (0..rcfg.systems_per_config).map(move |s| (c, s)))
        .collect();

    let results: Mutex<Vec<Option<InflTally>>> = Mutex::new(vec![None; jobs.len()]);
    let next = AtomicUsize::new(0);
    let threads = rcfg.threads.clamp(1, jobs.len().max(1));
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let j = next.fetch_add(1, Ordering::Relaxed);
                if j >= jobs.len() {
                    break;
                }
                let (c, s) = jobs[j];
                let (eps, latency) = cells[c];
                let mut rng = StdRng::seed_from_u64(system_seeds[s]);
                let set = generate(&spec, &mut rng).expect("paper spec always generates");
                // Identical conditions to the unsynced robustness grid
                // (same derived seeds), plus the sync layer.
                let mut ni = NonidealConfig::default();
                let seed = job_seed(rcfg.seed, c + 1, s);
                if eps > 0 {
                    ni = ni.with_clocks(ClockModel::Random {
                        max_offset: Dur::from_ticks(rcfg.max_offset),
                        max_drift_ppm: eps,
                        seed,
                    });
                }
                if latency > 0 {
                    ni = ni.with_channel(
                        ChannelModel::uniform(Dur::ZERO, Dur::from_ticks(latency))
                            .with_seed(seed ^ 0x5ca1_ab1e),
                    );
                }
                let base = SimConfig::new(Protocol::PhaseModification)
                    .with_instances(rcfg.instances_per_task);
                let ideal = simulate(&set, &base).expect("study systems are analyzable");
                let synced = simulate(
                    &set,
                    &base.clone().with_nonideal(ni).with_sync(
                        SyncConfig::new(Dur::from_ticks(sync_period)).with_policy(policy),
                    ),
                )
                .expect("same system, same analysis");
                let mut tally = InflTally::default();
                tally.absorb(&ideal, &synced);
                results.lock().expect("no panics while holding the lock")[j] = Some(tally);
            });
        }
    });
    let results: Vec<InflTally> = results
        .into_inner()
        .expect("lock released")
        .into_iter()
        .map(|t| t.expect("every job was evaluated"))
        .collect();

    let mut out = String::from("drift_ppm");
    for l in &rcfg.latency_values {
        out.push_str(&format!(",L={l}"));
    }
    out.push('\n');
    for (d, &eps) in rcfg.drift_ppm_values.iter().enumerate() {
        out.push_str(&eps.to_string());
        for l in 0..rcfg.latency_values.len() {
            let c = d * rcfg.latency_values.len() + l;
            let mut cell = InflTally::default();
            for s in 0..rcfg.systems_per_config {
                let t = &results[c * rcfg.systems_per_config + s];
                cell.sum += t.sum;
                cell.count += t.count;
            }
            let v = cell.mean();
            if v.is_finite() {
                out.push_str(&format!(",{v:.4}"));
            } else {
                out.push(',');
            }
        }
        out.push('\n');
    }
    out
}

fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.4}")
    } else {
        String::from("NaN")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> SyncStudyConfig {
        SyncStudyConfig {
            drift_ppm_values: vec![50_000],
            latency_values: vec![0],
            sync_periods: vec![20_000, 2_000_000],
            systems_per_config: 2,
            instances_per_task: 5,
            threads: 2,
            ..SyncStudyConfig::default()
        }
    }

    #[test]
    fn tight_sync_beats_loose_sync_and_no_sync() {
        let outcome = run_sync_study(&tiny_cfg());
        assert_eq!(outcome.cells.len(), 2);
        assert_eq!(outcome.summaries.len(), 1);
        let (tight, loose) = (&outcome.cells[0], &outcome.cells[1]);
        let summary = &outcome.summaries[0];
        assert!(
            summary.pm_unsynced_inflation > tight.pm_synced_inflation,
            "sync must reclaim inflation: {} unsynced vs {} synced",
            summary.pm_unsynced_inflation,
            tight.pm_synced_inflation
        );
        assert!(
            tight.mean_clock_error < loose.mean_clock_error,
            "a 100x tighter period must achieve lower clock error \
             ({} vs {})",
            tight.mean_clock_error,
            loose.mean_clock_error
        );
        assert!(tight.sync_rounds > loose.sync_rounds);
        assert!(tight.sync_traffic_share > 0.0);
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let mut cfg = tiny_cfg();
        cfg.threads = 1;
        let a = run_sync_study(&cfg);
        cfg.threads = 4;
        let b = run_sync_study(&cfg);
        assert_eq!(grid_csv(&a), grid_csv(&b));
        assert_eq!(summary_csv(&a), summary_csv(&b));
    }

    #[test]
    fn csv_shapes() {
        let outcome = run_sync_study(&tiny_cfg());
        let grid = grid_csv(&outcome);
        assert_eq!(grid.lines().count(), 1 + 2); // header + 1 cell x 2 periods
        let summary = summary_csv(&outcome);
        assert_eq!(summary.lines().count(), 1 + 1);
        assert!(summary.starts_with("drift_ppm,latency,pm_unsynced_inflation"));
    }

    #[test]
    fn pm_synced_matrix_has_grid_shape() {
        let rcfg = crate::robustness::RobustnessConfig {
            drift_ppm_values: vec![0, 50_000],
            latency_values: vec![0, 1_000],
            systems_per_config: 1,
            instances_per_task: 4,
            threads: 2,
            ..crate::robustness::RobustnessConfig::default()
        };
        let csv = robustness_pm_synced_csv(&rcfg, 20_000, SyncPolicy::Step);
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("drift_ppm,L=0,L=1000"));
        // The ideal-clock, zero-latency cell is exactly 1.0: every
        // exchange measures a zero offset with zero uncertainty, so sync
        // corrects nothing. (The L>0 columns need not be 1.0 even with
        // ideal clocks — asymmetric exchange latency makes the estimates
        // jitter, and Step applies that jitter.)
        let ideal = lines.next().unwrap();
        assert!(ideal.starts_with("0,1.0000,"), "{ideal}");
        assert_eq!(csv.lines().count(), 1 + 2);
    }
}
