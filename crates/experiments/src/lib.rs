//! # rtsync-experiments
//!
//! The reproduction harness for the evaluation of Sun & Liu (ICDCS 1996):
//!
//! * [`traces`] — the schedule-illustration figures (3, 5, 6, 7) replayed
//!   exactly on the paper's running examples;
//! * [`study`] — the §5 simulation study: synthetic systems per
//!   configuration `(N, U)`, analyzed with SA/PM and SA/DS and simulated
//!   under the DS, PM and RG protocols;
//! * [`figures`] — the mapping from study outcomes to Figures 12–16;
//! * [`robustness`] — the nonideal-conditions grid (clock drift ×
//!   signal latency) measuring the paper's §6 robustness claims;
//! * [`transport`] — the endpoint-transport study: miss/loss ratio and
//!   EER inflation over drop rate × timeout × backoff, plus heartbeat
//!   failure-detector accuracy against a ground-truth crash schedule;
//! * [`sync`] — the clock-synchronization study: PM's EER inflation
//!   over drift × latency × sync-period, the achieved clock error, and
//!   the sync-accuracy threshold at which PM beats MPM/RG again;
//! * [`grid`] — `(N, U)` result grids with CSV/ASCII rendering.
//!
//! The `reproduce` binary drives all of it:
//!
//! ```text
//! reproduce all --systems 1000 --out results/
//! reproduce fig12 fig13
//! reproduce fig7
//! ```
//!
//! ```
//! use rtsync_experiments::study::{run_config, StudyConfig};
//!
//! let cfg = StudyConfig {
//!     systems_per_config: 2,
//!     instances_per_task: 5,
//!     ..StudyConfig::default()
//! };
//! let outcome = run_config(3, 0.6, &cfg);
//! assert_eq!(outcome.systems, 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod admit;
pub mod adversary;
pub mod chaos;
pub mod compare;
pub mod convergence;
pub mod exact;
pub mod figures;
pub mod gray;
pub mod grid;
pub mod robustness;
pub mod seeding;
pub mod study;
pub mod sync;
pub mod tightness;
pub mod traces;
pub mod transport;

pub use admit::{run_admit_study, AdmitCell, AdmitOutcome, AdmitStudyConfig, AdmitVerdict};
pub use adversary::{run_adversary, AdversaryCell, AdversaryConfig, AdversaryOutcome};
pub use chaos::{run_chaos, ChaosConfig, ChaosFailure, ChaosOutcome, ReproBundle};
pub use figures::{figure_grid, Figure};
pub use gray::{run_gray, GrayCell, GrayOutcome, GrayStudyConfig, GrayVerdict};
pub use grid::Grid;
pub use robustness::{run_robustness, RobustnessCell, RobustnessConfig};
pub use study::{run_config, run_study, ConfigOutcome, StudyConfig};
pub use sync::{run_sync_study, SyncStudyConfig, SyncStudyOutcome};
pub use traces::TraceFigure;
pub use transport::{run_transport_study, TransportOutcome, TransportStudyConfig};
