//! The nonideal-conditions robustness study: a grid over clock drift ε
//! and signal latency L, all four protocols, on synthetic §5.1 systems.
//!
//! The paper argues (§4, §6) that PM "requires that clocks on different
//! processors be synchronized" while MPM and RG need only local clocks
//! and tolerate late signals. This study measures that claim: each grid
//! cell simulates the same set of synthetic systems under ideal and
//! nonideal conditions and reports, per protocol,
//!
//! * **EER inflation** — mean per-task `avg-EER(nonideal) /
//!   avg-EER(ideal)`;
//! * **deadline-miss rate** — missed / measured end-to-end instances;
//! * **precedence violations** — successors released before their
//!   predecessor's completion (PM's failure mode, and an over-drifted
//!   MPM timer's).
//!
//! Like [`study`](crate::study), the run is embarrassingly parallel over
//! systems and bit-for-bit deterministic for a given seed regardless of
//! the thread count.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::seeding::job_seed;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rtsync_core::analysis::AnalysisConfig;
use rtsync_core::protocol::Protocol;
use rtsync_core::task::TaskSet;
use rtsync_core::time::Dur;
use rtsync_sim::engine::{simulate, SimConfig};
use rtsync_sim::nonideal::{eer_inflation, ChannelModel, ClockModel, NonidealConfig};
use rtsync_sim::ViolationKind;
use rtsync_workload::{generate, WorkloadSpec};

/// Robustness-grid parameters.
#[derive(Clone, Debug)]
pub struct RobustnessConfig {
    /// Clock drift bounds ε in parts per million (0 = ideal clocks).
    pub drift_ppm_values: Vec<i64>,
    /// Signal latency bounds L in ticks (0 = instantaneous signals).
    /// The §5.1 workload uses 1000 ticks per paper time unit and periods
    /// of 100–10,000 units, so meaningful latencies are thousands of
    /// ticks — a 1-tick "network" is invisible at this resolution.
    pub latency_values: Vec<i64>,
    /// Clock offset bound in ticks, applied whenever ε > 0 (a drifting
    /// clock also starts misaligned).
    pub max_offset: i64,
    /// Subtasks per task of the synthetic systems.
    pub n: usize,
    /// Per-processor utilization of the synthetic systems.
    pub u: f64,
    /// Systems evaluated per grid cell (the *same* systems in every cell).
    pub systems_per_config: usize,
    /// Master seed; system and nonideal seeds derive from it.
    pub seed: u64,
    /// End-to-end instances simulated per task.
    pub instances_per_task: u64,
    /// Worker threads.
    pub threads: usize,
    /// Analysis knobs (PM/MPM need SA/PM bounds).
    pub analysis: AnalysisConfig,
}

impl Default for RobustnessConfig {
    fn default() -> RobustnessConfig {
        RobustnessConfig {
            drift_ppm_values: vec![0, 1_000, 10_000, 50_000],
            latency_values: vec![0, 1_000, 20_000, 100_000],
            max_offset: 1_000,
            n: 3,
            u: 0.6,
            systems_per_config: 10,
            seed: 0xD81F_7001,
            instances_per_task: 20,
            threads: std::thread::available_parallelism().map_or(4, |n| n.get()),
            analysis: AnalysisConfig::default(),
        }
    }
}

/// One protocol's aggregate over one grid cell.
#[derive(Clone, Copy, Debug)]
pub struct ProtocolRobustness {
    /// The protocol.
    pub protocol: Protocol,
    /// Mean per-task EER inflation over the ideal run (1.0 = unaffected;
    /// `NaN` when no task completed in both runs).
    pub mean_inflation: f64,
    /// Missed / measured end-to-end instances.
    pub miss_rate: f64,
    /// Total precedence violations across the cell's systems.
    pub precedence_violations: u64,
    /// Total MPM timer overruns across the cell's systems.
    pub mpm_overruns: u64,
}

/// One cell of the drift × latency grid.
#[derive(Clone, Debug)]
pub struct RobustnessCell {
    /// Clock drift bound ε in ppm.
    pub drift_ppm: i64,
    /// Signal latency bound L in ticks.
    pub latency: i64,
    /// Aggregates in [`Protocol::ALL`] order.
    pub protocols: Vec<ProtocolRobustness>,
}

/// Per-system, per-protocol raw numbers (summed into the cell aggregate).
#[derive(Clone, Copy, Default)]
struct Tally {
    inflation_sum: f64,
    inflation_count: u64,
    missed: u64,
    measured: u64,
    precedence_violations: u64,
    mpm_overruns: u64,
}

/// The nonideal conditions of one grid cell.
fn cell_conditions(
    cfg: &RobustnessConfig,
    drift_ppm: i64,
    latency: i64,
    seed: u64,
) -> NonidealConfig {
    let mut ni = NonidealConfig::default();
    if drift_ppm > 0 {
        ni = ni.with_clocks(ClockModel::Random {
            max_offset: Dur::from_ticks(cfg.max_offset),
            max_drift_ppm: drift_ppm,
            seed,
        });
    }
    if latency > 0 {
        ni = ni.with_channel(
            ChannelModel::uniform(Dur::ZERO, Dur::from_ticks(latency))
                .with_seed(seed ^ 0x5ca1_ab1e),
        );
    }
    ni
}

/// Evaluates one system in one cell: ideal + nonideal run per protocol.
fn evaluate_system(
    set: &TaskSet,
    cfg: &RobustnessConfig,
    conditions: &NonidealConfig,
) -> Vec<Tally> {
    Protocol::ALL
        .iter()
        .map(|&protocol| {
            let ideal = simulate(
                set,
                &SimConfig::new(protocol).with_instances(cfg.instances_per_task),
            )
            .expect("study systems are analyzable under SA/PM");
            let observed = simulate(
                set,
                &SimConfig::new(protocol)
                    .with_instances(cfg.instances_per_task)
                    .with_nonideal(conditions.clone()),
            )
            .expect("same system, same analysis");
            let mut tally = Tally::default();
            for ratio in eer_inflation(&ideal.metrics, &observed.metrics)
                .into_iter()
                .flatten()
            {
                tally.inflation_sum += ratio;
                tally.inflation_count += 1;
            }
            for t in observed.metrics.tasks() {
                tally.missed += t.deadline_misses();
                tally.measured += t.measured();
            }
            tally.precedence_violations = observed
                .violations
                .iter()
                .filter(|v| v.kind == ViolationKind::PrecedenceViolated)
                .count() as u64;
            tally.mpm_overruns = observed
                .violations
                .iter()
                .filter(|v| v.kind == ViolationKind::MpmOverrun)
                .count() as u64;
            tally
        })
        .collect()
}

/// Runs the whole drift × latency grid. Cells come back in row-major
/// order (drift outer, latency inner). The same synthetic systems are
/// reused in every cell, so cells differ only in the modeled conditions.
pub fn run_robustness(cfg: &RobustnessConfig) -> Vec<RobustnessCell> {
    let spec = WorkloadSpec::paper(cfg.n, cfg.u).with_random_phases();
    let system_seeds: Vec<u64> = (0..cfg.systems_per_config)
        .map(|i| job_seed(cfg.seed, 0, i))
        .collect();

    // Flat job list: (cell index, system index), deterministic seeds.
    let cells: Vec<(i64, i64)> = cfg
        .drift_ppm_values
        .iter()
        .flat_map(|&eps| cfg.latency_values.iter().map(move |&l| (eps, l)))
        .collect();
    let jobs: Vec<(usize, usize)> = (0..cells.len())
        .flat_map(|c| (0..cfg.systems_per_config).map(move |s| (c, s)))
        .collect();

    let results: Mutex<Vec<Option<Vec<Tally>>>> = Mutex::new(vec![None; jobs.len()]);
    let next = AtomicUsize::new(0);
    let threads = cfg.threads.clamp(1, jobs.len().max(1));
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let j = next.fetch_add(1, Ordering::Relaxed);
                if j >= jobs.len() {
                    break;
                }
                let (c, s) = jobs[j];
                let (eps, latency) = cells[c];
                let mut rng = StdRng::seed_from_u64(system_seeds[s]);
                let set = generate(&spec, &mut rng).expect("paper spec always generates");
                let conditions = cell_conditions(cfg, eps, latency, job_seed(cfg.seed, c + 1, s));
                let tallies = evaluate_system(&set, cfg, &conditions);
                results.lock().expect("no panics while holding the lock")[j] = Some(tallies);
            });
        }
    });
    let results: Vec<Vec<Tally>> = results
        .into_inner()
        .expect("lock released")
        .into_iter()
        .map(|t| t.expect("every job was evaluated"))
        .collect();

    cells
        .iter()
        .enumerate()
        .map(|(c, &(eps, latency))| {
            let mut sums = vec![Tally::default(); Protocol::ALL.len()];
            for s in 0..cfg.systems_per_config {
                for (p, t) in results[c * cfg.systems_per_config + s].iter().enumerate() {
                    sums[p].inflation_sum += t.inflation_sum;
                    sums[p].inflation_count += t.inflation_count;
                    sums[p].missed += t.missed;
                    sums[p].measured += t.measured;
                    sums[p].precedence_violations += t.precedence_violations;
                    sums[p].mpm_overruns += t.mpm_overruns;
                }
            }
            RobustnessCell {
                drift_ppm: eps,
                latency,
                protocols: Protocol::ALL
                    .iter()
                    .zip(&sums)
                    .map(|(&protocol, t)| ProtocolRobustness {
                        protocol,
                        mean_inflation: if t.inflation_count == 0 {
                            f64::NAN
                        } else {
                            t.inflation_sum / t.inflation_count as f64
                        },
                        miss_rate: if t.measured == 0 {
                            f64::NAN
                        } else {
                            t.missed as f64 / t.measured as f64
                        },
                        precedence_violations: t.precedence_violations,
                        mpm_overruns: t.mpm_overruns,
                    })
                    .collect(),
            }
        })
        .collect()
}

/// Long-format CSV over the whole grid: one row per (cell, protocol).
pub fn to_csv(cells: &[RobustnessCell]) -> String {
    let mut out = String::from(
        "drift_ppm,latency,protocol,mean_inflation,miss_rate,precedence_violations,mpm_overruns\n",
    );
    for cell in cells {
        for p in &cell.protocols {
            out.push_str(&format!(
                "{},{},{},{},{},{},{}\n",
                cell.drift_ppm,
                cell.latency,
                p.protocol.tag(),
                fmt_f64(p.mean_inflation),
                fmt_f64(p.miss_rate),
                p.precedence_violations,
                p.mpm_overruns,
            ));
        }
    }
    out
}

/// One protocol's inflation matrix as CSV: rows ε, columns L.
pub fn inflation_matrix_csv(cells: &[RobustnessCell], protocol: Protocol) -> String {
    let mut drifts: Vec<i64> = cells.iter().map(|c| c.drift_ppm).collect();
    drifts.dedup();
    let mut latencies: Vec<i64> = cells.iter().map(|c| c.latency).collect();
    latencies.sort_unstable();
    latencies.dedup();
    let mut out = String::from("drift_ppm");
    for l in &latencies {
        out.push_str(&format!(",L={l}"));
    }
    out.push('\n');
    for eps in drifts {
        out.push_str(&eps.to_string());
        for &l in &latencies {
            let v = cells
                .iter()
                .find(|c| c.drift_ppm == eps && c.latency == l)
                .and_then(|c| {
                    c.protocols
                        .iter()
                        .find(|p| p.protocol == protocol)
                        .map(|p| p.mean_inflation)
                });
            match v {
                Some(v) if v.is_finite() => out.push_str(&format!(",{v:.4}")),
                _ => out.push(','),
            }
        }
        out.push('\n');
    }
    out
}

/// ASCII rendering of the grid for the terminal.
pub fn render(cells: &[RobustnessCell]) -> String {
    let mut out =
        String::from("robustness grid: mean EER inflation (miss rate | precedence violations)\n");
    for cell in cells {
        out.push_str(&format!(
            "  ε = {:>6} ppm, L = {} ticks:\n",
            cell.drift_ppm, cell.latency
        ));
        for p in &cell.protocols {
            out.push_str(&format!(
                "    {:>3}: x{:<7} ({:.3} | {}{})\n",
                p.protocol.tag(),
                fmt_f64(p.mean_inflation),
                p.miss_rate,
                p.precedence_violations,
                if p.mpm_overruns > 0 {
                    format!(", {} MPM overruns", p.mpm_overruns)
                } else {
                    String::new()
                },
            ));
        }
    }
    out
}

fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.4}")
    } else {
        String::from("NaN")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> RobustnessConfig {
        RobustnessConfig {
            drift_ppm_values: vec![0, 50_000],
            latency_values: vec![0, 50_000],
            systems_per_config: 2,
            instances_per_task: 8,
            threads: 2,
            ..RobustnessConfig::default()
        }
    }

    #[test]
    fn ideal_cell_reads_inflation_one() {
        let cells = run_robustness(&tiny_cfg());
        let ideal = &cells[0];
        assert_eq!((ideal.drift_ppm, ideal.latency), (0, 0));
        for p in &ideal.protocols {
            assert!(
                (p.mean_inflation - 1.0).abs() < 1e-12,
                "{}: {}",
                p.protocol.tag(),
                p.mean_inflation
            );
            assert_eq!(p.precedence_violations, 0, "{}", p.protocol.tag());
        }
    }

    #[test]
    fn drift_breaks_pm_but_not_rg() {
        let cells = run_robustness(&tiny_cfg());
        let drifted = cells
            .iter()
            .find(|c| c.drift_ppm == 50_000 && c.latency == 0)
            .unwrap();
        let of = |proto: Protocol| {
            drifted
                .protocols
                .iter()
                .find(|p| p.protocol == proto)
                .unwrap()
        };
        assert!(
            of(Protocol::PhaseModification).precedence_violations > 0,
            "5% drift with offsets must break PM"
        );
        assert_eq!(of(Protocol::ReleaseGuard).precedence_violations, 0);
        assert_eq!(of(Protocol::DirectSync).precedence_violations, 0);
    }

    #[test]
    fn latency_inflates_signal_driven_eer() {
        let cells = run_robustness(&tiny_cfg());
        let delayed = cells
            .iter()
            .find(|c| c.drift_ppm == 0 && c.latency == 50_000)
            .unwrap();
        for proto in [
            Protocol::DirectSync,
            Protocol::ModifiedPhaseModification,
            Protocol::ReleaseGuard,
        ] {
            let p = delayed
                .protocols
                .iter()
                .find(|p| p.protocol == proto)
                .unwrap();
            assert!(
                p.mean_inflation > 1.0001,
                "{}: 50k-tick latency must visibly inflate EER, got {}",
                proto.tag(),
                p.mean_inflation
            );
        }
        // PM sends no signals: latency alone cannot touch it.
        let pm = delayed
            .protocols
            .iter()
            .find(|p| p.protocol == Protocol::PhaseModification)
            .unwrap();
        assert!(
            (pm.mean_inflation - 1.0).abs() < 1e-12,
            "{}",
            pm.mean_inflation
        );
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let mut cfg = tiny_cfg();
        cfg.threads = 1;
        let a = run_robustness(&cfg);
        cfg.threads = 4;
        let b = run_robustness(&cfg);
        assert_eq!(to_csv(&a), to_csv(&b));
    }

    #[test]
    fn csv_shapes() {
        let cells = run_robustness(&tiny_cfg());
        let csv = to_csv(&cells);
        // Header + 4 cells × 4 protocols.
        assert_eq!(csv.lines().count(), 1 + 4 * 4);
        let matrix = inflation_matrix_csv(&cells, Protocol::ReleaseGuard);
        assert_eq!(matrix.lines().count(), 1 + 2); // header + 2 drift rows
        assert!(matrix.starts_with("drift_ppm,L=0,L=50000"));
    }
}
