//! Exhaustive worst-case search for small systems.
//!
//! The paper (§2): "The actual worst-case EER times of tasks can be found
//! only via exhaustive search, which is too time consuming to be practical
//! even for small systems." For *small enough* systems it is practical:
//! [`exact_worst_case`] enumerates task phase combinations over a grid,
//! simulates each, and returns the worst end-to-end response observed per
//! task — a certified **lower** bound on the true worst case that
//! sandwiches the analyses:
//!
//! ```text
//! exact_worst_case  ≤  true worst case  ≤  analyzed bound
//! ```
//!
//! With a full integer grid (`phase_steps = 0`, meaning every integer
//! phase in `[0, p_i)`) and an execution long enough to cover the
//! hyperperiod, the search is exhaustive over phasings. On the paper's
//! Example 2 under DS it finds **8** — exactly the SA/DS fixpoint,
//! certifying that bound tight (and settling the paper's "7" as a typo).

use rtsync_core::protocol::Protocol;
use rtsync_core::task::{TaskSet, TaskSetBuilder};
use rtsync_core::time::{Dur, Time};
use rtsync_sim::engine::{simulate, SimConfig, SimulateError};

/// Parameters of the search.
#[derive(Clone, Copy, Debug)]
pub struct ExactConfig {
    /// Phase grid points per task: each task's phase ranges over
    /// `k · p_i / phase_steps`. `0` means *every integer phase* in
    /// `[0, p_i)` (truly exhaustive, only for tiny periods).
    pub phase_steps: usize,
    /// End-to-end instances to simulate per combination.
    pub instances_per_task: u64,
    /// Abort (panic) if the grid would exceed this many combinations —
    /// a guard against accidentally exponential searches.
    pub max_combinations: u64,
}

impl Default for ExactConfig {
    fn default() -> ExactConfig {
        ExactConfig {
            phase_steps: 4,
            instances_per_task: 20,
            max_combinations: 100_000,
        }
    }
}

/// Rebuilds `set` with the given task phases.
pub fn with_phases(set: &TaskSet, phases: &[Time]) -> TaskSet {
    assert_eq!(phases.len(), set.num_tasks(), "one phase per task");
    let mut builder = TaskSetBuilder::new(set.num_processors());
    for (task, &phase) in set.tasks().iter().zip(phases) {
        let mut tb = builder
            .task(task.period())
            .phase(phase)
            .deadline(task.deadline());
        for sub in task.subtasks() {
            tb = if sub.is_preemptible() {
                tb.subtask(sub.processor().index(), sub.execution(), sub.priority())
            } else {
                tb.nonpreemptive_subtask(sub.processor().index(), sub.execution(), sub.priority())
            };
        }
        builder = tb.finish_task();
    }
    builder
        .build()
        .expect("re-phased copy of a valid set is valid")
}

/// Searches phase combinations for the worst observed EER time per task.
///
/// Returns `worst[i]` = the largest end-to-end response of task `i` seen
/// over the whole grid (`Dur::ZERO` if the task never completed — only
/// possible with tiny horizons).
///
/// # Errors
///
/// Propagates [`SimulateError`] (PM/MPM on unanalyzable systems).
///
/// # Panics
///
/// Panics if the grid exceeds [`ExactConfig::max_combinations`].
pub fn exact_worst_case(
    set: &TaskSet,
    protocol: Protocol,
    cfg: &ExactConfig,
) -> Result<Vec<Dur>, SimulateError> {
    // Per-task candidate phases.
    let candidates: Vec<Vec<Time>> = set
        .tasks()
        .iter()
        .map(|task| {
            let p = task.period().ticks();
            if cfg.phase_steps == 0 {
                (0..p).map(Time::from_ticks).collect()
            } else {
                let steps = cfg.phase_steps as i64;
                (0..steps)
                    .map(|k| Time::from_ticks(k * p / steps))
                    .collect()
            }
        })
        .collect();
    let combinations: u64 = candidates.iter().map(|c| c.len() as u64).product();
    assert!(
        combinations <= cfg.max_combinations,
        "{combinations} phase combinations exceed the cap of {}",
        cfg.max_combinations
    );

    let mut worst = vec![Dur::ZERO; set.num_tasks()];
    let mut indices = vec![0usize; set.num_tasks()];
    loop {
        let phases: Vec<Time> = indices
            .iter()
            .zip(&candidates)
            .map(|(&i, c)| c[i])
            .collect();
        let shifted = with_phases(set, &phases);
        let out = simulate(
            &shifted,
            &SimConfig::new(protocol).with_instances(cfg.instances_per_task),
        )?;
        for (w, stats) in worst.iter_mut().zip(out.metrics.tasks()) {
            if let Some(max) = stats.max_eer() {
                *w = (*w).max(max);
            }
        }
        // Odometer increment.
        let mut k = 0;
        loop {
            if k == indices.len() {
                return Ok(worst);
            }
            indices[k] += 1;
            if indices[k] < candidates[k].len() {
                break;
            }
            indices[k] = 0;
            k += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtsync_core::analysis::sa_ds::analyze_ds;
    use rtsync_core::analysis::sa_pm::analyze_pm;
    use rtsync_core::analysis::AnalysisConfig;
    use rtsync_core::examples::example2;
    use rtsync_core::task::TaskId;

    #[test]
    fn with_phases_rebuilds_faithfully() {
        let set = example2();
        let phases = vec![
            Time::from_ticks(1),
            Time::from_ticks(2),
            Time::from_ticks(3),
        ];
        let shifted = with_phases(&set, &phases);
        for (task, &phase) in shifted.tasks().iter().zip(&phases) {
            assert_eq!(task.phase(), phase);
        }
        // Everything else is untouched.
        assert_eq!(shifted.num_processors(), set.num_processors());
        for (a, b) in shifted.tasks().iter().zip(set.tasks()) {
            assert_eq!(a.period(), b.period());
            assert_eq!(a.subtasks().len(), b.subtasks().len());
            for (x, y) in a.subtasks().iter().zip(b.subtasks()) {
                assert_eq!(x.execution(), y.execution());
                assert_eq!(x.priority(), y.priority());
                assert_eq!(x.processor(), y.processor());
            }
        }
    }

    #[test]
    fn example2_exact_ds_worst_case_is_8_certifying_the_bound_tight() {
        // Full integer phase grid: 4 × 6 × 6 = 144 combinations.
        let set = example2();
        let cfg = ExactConfig {
            phase_steps: 0,
            instances_per_task: 12,
            max_combinations: 1_000,
        };
        let exact = exact_worst_case(&set, Protocol::DirectSync, &cfg).unwrap();
        let bound = analyze_ds(&set, &AnalysisConfig::default()).unwrap();
        // Sandwich for every task…
        for (i, &w) in exact.iter().enumerate() {
            assert!(w <= bound.task_bound(TaskId::new(i)));
        }
        // …and for T3 (and T2) the SA/DS fixpoint is *attained*: the bound
        // is exactly tight, which settles the paper's "7" as a slip.
        assert_eq!(exact[2], bound.task_bound(TaskId::new(2))); // 8
        assert_eq!(exact[2], Dur::from_ticks(8));
        assert_eq!(exact[1], bound.task_bound(TaskId::new(1))); // 7
    }

    #[test]
    fn example2_exact_rg_within_pm_bound() {
        let set = example2();
        let cfg = ExactConfig {
            phase_steps: 0,
            instances_per_task: 12,
            max_combinations: 1_000,
        };
        let exact = exact_worst_case(&set, Protocol::ReleaseGuard, &cfg).unwrap();
        let bound = analyze_pm(&set, &AnalysisConfig::default()).unwrap();
        for (i, &w) in exact.iter().enumerate() {
            assert!(w <= bound.task_bound(TaskId::new(i)), "task {i}: {w}");
        }
        // RG attains the PM bound for the chain task here.
        assert_eq!(exact[1], Dur::from_ticks(7));
    }

    #[test]
    fn coarse_grid_is_a_lower_bound_of_the_fine_grid() {
        let set = example2();
        let coarse = exact_worst_case(
            &set,
            Protocol::DirectSync,
            &ExactConfig {
                phase_steps: 2,
                instances_per_task: 12,
                max_combinations: 1_000,
            },
        )
        .unwrap();
        let fine = exact_worst_case(
            &set,
            Protocol::DirectSync,
            &ExactConfig {
                phase_steps: 0,
                instances_per_task: 12,
                max_combinations: 1_000,
            },
        )
        .unwrap();
        for (c, f) in coarse.iter().zip(&fine) {
            assert!(c <= f);
        }
    }

    #[test]
    #[should_panic(expected = "exceed the cap")]
    fn combination_cap_guards_explosions() {
        let set = example2();
        let _ = exact_worst_case(
            &set,
            Protocol::DirectSync,
            &ExactConfig {
                phase_steps: 0,
                instances_per_task: 2,
                max_combinations: 10,
            },
        );
    }
}
