//! The transport study: endpoint-driven reliable signaling measured over
//! a grid of drop rate × retransmission timeout × backoff, for all four
//! protocols, plus a failure-detector leg against a ground-truth crash
//! schedule.
//!
//! Each grid run draws a synthetic §5.1 system, attaches a constant-
//! latency channel with seeded endpoint drops and the ack/retransmit
//! transport (unbounded retry budget), and simulates it next to a
//! drop-free twin of the same system. The study reports, per
//! `(protocol, drop rate, timeout, backoff)` cell,
//!
//! * **deadline-miss-or-loss ratio** — `(missed + lost) / (measured +
//!   lost)` end-to-end instances;
//! * **EER inflation** — mean per-task `avg-EER(lossy) /
//!   avg-EER(drop-free)`, isolating what retransmission delay alone
//!   costs;
//! * **transport counters** — frames, retransmissions, duplicate
//!   deliveries, abandoned frames (always zero here: the budget is
//!   unbounded).
//!
//! The detector leg injects seeded random crashes
//! ([`rtsync_sim::CrashSchedule::Random`]) under a heartbeat failure
//! detector and reports detection accuracy against the ground-truth
//! schedule: suspects/deads with their false-positive counts, the
//! false-positive rate, forced (degraded) releases and suppressed stale
//! signals.
//!
//! Like [`chaos`](crate::chaos), both legs are embarrassingly parallel
//! over runs and bit-for-bit deterministic for a given seed regardless
//! of the thread count.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::seeding::job_seed;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rtsync_core::protocol::Protocol;
use rtsync_core::time::Dur;
use rtsync_sim::engine::{simulate, SimConfig, SimOutcome};
use rtsync_sim::nonideal::{eer_inflation, ChannelModel};
use rtsync_sim::{DetectorConfig, FaultConfig, TransportConfig, ViolationKind};
use rtsync_workload::{generate, WorkloadSpec};

/// Transport-study parameters.
#[derive(Clone, Debug)]
pub struct TransportStudyConfig {
    /// Protocols under test.
    pub protocols: Vec<Protocol>,
    /// Endpoint drop probabilities, one grid level per value.
    pub drop_rates: Vec<f64>,
    /// Initial retransmission timeouts (ticks), one grid level per value.
    pub timeouts: Vec<i64>,
    /// Exponential backoff factors, one grid level per value (the timeout
    /// cap is always `8 × timeout`).
    pub backoffs: Vec<u32>,
    /// Runs per grid cell (distinct synthetic systems).
    pub runs_per_cell: usize,
    /// Subtasks per task of the synthetic systems.
    pub n: usize,
    /// Per-processor utilization of the synthetic systems.
    pub u: f64,
    /// End-to-end instances simulated per task.
    pub instances_per_task: u64,
    /// Constant one-way signal latency (ticks).
    pub signal_latency: i64,
    /// Detector leg: mean uptime between crashes (ticks).
    pub mean_uptime: i64,
    /// Detector leg: restart delay after each crash (ticks).
    pub restart_delay: i64,
    /// Detector leg: heartbeat period (ticks); suspicion and death
    /// thresholds keep their defaults (3× and 6× the period).
    pub heartbeat_period: i64,
    /// Detector leg: runs per protocol.
    pub detector_runs: usize,
    /// Master seed; system and channel seeds derive from it.
    pub seed: u64,
    /// Worker threads.
    pub threads: usize,
}

impl Default for TransportStudyConfig {
    fn default() -> TransportStudyConfig {
        TransportStudyConfig {
            protocols: Protocol::ALL.to_vec(),
            drop_rates: vec![0.0, 0.1, 0.3, 0.5],
            timeouts: vec![2_000, 8_000],
            backoffs: vec![1, 2],
            runs_per_cell: 3,
            n: 3,
            u: 0.6,
            instances_per_task: 10,
            signal_latency: 1_000,
            mean_uptime: 2_000_000,
            restart_delay: 300_000,
            heartbeat_period: 10_000,
            detector_runs: 5,
            seed: 0x7EA5_0A7B,
            threads: std::thread::available_parallelism().map_or(4, |n| n.get()),
        }
    }
}

impl TransportStudyConfig {
    /// A reduced study for CI smoke jobs and tests: the same axes with
    /// fewer levels and runs.
    pub fn smoke() -> TransportStudyConfig {
        TransportStudyConfig {
            drop_rates: vec![0.0, 0.3],
            timeouts: vec![2_000],
            backoffs: vec![2],
            runs_per_cell: 1,
            instances_per_task: 6,
            detector_runs: 2,
            ..TransportStudyConfig::default()
        }
    }

    /// Total grid runs (the detector leg adds `protocols × detector_runs`).
    pub fn total_grid_runs(&self) -> usize {
        self.protocols.len()
            * self.drop_rates.len()
            * self.timeouts.len()
            * self.backoffs.len()
            * self.runs_per_cell
    }
}

/// Aggregate of one `(protocol, drop rate, timeout, backoff)` cell.
#[derive(Clone, Debug)]
pub struct TransportCell {
    /// The protocol.
    pub protocol: Protocol,
    /// Endpoint drop probability.
    pub drop_rate: f64,
    /// Initial retransmission timeout (ticks).
    pub timeout: i64,
    /// Backoff factor.
    pub backoff: u32,
    /// Runs aggregated.
    pub runs: usize,
    /// Frames sent (first transmissions).
    pub sent: u64,
    /// Retransmissions.
    pub retransmissions: u64,
    /// Duplicate deliveries suppressed by sequence numbers.
    pub dup_deliveries: u64,
    /// Frames abandoned (must be zero: the budget is unbounded).
    pub gave_up: u64,
    /// End-to-end instances lost.
    pub lost: u64,
    /// Aggregate `(missed + lost) / (measured + lost)`.
    pub miss_or_loss_ratio: f64,
    /// Mean per-run mean EER inflation over the drop-free twin.
    pub mean_inflation: f64,
    /// Runs that stopped before resolving every instance.
    pub stalls: usize,
}

/// Detection accuracy of one protocol's detector-leg runs.
#[derive(Clone, Debug)]
pub struct DetectorSummary {
    /// The protocol.
    pub protocol: Protocol,
    /// Runs aggregated.
    pub runs: usize,
    /// Ground-truth crashes injected.
    pub crashes: u64,
    /// Heartbeats sent.
    pub heartbeats: u64,
    /// Suspect transitions (with how many were false).
    pub suspects: u64,
    /// Suspect transitions while the subject was actually up.
    pub false_suspects: u64,
    /// Dead declarations.
    pub deads: u64,
    /// Dead declarations while the subject was actually up.
    pub false_deads: u64,
    /// Degraded releases forced from local information.
    pub forced_releases: u64,
    /// Real signals suppressed because their instance was force-released.
    pub stale_suppressed: u64,
    /// `SignalLost` violations (must be zero: the budget is unbounded).
    pub signal_lost: u64,
    /// End-to-end instances lost (to crashes, never to the transport).
    pub lost: u64,
    /// Aggregate `(missed + lost) / (measured + lost)`.
    pub miss_or_loss_ratio: f64,
}

impl DetectorSummary {
    /// `false_deads / deads`, `None` before any dead declaration.
    pub fn false_positive_rate(&self) -> Option<f64> {
        (self.deads > 0).then(|| self.false_deads as f64 / self.deads as f64)
    }
}

/// The whole study's outcome.
#[derive(Clone, Debug)]
pub struct TransportOutcome {
    /// Grid cells: protocol outer, then drop rate, timeout, backoff.
    pub cells: Vec<TransportCell>,
    /// Detector-leg accuracy, one row per protocol.
    pub detectors: Vec<DetectorSummary>,
}

impl TransportOutcome {
    /// `true` when no run abandoned a frame, lost an instance to the
    /// transport, or stalled.
    pub fn is_clean(&self) -> bool {
        self.cells.iter().all(|c| c.gave_up == 0 && c.stalls == 0)
            && self.detectors.iter().all(|d| d.signal_lost == 0)
    }
}

struct GridRun {
    sent: u64,
    retransmissions: u64,
    dup_deliveries: u64,
    gave_up: u64,
    lost: u64,
    missed: u64,
    measured: u64,
    inflation: f64,
    stalled: bool,
}

fn grid_sim(cfg: &TransportStudyConfig, cell: &(Protocol, f64, i64, u32), seed: u64) -> SimConfig {
    let &(protocol, drop, timeout, backoff) = cell;
    let channel = ChannelModel::constant(Dur::from_ticks(cfg.signal_latency))
        .with_endpoint_drops(drop)
        .with_seed(seed ^ 0xCAFE);
    SimConfig::new(protocol)
        .with_instances(cfg.instances_per_task)
        .with_channel(channel)
        .with_transport(
            TransportConfig::new(Dur::from_ticks(timeout))
                .with_backoff(backoff, Dur::from_ticks(8 * timeout))
                .with_seed(seed ^ 0xF00D),
        )
}

fn miss_and_measured(out: &SimOutcome) -> (u64, u64) {
    let (mut missed, mut measured) = (0, 0);
    for t in out.metrics.tasks() {
        missed += t.deadline_misses();
        measured += t.measured();
    }
    (missed, measured)
}

fn evaluate_grid_run(
    cfg: &TransportStudyConfig,
    cell: &(Protocol, f64, i64, u32),
    system_seed: u64,
) -> GridRun {
    let spec = WorkloadSpec::paper(cfg.n, cfg.u).with_random_phases();
    let set = generate(&spec, &mut StdRng::seed_from_u64(system_seed))
        .expect("paper spec always generates");
    let lossy = simulate(&set, &grid_sim(cfg, cell, system_seed))
        .expect("study systems are analyzable under SA/PM");
    // The drop-free twin rides the identical channel and transport so the
    // inflation attributes retransmission delay alone.
    let twin_cell = (cell.0, 0.0, cell.2, cell.3);
    let baseline = simulate(&set, &grid_sim(cfg, &twin_cell, system_seed))
        .expect("study systems are analyzable under SA/PM");

    let (mut infl_sum, mut infl_n) = (0.0, 0u64);
    for ratio in eer_inflation(&baseline.metrics, &lossy.metrics)
        .into_iter()
        .flatten()
    {
        infl_sum += ratio;
        infl_n += 1;
    }
    let (missed, measured) = miss_and_measured(&lossy);
    let ts = &lossy.transport_stats;
    GridRun {
        sent: ts.sent,
        retransmissions: ts.retransmissions,
        dup_deliveries: ts.dup_deliveries,
        gave_up: ts.gave_up,
        lost: lossy.metrics.total_lost(),
        missed,
        measured,
        inflation: if infl_n == 0 {
            f64::NAN
        } else {
            infl_sum / infl_n as f64
        },
        stalled: !lossy.reached_target,
    }
}

struct DetectorRun {
    crashes: u64,
    heartbeats: u64,
    suspects: u64,
    false_suspects: u64,
    deads: u64,
    false_deads: u64,
    forced_releases: u64,
    stale_suppressed: u64,
    signal_lost: u64,
    lost: u64,
    missed: u64,
    measured: u64,
}

fn evaluate_detector_run(
    cfg: &TransportStudyConfig,
    protocol: Protocol,
    system_seed: u64,
    fault_seed: u64,
) -> DetectorRun {
    let spec = WorkloadSpec::paper(cfg.n, cfg.u).with_random_phases();
    let set = generate(&spec, &mut StdRng::seed_from_u64(system_seed))
        .expect("paper spec always generates");
    let channel = ChannelModel::constant(Dur::from_ticks(cfg.signal_latency))
        .with_endpoint_drops(0.2)
        .with_seed(system_seed ^ 0xCAFE);
    let faults = FaultConfig::random(
        Dur::from_ticks(cfg.mean_uptime),
        Dur::from_ticks(cfg.restart_delay),
        fault_seed,
    );
    let sim = SimConfig::new(protocol)
        .with_instances(cfg.instances_per_task)
        .with_channel(channel)
        .with_faults(faults)
        .with_transport(
            TransportConfig::new(Dur::from_ticks(4 * cfg.signal_latency.max(250)))
                .with_seed(system_seed ^ 0xF00D)
                .with_detector(DetectorConfig::new(Dur::from_ticks(cfg.heartbeat_period))),
        );
    let out = simulate(&set, &sim).expect("study systems are analyzable under SA/PM");
    let (missed, measured) = miss_and_measured(&out);
    let ds = &out.detect_stats;
    DetectorRun {
        crashes: out.fault_stats.crashes,
        heartbeats: ds.heartbeats_sent,
        suspects: ds.suspects,
        false_suspects: ds.false_suspects,
        deads: ds.deads,
        false_deads: ds.false_deads,
        forced_releases: ds.forced_releases,
        stale_suppressed: ds.stale_signals_suppressed,
        signal_lost: out
            .violations
            .iter()
            .filter(|v| v.kind == ViolationKind::SignalLost)
            .count() as u64,
        lost: out.metrics.total_lost(),
        missed,
        measured,
    }
}

/// Runs worker threads over `jobs`, filling one slot per job; the result
/// is deterministic for a given job list regardless of the thread count.
fn run_jobs<T: Send, F: Fn(usize) -> T + Sync>(count: usize, threads: usize, f: F) -> Vec<T> {
    let results: Mutex<Vec<Option<T>>> = Mutex::new((0..count).map(|_| None).collect());
    let next = AtomicUsize::new(0);
    let threads = threads.clamp(1, count.max(1));
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let j = next.fetch_add(1, Ordering::Relaxed);
                if j >= count {
                    break;
                }
                let result = f(j);
                results.lock().expect("no panics while holding the lock")[j] = Some(result);
            });
        }
    });
    results
        .into_inner()
        .expect("lock released")
        .into_iter()
        .map(|r| r.expect("every job ran"))
        .collect()
}

/// Runs the whole study: the drop × timeout × backoff grid (unbounded
/// retry budget) and the detector leg (random crashes, heartbeat
/// detection). Bit-for-bit deterministic for a given config regardless
/// of `threads`.
pub fn run_transport_study(cfg: &TransportStudyConfig) -> TransportOutcome {
    let cells: Vec<(Protocol, f64, i64, u32)> = cfg
        .protocols
        .iter()
        .flat_map(|&p| {
            cfg.drop_rates.iter().flat_map(move |&d| {
                cfg.timeouts
                    .iter()
                    .flat_map(move |&t| cfg.backoffs.iter().map(move |&b| (p, d, t, b)))
            })
        })
        .collect();

    let grid_jobs: Vec<(usize, usize)> = (0..cells.len())
        .flat_map(|c| (0..cfg.runs_per_cell).map(move |r| (c, r)))
        .collect();
    let grid_results = run_jobs(grid_jobs.len(), cfg.threads, |j| {
        let (c, r) = grid_jobs[j];
        evaluate_grid_run(cfg, &cells[c], job_seed(cfg.seed, 0, r))
    });

    let det_jobs: Vec<(usize, usize)> = (0..cfg.protocols.len())
        .flat_map(|p| (0..cfg.detector_runs).map(move |r| (p, r)))
        .collect();
    let det_results = run_jobs(det_jobs.len(), cfg.threads, |j| {
        let (p, r) = det_jobs[j];
        evaluate_detector_run(
            cfg,
            cfg.protocols[p],
            job_seed(cfg.seed, 0, r),
            job_seed(cfg.seed, p + 1, r),
        )
    });

    let cells = cells
        .iter()
        .enumerate()
        .map(|(c, &(protocol, drop_rate, timeout, backoff))| {
            let runs = &grid_results[c * cfg.runs_per_cell..(c + 1) * cfg.runs_per_cell];
            let mut cell = TransportCell {
                protocol,
                drop_rate,
                timeout,
                backoff,
                runs: runs.len(),
                sent: 0,
                retransmissions: 0,
                dup_deliveries: 0,
                gave_up: 0,
                lost: 0,
                miss_or_loss_ratio: f64::NAN,
                mean_inflation: f64::NAN,
                stalls: 0,
            };
            let (mut missed, mut measured) = (0u64, 0u64);
            let (mut infl_sum, mut infl_n) = (0.0, 0u64);
            for r in runs {
                cell.sent += r.sent;
                cell.retransmissions += r.retransmissions;
                cell.dup_deliveries += r.dup_deliveries;
                cell.gave_up += r.gave_up;
                cell.lost += r.lost;
                cell.stalls += usize::from(r.stalled);
                missed += r.missed;
                measured += r.measured;
                if r.inflation.is_finite() {
                    infl_sum += r.inflation;
                    infl_n += 1;
                }
            }
            if measured + cell.lost > 0 {
                cell.miss_or_loss_ratio =
                    (missed + cell.lost) as f64 / (measured + cell.lost) as f64;
            }
            if infl_n > 0 {
                cell.mean_inflation = infl_sum / infl_n as f64;
            }
            cell
        })
        .collect();

    let detectors = cfg
        .protocols
        .iter()
        .enumerate()
        .map(|(p, &protocol)| {
            let runs = &det_results[p * cfg.detector_runs..(p + 1) * cfg.detector_runs];
            let mut d = DetectorSummary {
                protocol,
                runs: runs.len(),
                crashes: 0,
                heartbeats: 0,
                suspects: 0,
                false_suspects: 0,
                deads: 0,
                false_deads: 0,
                forced_releases: 0,
                stale_suppressed: 0,
                signal_lost: 0,
                lost: 0,
                miss_or_loss_ratio: f64::NAN,
            };
            let (mut missed, mut measured) = (0u64, 0u64);
            for r in runs {
                d.crashes += r.crashes;
                d.heartbeats += r.heartbeats;
                d.suspects += r.suspects;
                d.false_suspects += r.false_suspects;
                d.deads += r.deads;
                d.false_deads += r.false_deads;
                d.forced_releases += r.forced_releases;
                d.stale_suppressed += r.stale_suppressed;
                d.signal_lost += r.signal_lost;
                d.lost += r.lost;
                missed += r.missed;
                measured += r.measured;
            }
            if measured + d.lost > 0 {
                d.miss_or_loss_ratio = (missed + d.lost) as f64 / (measured + d.lost) as f64;
            }
            d
        })
        .collect();

    TransportOutcome { cells, detectors }
}

/// Grid CSV: one row per `(protocol, drop rate, timeout, backoff)` cell.
pub fn grid_csv(outcome: &TransportOutcome) -> String {
    let mut out = String::from(
        "protocol,drop_rate,timeout,backoff,runs,sent,retransmissions,\
         dup_deliveries,gave_up,lost,miss_or_loss_ratio,mean_inflation,stalls\n",
    );
    for c in &outcome.cells {
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{},{},{},{},{},{}\n",
            c.protocol.tag(),
            c.drop_rate,
            c.timeout,
            c.backoff,
            c.runs,
            c.sent,
            c.retransmissions,
            c.dup_deliveries,
            c.gave_up,
            c.lost,
            fmt_f64(c.miss_or_loss_ratio),
            fmt_f64(c.mean_inflation),
            c.stalls,
        ));
    }
    out
}

/// Detector-leg CSV: one row per protocol, with the false-positive rate
/// against the ground-truth crash schedule.
pub fn summary_csv(outcome: &TransportOutcome) -> String {
    let mut out = String::from(
        "protocol,runs,crashes,heartbeats,suspects,false_suspects,deads,\
         false_deads,false_positive_rate,forced_releases,stale_suppressed,\
         signal_lost,lost,miss_or_loss_ratio\n",
    );
    for d in &outcome.detectors {
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{}\n",
            d.protocol.tag(),
            d.runs,
            d.crashes,
            d.heartbeats,
            d.suspects,
            d.false_suspects,
            d.deads,
            d.false_deads,
            d.false_positive_rate().map_or("NaN".into(), fmt_f64),
            d.forced_releases,
            d.stale_suppressed,
            d.signal_lost,
            d.lost,
            fmt_f64(d.miss_or_loss_ratio),
        ));
    }
    out
}

/// ASCII rendering of the study for the terminal.
pub fn render(outcome: &TransportOutcome) -> String {
    let mut out =
        String::from("transport study: miss-or-loss ratio (EER inflation | retransmissions)\n");
    for c in &outcome.cells {
        out.push_str(&format!(
            "  {:>3} drop {:.2} rto {:>5} x{}: {:<7} (x{:<7} | {:>5} retx){}{}\n",
            c.protocol.tag(),
            c.drop_rate,
            c.timeout,
            c.backoff,
            fmt_f64(c.miss_or_loss_ratio),
            fmt_f64(c.mean_inflation),
            c.retransmissions,
            if c.gave_up > 0 {
                format!(", {} ABANDONED", c.gave_up)
            } else {
                String::new()
            },
            if c.stalls > 0 {
                format!(", {} STALLED", c.stalls)
            } else {
                String::new()
            },
        ));
    }
    out.push_str("detector accuracy vs ground truth:\n");
    for d in &outcome.detectors {
        out.push_str(&format!(
            "  {:>3}: {} crashes, {} dead declarations ({} false, fp-rate {}), \
             {} forced releases, {} stale suppressed\n",
            d.protocol.tag(),
            d.crashes,
            d.deads,
            d.false_deads,
            d.false_positive_rate().map_or("-".into(), fmt_f64),
            d.forced_releases,
            d.stale_suppressed,
        ));
    }
    out
}

fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.4}")
    } else {
        String::from("NaN")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> TransportStudyConfig {
        TransportStudyConfig {
            drop_rates: vec![0.0, 0.3],
            timeouts: vec![2_000],
            backoffs: vec![2],
            runs_per_cell: 1,
            instances_per_task: 5,
            detector_runs: 1,
            threads: 2,
            ..TransportStudyConfig::default()
        }
    }

    #[test]
    fn study_is_clean_and_retransmits() {
        let outcome = run_transport_study(&tiny_cfg());
        assert!(outcome.is_clean());
        assert_eq!(outcome.cells.len(), 8);
        assert_eq!(outcome.detectors.len(), 4);
        let retx: u64 = outcome.cells.iter().map(|c| c.retransmissions).sum();
        assert!(retx > 0, "30% drops must force retransmissions");
        // Drop-free cells never retransmit (acks are loss-free here).
        for c in outcome.cells.iter().filter(|c| c.drop_rate == 0.0) {
            assert_eq!(c.retransmissions, 0, "{}", c.protocol.tag());
            assert_eq!(c.lost, 0, "{}", c.protocol.tag());
        }
        let crashes: u64 = outcome.detectors.iter().map(|d| d.crashes).sum();
        assert!(crashes > 0, "the detector leg must actually crash nodes");
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let mut cfg = tiny_cfg();
        cfg.threads = 1;
        let a = run_transport_study(&cfg);
        cfg.threads = 4;
        let b = run_transport_study(&cfg);
        assert_eq!(grid_csv(&a), grid_csv(&b));
        assert_eq!(summary_csv(&a), summary_csv(&b));
    }

    #[test]
    fn smoke_config_covers_every_protocol() {
        let cfg = TransportStudyConfig::smoke();
        assert_eq!(cfg.protocols.len(), 4);
        assert!(cfg.total_grid_runs() >= 8);
    }
}
