//! The adversarial-time campaign: Byzantine timeservers × network
//! partitions × asymmetric links, swept as a grid and checked against
//! the hardened sync layer's honesty promise.
//!
//! Each run draws a synthetic §5.1 system (4 processors), gives the
//! first `liars` of them a lying timeserver [`Persona`], optionally
//! splits the network in half for a partition window, optionally skews
//! every link with a seeded asymmetric extra delay, and simulates it
//! under one of the four protocols with clock sync riding the acked
//! endpoint transport. The campaign reports, per
//! `(liar count, partition span, asymmetry bias)` cell,
//!
//! * **bracket integrity** — of the settled Marzullo estimates, how many
//!   failed to bracket the oracle's true offset within the advertised
//!   uncertainty. The sync layer promises *zero* while liars are a
//!   minority (`2·liars < n`); the grid documents where the promise
//!   breaks as the liar fraction crosses n/2;
//! * **partition accounting** — signals severed and replayed at the
//!   heal, sync/transport/heartbeat frames killed on the cut, and the
//!   failure detector's false verdicts charged to an open partition
//!   (ground-truth false-positive accounting);
//! * **EER inflation** — mean per-task `avg-EER(adversarial) /
//!   avg-EER(benign)` against a same-system, same-conditions run with
//!   every adversary knob neutral;
//! * **invariant verdicts** — the full [`InvariantObserver`] battery,
//!   with the uncertainty-honesty check *armed* only in minority-liar
//!   cells (beyond n/2 the miss is the measurement, not a bug).
//!
//! Like [`chaos`](crate::chaos), the campaign is embarrassingly
//! parallel over runs and bit-for-bit deterministic for a given seed
//! regardless of the thread count.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::seeding::job_seed;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rtsync_core::protocol::Protocol;
use rtsync_core::time::{Dur, Time};
use rtsync_sim::engine::{simulate, simulate_observed, SimConfig};
use rtsync_sim::nonideal::{
    eer_inflation, ChannelModel, ClockModel, LinkAsymmetry, NonidealConfig,
};
use rtsync_sim::{
    DetectorConfig, FaultConfig, InvariantKind, InvariantObserver, InvariantViolation,
    PartitionSchedule, PartitionWindow, Persona, SyncConfig, TransportConfig,
};
use rtsync_workload::{generate, WorkloadSpec};

/// Adversary-campaign parameters.
#[derive(Clone, Debug)]
pub struct AdversaryConfig {
    /// Lying-timeserver counts to sweep — of the 4 processors of the
    /// §5.1 workload, so the liar fraction crosses n/2 at 2.
    pub liar_counts: Vec<usize>,
    /// Partition spans (ticks) to sweep; `0` keeps the network whole.
    /// Nonzero spans split the lower half of the processors from the
    /// upper half at [`AdversaryConfig::partition_at`].
    pub partition_spans: Vec<i64>,
    /// Per-link asymmetric extra-delay bounds (ticks) to sweep; `0`
    /// keeps every link symmetric.
    pub asym_biases: Vec<i64>,
    /// The split instant of nonzero partition windows.
    pub partition_at: i64,
    /// Runs per grid cell; the protocol rotates over the run index, so 4
    /// runs cover DS/PM/MPM/RG, and the liar persona kind rotates
    /// (colluders, fixed liars, stuck clocks) underneath.
    pub runs_per_cell: usize,
    /// Subtasks per task of the synthetic systems.
    pub n: usize,
    /// Per-processor utilization of the synthetic systems.
    pub u: f64,
    /// End-to-end instances simulated per task.
    pub instances_per_task: u64,
    /// True-time sync round period (ticks).
    pub sync_period: i64,
    /// Upper bound of the uniform channel latency (ticks).
    pub latency: i64,
    /// Magnitude of the served lie (colluder target / fixed-liar offset,
    /// ticks) — far beyond any honest uncertainty, so a successful lie
    /// is unambiguous in the bracket statistics.
    pub lie: i64,
    /// Largest initial true clock offset (ticks).
    pub max_offset: i64,
    /// Oscillator drift bound (ppm).
    pub drift_ppm: i64,
    /// Master seed; system and condition seeds derive from it.
    pub seed: u64,
    /// Worker threads.
    pub threads: usize,
}

impl Default for AdversaryConfig {
    fn default() -> AdversaryConfig {
        AdversaryConfig {
            liar_counts: vec![0, 1, 2, 3],
            partition_spans: vec![0, 300_000, 3_000_000],
            asym_biases: vec![0, 2_000],
            partition_at: 400_000,
            runs_per_cell: 4,
            n: 3,
            u: 0.6,
            instances_per_task: 10,
            sync_period: 50_000,
            latency: 2_000,
            lie: 40_000,
            max_offset: 1_000,
            drift_ppm: 20_000,
            seed: 0xAD5E_7A11,
            threads: std::thread::available_parallelism().map_or(4, |n| n.get()),
        }
    }
}

impl AdversaryConfig {
    /// A reduced campaign for CI smoke jobs and tests: the same three
    /// axes with fewer levels and runs.
    pub fn smoke(total_runs: usize) -> AdversaryConfig {
        let cfg = AdversaryConfig {
            liar_counts: vec![0, 1, 3],
            partition_spans: vec![0, 300_000],
            asym_biases: vec![0, 2_000],
            instances_per_task: 6,
            ..AdversaryConfig::default()
        };
        let cells = cfg.liar_counts.len() * cfg.partition_spans.len() * cfg.asym_biases.len();
        AdversaryConfig {
            runs_per_cell: total_runs.div_ceil(cells).max(1),
            ..cfg
        }
    }

    /// Total runs in the campaign.
    pub fn total_runs(&self) -> usize {
        self.liar_counts.len()
            * self.partition_spans.len()
            * self.asym_biases.len()
            * self.runs_per_cell
    }
}

/// One grid coordinate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct CellSpec {
    liars: usize,
    partition_span: i64,
    asym_bias: i64,
}

/// The verdict of one adversarial run.
#[derive(Clone, Debug)]
pub struct AdversaryVerdict {
    /// The protocol (rotates over the run index).
    pub protocol: Protocol,
    /// Lying timeservers in this run's cell.
    pub liars: usize,
    /// Liar persona tag (`honest` when `liars == 0`).
    pub liar_kind: &'static str,
    /// Partition span of this run's cell (0 = whole network).
    pub partition_span: i64,
    /// Asymmetry bound of this run's cell (0 = symmetric links).
    pub asym_bias: i64,
    /// Run index within the cell.
    pub run_index: usize,
    /// Seed the synthetic system was generated from.
    pub system_seed: u64,
    /// Seed of the run's condition streams (clocks, channel, personas).
    pub cond_seed: u64,
    /// Whether the uncertainty-honesty invariant was armed
    /// (`2·liars < processors`).
    pub honesty_armed: bool,
    /// Settled estimates checked against the oracle.
    pub bracket_samples: u64,
    /// Estimates whose advertised interval missed the true offset.
    pub bracket_misses: u64,
    /// Responses served with persona-corrupted stamps or dispersion.
    pub corrupted_samples: u64,
    /// Sync frames lost to channel faults.
    pub sync_frames_lost: u64,
    /// Sync frames killed on the partition cut.
    pub sync_frames_severed: u64,
    /// Sync frames re-sent by the acked sync-transport mode.
    pub sync_retransmits: u64,
    /// Largest oracle clock error sampled at round instants (ticks).
    pub max_true_error: i64,
    /// Partition windows that opened / healed.
    pub partitions: u64,
    /// Partition windows that healed.
    pub heals: u64,
    /// Protocol signals parked at the cut.
    pub severed_signals: u64,
    /// Parked signals replayed at the heal.
    pub partition_replayed: u64,
    /// Transport frames killed on the cut.
    pub severed_transport: u64,
    /// Heartbeats killed on the cut.
    pub severed_heartbeats: u64,
    /// Detector suspect verdicts charged to an open partition.
    pub partition_false_suspects: u64,
    /// Detector dead verdicts charged to an open partition.
    pub partition_false_deads: u64,
    /// Mean per-task EER inflation over the benign twin (`NaN` when no
    /// task completed in both runs).
    pub mean_inflation: f64,
    /// `true` if the run stopped before resolving every instance.
    pub stalled: bool,
    /// Invariant violations (empty for a clean run).
    pub violations: Vec<InvariantViolation>,
}

impl AdversaryVerdict {
    /// `true` when the run upheld every armed invariant — and, in
    /// minority-liar cells, resolved every instance. A Byzantine
    /// *majority* can capture the whole system's clocks (every round the
    /// phantom cluster out-votes the reference and steps every node by
    /// the full lie, so local time advances arbitrarily slower than true
    /// time): such runs stall against the horizon, pile up
    /// released-but-incomplete work, and compress RG's local-clock guard
    /// timers by the full lie — all by design; those *are* the
    /// documented failure mode, not campaign failures. Clock-independent
    /// safety invariants (precedence order, signal conservation, no
    /// cross-partition delivery, no down-processor activity) stay fatal
    /// in every cell.
    pub fn is_clean(&self) -> bool {
        let clock_dependent = [InvariantKind::UnboundedBacklog, InvariantKind::GuardSpacing];
        let fatal = self
            .violations
            .iter()
            .filter(|v| self.honesty_armed || !clock_dependent.contains(&v.kind))
            .count();
        fatal == 0 && (!self.stalled || !self.honesty_armed)
    }
}

/// Aggregate of one `(liars, partition span, asymmetry)` cell.
#[derive(Clone, Debug)]
pub struct AdversaryCell {
    /// Lying timeservers.
    pub liars: usize,
    /// Liar fraction of the 4-processor workload.
    pub liar_fraction: f64,
    /// Partition span (ticks).
    pub partition_span: i64,
    /// Asymmetry bound (ticks).
    pub asym_bias: i64,
    /// Whether the honesty invariant was armed in this cell.
    pub honesty_armed: bool,
    /// Runs aggregated.
    pub runs: usize,
    /// Total settled estimates checked.
    pub bracket_samples: u64,
    /// Total bracket misses.
    pub bracket_misses: u64,
    /// Total persona-corrupted responses.
    pub corrupted_samples: u64,
    /// Total sync frames lost + severed.
    pub sync_frames_dead: u64,
    /// Total sync retransmissions.
    pub sync_retransmits: u64,
    /// Total signals parked at cuts.
    pub severed_signals: u64,
    /// Total parked signals replayed.
    pub partition_replayed: u64,
    /// Total detector false verdicts charged to partitions.
    pub partition_false_verdicts: u64,
    /// Largest oracle clock error over the cell's runs (ticks).
    pub max_true_error: i64,
    /// Mean of per-run mean EER inflation (finite runs only).
    pub mean_inflation: f64,
    /// Runs that stopped before resolving every instance.
    pub stalls: usize,
    /// Total invariant violations across the cell's runs.
    pub invariant_violations: usize,
}

impl AdversaryCell {
    /// `bracket_misses / bracket_samples`, `NaN` with no samples.
    pub fn miss_rate(&self) -> f64 {
        if self.bracket_samples == 0 {
            f64::NAN
        } else {
            self.bracket_misses as f64 / self.bracket_samples as f64
        }
    }
}

/// The whole campaign's outcome.
#[derive(Clone, Debug)]
pub struct AdversaryOutcome {
    /// Cell aggregates: liars outer, partition spans middle, biases inner.
    pub cells: Vec<AdversaryCell>,
    /// Per-run verdicts in deterministic (cell, run) order.
    pub verdicts: Vec<AdversaryVerdict>,
}

impl AdversaryOutcome {
    /// `true` when every run upheld every armed invariant and resolved.
    pub fn is_clean(&self) -> bool {
        self.verdicts.iter().all(AdversaryVerdict::is_clean)
    }

    /// The failing runs (armed-invariant violations or stalls).
    pub fn failures(&self) -> Vec<&AdversaryVerdict> {
        self.verdicts.iter().filter(|v| !v.is_clean()).collect()
    }
}

/// The liar personas of one run: `liars` nodes of one kind (rotating
/// over the run index), the rest honest.
fn personas(liars: usize, lie: i64, run_index: usize) -> (Vec<Persona>, &'static str) {
    if liars == 0 {
        return (Vec::new(), "honest");
    }
    // Colluders are the strongest adversary (mutually consistent phantom
    // cluster); fixed liars and stuck clocks are incoherent and should
    // stay out-voted even as a majority of servers.
    let kind = match run_index % 3 {
        0 => Persona::Colluder {
            target: Dur::from_ticks(lie),
        },
        1 => Persona::FixedLiar {
            offset: Dur::from_ticks(-lie),
        },
        _ => Persona::StuckClock,
    };
    (vec![kind; liars], kind.tag())
}

/// The nonideal conditions of one run.
fn conditions(cfg: &AdversaryConfig, num_procs: usize, bias: i64, seed: u64) -> NonidealConfig {
    let mut ni = NonidealConfig::default().with_clocks(ClockModel::Random {
        max_offset: Dur::from_ticks(cfg.max_offset),
        max_drift_ppm: cfg.drift_ppm,
        seed: seed ^ 0xC10C_05C1,
    });
    if cfg.latency > 0 {
        ni = ni.with_channel(
            ChannelModel::uniform(Dur::ZERO, Dur::from_ticks(cfg.latency))
                .with_seed(seed ^ 0x5ca1_ab1e)
                .with_endpoint_drops(0.05),
        );
    }
    if bias > 0 {
        ni = ni.with_asymmetry(LinkAsymmetry::random(
            num_procs,
            Dur::from_ticks(bias),
            seed ^ 0xA57_0BAD,
        ));
    }
    ni
}

/// The endpoint transport every adversarial run rides: acked signals
/// with retransmission plus the heartbeat failure detector, so partition
/// false positives get ground-truth accounting.
fn transport(cfg: &AdversaryConfig, seed: u64) -> TransportConfig {
    let timeout = Dur::from_ticks((4 * cfg.latency).max(250));
    TransportConfig::new(timeout)
        .with_seed(seed ^ 0xF00D)
        .with_detector(DetectorConfig::new(Dur::from_ticks(
            (cfg.sync_period / 4).max(1),
        )))
}

/// Evaluates one run of one cell.
fn evaluate_run(
    cfg: &AdversaryConfig,
    cell: CellSpec,
    run_index: usize,
    system_seed: u64,
    cond_seed: u64,
) -> AdversaryVerdict {
    let spec = WorkloadSpec::paper(cfg.n, cfg.u).with_random_phases();
    let set = generate(&spec, &mut StdRng::seed_from_u64(system_seed))
        .expect("paper spec always generates");
    let num_procs = set.num_processors();
    let protocol = Protocol::ALL[run_index % Protocol::ALL.len()];
    let (cast, liar_kind) = personas(cell.liars, cfg.lie, run_index);
    let honesty_armed = 2 * cell.liars < num_procs;

    let sync = SyncConfig::new(Dur::from_ticks(cfg.sync_period))
        .with_personas(cast)
        .with_persona_seed(cond_seed ^ 0x9e37)
        .with_over_transport(true);
    let mut sim = SimConfig::new(protocol)
        .with_instances(cfg.instances_per_task)
        .with_nonideal(conditions(cfg, num_procs, cell.asym_bias, cond_seed))
        .with_transport(transport(cfg, cond_seed))
        .with_sync(sync);
    if cell.partition_span > 0 {
        // Split the lower half of the processors from the upper half.
        sim = sim.with_faults(
            FaultConfig::explicit(vec![Vec::new(); num_procs]).with_partitions(
                PartitionSchedule::Explicit(vec![PartitionWindow {
                    at: Time::from_ticks(cfg.partition_at),
                    heal_delay: Dur::from_ticks(cell.partition_span),
                    island: (0..num_procs / 2).collect(),
                }]),
            ),
        );
    }

    // The benign twin: same system, same clocks/channel/transport/sync,
    // every adversary knob neutral — the inflation baseline.
    let benign = SimConfig::new(protocol)
        .with_instances(cfg.instances_per_task)
        .with_nonideal(conditions(cfg, num_procs, 0, cond_seed))
        .with_transport(transport(cfg, cond_seed))
        .with_sync(
            SyncConfig::new(Dur::from_ticks(cfg.sync_period))
                .with_persona_seed(cond_seed ^ 0x9e37)
                .with_over_transport(true),
        );
    let baseline = simulate(&set, &benign).expect("paper systems are analyzable under SA/PM");

    // Guard timers run on corrected local clocks: grant RG spacing twice
    // the drift bound (rate error both ways plus the honest step
    // corrections drift forces each sync round).
    let mut obs = InvariantObserver::default()
        .with_uncertainty_check(honesty_armed)
        .with_spacing_slack_ppm(2 * cfg.drift_ppm);
    let out =
        simulate_observed(&set, &sim, &mut obs).expect("paper systems are analyzable under SA/PM");
    obs.check_outcome(&out);

    let mut inflation_sum = 0.0;
    let mut inflation_count = 0u64;
    for ratio in eer_inflation(&baseline.metrics, &out.metrics)
        .into_iter()
        .flatten()
    {
        inflation_sum += ratio;
        inflation_count += 1;
    }

    AdversaryVerdict {
        protocol,
        liars: cell.liars,
        liar_kind,
        partition_span: cell.partition_span,
        asym_bias: cell.asym_bias,
        run_index,
        system_seed,
        cond_seed,
        honesty_armed,
        bracket_samples: out.sync_stats.bracket_samples,
        bracket_misses: out.sync_stats.bracket_misses,
        corrupted_samples: out.sync_stats.corrupted_samples,
        sync_frames_lost: out.sync_stats.frames_lost,
        sync_frames_severed: out.sync_stats.frames_severed,
        sync_retransmits: out.sync_stats.retransmits,
        max_true_error: out.sync_stats.max_true_error.ticks(),
        partitions: out.fault_stats.partitions,
        heals: out.fault_stats.heals,
        severed_signals: out.fault_stats.severed_signals,
        partition_replayed: out.fault_stats.partition_replayed,
        severed_transport: out.fault_stats.severed_transport,
        severed_heartbeats: out.fault_stats.severed_heartbeats,
        partition_false_suspects: out.detect_stats.partition_false_suspects,
        partition_false_deads: out.detect_stats.partition_false_deads,
        mean_inflation: if inflation_count == 0 {
            f64::NAN
        } else {
            inflation_sum / inflation_count as f64
        },
        stalled: !out.reached_target,
        violations: obs.violations().to_vec(),
    }
}

/// Runs the whole campaign: `liars × partition spans × asymmetry biases
/// × runs_per_cell` seeded runs. Cells come back liars-outer,
/// spans-middle, biases-inner; verdicts in (cell, run) order. The
/// outcome is bit-for-bit deterministic for a given config regardless of
/// `threads`.
pub fn run_adversary(cfg: &AdversaryConfig) -> AdversaryOutcome {
    let cells: Vec<CellSpec> = cfg
        .liar_counts
        .iter()
        .flat_map(|&liars| {
            cfg.partition_spans.iter().flat_map(move |&partition_span| {
                cfg.asym_biases.iter().map(move |&asym_bias| CellSpec {
                    liars,
                    partition_span,
                    asym_bias,
                })
            })
        })
        .collect();
    let jobs: Vec<(usize, usize)> = (0..cells.len())
        .flat_map(|c| (0..cfg.runs_per_cell).map(move |r| (c, r)))
        .collect();

    let results: Mutex<Vec<Option<AdversaryVerdict>>> = Mutex::new(vec![None; jobs.len()]);
    let next = AtomicUsize::new(0);
    let threads = cfg.threads.clamp(1, jobs.len().max(1));
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let j = next.fetch_add(1, Ordering::Relaxed);
                if j >= jobs.len() {
                    break;
                }
                let (c, r) = jobs[j];
                let system_seed = job_seed(cfg.seed, 0, r);
                let cond_seed = job_seed(cfg.seed, c + 1, r);
                let verdict = evaluate_run(cfg, cells[c], r, system_seed, cond_seed);
                results.lock().expect("no panics while holding the lock")[j] = Some(verdict);
            });
        }
    });
    let verdicts: Vec<AdversaryVerdict> = results
        .into_inner()
        .expect("lock released")
        .into_iter()
        .map(|r| r.expect("every run was evaluated"))
        .collect();

    let cells = cells
        .iter()
        .enumerate()
        .map(|(c, spec)| {
            let runs = &verdicts[c * cfg.runs_per_cell..(c + 1) * cfg.runs_per_cell];
            let mut cell = AdversaryCell {
                liars: spec.liars,
                liar_fraction: spec.liars as f64 / 4.0,
                partition_span: spec.partition_span,
                asym_bias: spec.asym_bias,
                honesty_armed: runs.first().is_some_and(|v| v.honesty_armed),
                runs: runs.len(),
                bracket_samples: 0,
                bracket_misses: 0,
                corrupted_samples: 0,
                sync_frames_dead: 0,
                sync_retransmits: 0,
                severed_signals: 0,
                partition_replayed: 0,
                partition_false_verdicts: 0,
                max_true_error: 0,
                mean_inflation: f64::NAN,
                stalls: 0,
                invariant_violations: 0,
            };
            let (mut infl_sum, mut infl_n) = (0.0, 0u64);
            for v in runs {
                cell.bracket_samples += v.bracket_samples;
                cell.bracket_misses += v.bracket_misses;
                cell.corrupted_samples += v.corrupted_samples;
                cell.sync_frames_dead += v.sync_frames_lost + v.sync_frames_severed;
                cell.sync_retransmits += v.sync_retransmits;
                cell.severed_signals += v.severed_signals;
                cell.partition_replayed += v.partition_replayed;
                cell.partition_false_verdicts +=
                    v.partition_false_suspects + v.partition_false_deads;
                cell.max_true_error = cell.max_true_error.max(v.max_true_error);
                cell.stalls += usize::from(v.stalled);
                cell.invariant_violations += v.violations.len();
                if v.mean_inflation.is_finite() {
                    infl_sum += v.mean_inflation;
                    infl_n += 1;
                }
            }
            if infl_n > 0 {
                cell.mean_inflation = infl_sum / infl_n as f64;
            }
            cell
        })
        .collect();

    AdversaryOutcome { cells, verdicts }
}

/// Cell-level CSV: one row per grid coordinate.
pub fn grid_csv(outcome: &AdversaryOutcome) -> String {
    let mut out = String::from(
        "liars,liar_fraction,partition_span,asym_bias,honesty_armed,runs,\
         bracket_samples,bracket_misses,bracket_miss_rate,corrupted_samples,\
         sync_frames_dead,sync_retransmits,severed_signals,partition_replayed,\
         partition_false_verdicts,max_true_error,mean_inflation,stalls,\
         invariant_violations\n",
    );
    for c in &outcome.cells {
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}\n",
            c.liars,
            c.liar_fraction,
            c.partition_span,
            c.asym_bias,
            u8::from(c.honesty_armed),
            c.runs,
            c.bracket_samples,
            c.bracket_misses,
            fmt_f64(c.miss_rate()),
            c.corrupted_samples,
            c.sync_frames_dead,
            c.sync_retransmits,
            c.severed_signals,
            c.partition_replayed,
            c.partition_false_verdicts,
            c.max_true_error,
            fmt_f64(c.mean_inflation),
            c.stalls,
            c.invariant_violations,
        ));
    }
    out
}

/// Summary CSV: one row per liar fraction, aggregated over the partition
/// and asymmetry axes — the honesty cliff in four lines.
pub fn summary_csv(outcome: &AdversaryOutcome) -> String {
    let mut out = String::from(
        "liars,liar_fraction,honesty_armed,cells,runs,bracket_samples,\
         bracket_misses,bracket_miss_rate,corrupted_samples,max_true_error,\
         invariant_violations\n",
    );
    let mut levels: Vec<usize> = outcome.cells.iter().map(|c| c.liars).collect();
    levels.dedup();
    for liars in levels {
        let group: Vec<&AdversaryCell> =
            outcome.cells.iter().filter(|c| c.liars == liars).collect();
        let samples: u64 = group.iter().map(|c| c.bracket_samples).sum();
        let misses: u64 = group.iter().map(|c| c.bracket_misses).sum();
        let rate = if samples == 0 {
            f64::NAN
        } else {
            misses as f64 / samples as f64
        };
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{},{},{},{}\n",
            liars,
            liars as f64 / 4.0,
            u8::from(group.iter().all(|c| c.honesty_armed)),
            group.len(),
            group.iter().map(|c| c.runs).sum::<usize>(),
            samples,
            misses,
            fmt_f64(rate),
            group.iter().map(|c| c.corrupted_samples).sum::<u64>(),
            group.iter().map(|c| c.max_true_error).max().unwrap_or(0),
            group.iter().map(|c| c.invariant_violations).sum::<usize>(),
        ));
    }
    out
}

/// ASCII rendering of the campaign for the terminal.
pub fn render(outcome: &AdversaryOutcome) -> String {
    let mut out = String::from(
        "adversary campaign: bracket miss rate (corrupted | severed signals | false verdicts)\n",
    );
    for c in &outcome.cells {
        out.push_str(&format!(
            "  liars {} ({}{}) cut {:>8} skew {:>5}: {:<7} ({:>6} | {:>5} | {:>4}){}{}\n",
            c.liars,
            c.liar_fraction,
            if c.honesty_armed { ", armed" } else { "" },
            c.partition_span,
            c.asym_bias,
            fmt_f64(c.miss_rate()),
            c.corrupted_samples,
            c.severed_signals,
            c.partition_false_verdicts,
            if c.stalls > 0 {
                format!(", {} STALLED", c.stalls)
            } else {
                String::new()
            },
            if c.invariant_violations > 0 {
                format!(", {} VIOLATIONS", c.invariant_violations)
            } else {
                String::new()
            },
        ));
    }
    let failures = outcome.failures();
    out.push_str(&format!(
        "{} runs, {} failing\n",
        outcome.verdicts.len(),
        failures.len()
    ));
    for v in failures {
        out.push_str(&format!(
            "  FAIL {} liars={} cut={} skew={} run={} seed={:#018x}: {}\n",
            v.protocol.tag(),
            v.liars,
            v.partition_span,
            v.asym_bias,
            v.run_index,
            v.cond_seed,
            v.violations
                .first()
                .map_or_else(|| "stalled".to_string(), |viol| viol.to_string()),
        ));
    }
    out
}

fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.4}")
    } else {
        String::from("NaN")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> AdversaryConfig {
        AdversaryConfig {
            liar_counts: vec![0, 3],
            partition_spans: vec![0, 300_000],
            asym_biases: vec![0],
            runs_per_cell: 2,
            instances_per_task: 5,
            threads: 2,
            ..AdversaryConfig::default()
        }
    }

    #[test]
    fn campaign_is_clean_and_exercises_the_grid() {
        let outcome = run_adversary(&tiny_cfg());
        assert!(
            outcome.is_clean(),
            "{:?}",
            outcome.failures().first().map(|v| &v.violations)
        );
        assert_eq!(outcome.verdicts.len(), 8);
        let severed: u64 = outcome.cells.iter().map(|c| c.severed_signals).sum();
        assert!(severed > 0, "partitioned cells must sever signals");
        let corrupted: u64 = outcome.cells.iter().map(|c| c.corrupted_samples).sum();
        assert!(corrupted > 0, "liar cells must corrupt samples");
    }

    #[test]
    fn minority_cells_stay_honest_and_majority_documents_the_cliff() {
        let outcome = run_adversary(&AdversaryConfig {
            liar_counts: vec![0, 1, 3],
            partition_spans: vec![0],
            asym_biases: vec![0, 2_000],
            runs_per_cell: 3,
            instances_per_task: 5,
            ..AdversaryConfig::default()
        });
        assert!(outcome.is_clean(), "{:?}", outcome.failures().first());
        for c in &outcome.cells {
            assert_eq!(c.honesty_armed, 2 * c.liars < 4);
            if c.honesty_armed {
                assert_eq!(
                    c.bracket_misses, 0,
                    "minority-liar cell must stay honest: {c:?}"
                );
            }
        }
        let majority_misses: u64 = outcome
            .cells
            .iter()
            .filter(|c| !c.honesty_armed)
            .map(|c| c.bracket_misses)
            .sum();
        assert!(
            majority_misses > 0,
            "the grid must document the >= n/2 failure mode"
        );
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let mut cfg = tiny_cfg();
        cfg.threads = 1;
        let a = run_adversary(&cfg);
        cfg.threads = 4;
        let b = run_adversary(&cfg);
        assert_eq!(grid_csv(&a), grid_csv(&b));
        assert_eq!(summary_csv(&a), summary_csv(&b));
    }

    #[test]
    fn smoke_config_covers_the_grid() {
        let cfg = AdversaryConfig::smoke(12);
        assert!(cfg.total_runs() >= 12);
        assert!(cfg.liar_counts.contains(&0) && cfg.liar_counts.iter().any(|&l| 2 * l >= 4));
        assert!(cfg.partition_spans.iter().any(|&s| s > 0));
        assert!(cfg.asym_biases.iter().any(|&b| b > 0));
    }
}
