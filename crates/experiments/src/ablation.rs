//! Ablation studies for the design choices DESIGN.md calls out.
//!
//! 1. **RG rule 2** (§3.2): the paper argues rule 2 shortens average EER
//!    times by letting idle points reset guards. [`rule2_ablation`]
//!    measures `avg EER(RG, rule 1 only) / avg EER(RG)` — how much of the
//!    protocol's advantage rule 2 actually buys at each configuration.
//! 2. **Period distribution** (§5.1): the paper picked a truncated
//!    exponential for extra variation. [`distribution_ablation`] re-runs
//!    the Figure-13 bound-ratio metric under uniform and log-uniform
//!    periods to check the conclusions aren't an artifact of that choice.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rtsync_core::analysis::sa_ds::analyze_ds;
use rtsync_core::analysis::sa_pm::analyze_pm;
use rtsync_core::deadline_assign::{DeadlineSplit, LocalDeadlineMonotonic};
use rtsync_core::priority::PriorityPolicy;
use rtsync_core::protocol::Protocol;
use rtsync_sim::engine::{simulate, SimConfig};
use rtsync_workload::{generate, generate_with_policy, PeriodDistribution, WorkloadSpec};

use crate::grid::Grid;
use crate::study::StudyConfig;

/// Grid of `avg EER(RG without rule 2) / avg EER(RG)` over `(N, U)`.
/// Values ≥ 1; larger means rule 2 matters more there.
pub fn rule2_ablation(cfg: &StudyConfig) -> Grid {
    let mut grid = Grid::new(
        "RG rule-2 ablation: avg-EER ratio rule1-only / full RG",
        cfg.n_values.clone(),
        cfg.u_values.clone(),
    );
    for (ni, &n) in cfg.n_values.iter().enumerate() {
        for (ui, &u) in cfg.u_values.iter().enumerate() {
            let spec = WorkloadSpec::paper(n, u).with_random_phases();
            let mut sum = 0.0;
            let mut count = 0usize;
            for index in 0..cfg.systems_per_config {
                let mut rng = StdRng::seed_from_u64(
                    cfg.seed
                        ^ 0xAB1A_7E00
                        ^ ((n as u64) << 24)
                        ^ (((u * 100.0) as u64) << 8)
                        ^ index as u64,
                );
                let set = generate(&spec, &mut rng).expect("paper spec generates");
                let full = simulate(
                    &set,
                    &SimConfig::new(Protocol::ReleaseGuard).with_instances(cfg.instances_per_task),
                )
                .expect("RG needs no analysis");
                let rule1 = simulate(
                    &set,
                    &SimConfig::new(Protocol::ReleaseGuard)
                        .with_instances(cfg.instances_per_task)
                        .without_rg_rule2(),
                )
                .expect("RG needs no analysis");
                for task in set.tasks() {
                    if let (Some(a), Some(b)) = (
                        rule1.metrics.task(task.id()).avg_eer(),
                        full.metrics.task(task.id()).avg_eer(),
                    ) {
                        sum += a / b;
                        count += 1;
                    }
                }
            }
            grid.set(
                ni,
                ui,
                if count == 0 {
                    f64::NAN
                } else {
                    sum / count as f64
                },
            );
        }
    }
    grid
}

/// Figure-13 metric (mean SA-DS / SA-PM bound ratio) under each period
/// distribution, at the given configurations. Returns one grid per
/// distribution, in the order exponential, uniform, log-uniform.
pub fn distribution_ablation(cfg: &StudyConfig) -> Vec<Grid> {
    let distributions = [
        (
            "exponential",
            PeriodDistribution::TruncatedExponential { scale: 3_000.0 },
        ),
        ("uniform", PeriodDistribution::Uniform),
        ("log-uniform", PeriodDistribution::LogUniform),
    ];
    distributions
        .iter()
        .map(|(label, dist)| {
            let mut grid = Grid::new(
                format!("bound ratio DS/PM with {label} periods"),
                cfg.n_values.clone(),
                cfg.u_values.clone(),
            );
            for (ni, &n) in cfg.n_values.iter().enumerate() {
                for (ui, &u) in cfg.u_values.iter().enumerate() {
                    let mut spec = WorkloadSpec::paper(n, u);
                    spec.period_distribution = *dist;
                    let mut sum = 0.0;
                    let mut count = 0usize;
                    for index in 0..cfg.systems_per_config {
                        let mut rng = StdRng::seed_from_u64(
                            cfg.seed
                                ^ 0xD157_0000
                                ^ ((n as u64) << 24)
                                ^ (((u * 100.0) as u64) << 8)
                                ^ index as u64,
                        );
                        let set = generate(&spec, &mut rng).expect("paper spec generates");
                        let Ok(pm) = analyze_pm(&set, &cfg.analysis) else {
                            continue;
                        };
                        let Ok(ds) = analyze_ds(&set, &cfg.analysis) else {
                            continue;
                        };
                        for task in set.tasks() {
                            sum += ds.task_bound(task.id()).as_f64()
                                / pm.task_bound(task.id()).as_f64();
                            count += 1;
                        }
                    }
                    grid.set(
                        ni,
                        ui,
                        if count == 0 {
                            f64::NAN
                        } else {
                            sum / count as f64
                        },
                    );
                }
            }
            grid
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> StudyConfig {
        StudyConfig {
            n_values: vec![3],
            u_values: vec![0.6],
            systems_per_config: 2,
            instances_per_task: 8,
            seed: 11,
            ..StudyConfig::default()
        }
    }

    #[test]
    fn rule2_ablation_ratio_at_least_one() {
        let grid = rule2_ablation(&tiny());
        let v = grid.get(0, 0);
        assert!(v >= 0.999, "rule-1-only can only be slower: {v}");
    }

    #[test]
    fn distribution_ablation_produces_three_grids() {
        let grids = distribution_ablation(&tiny());
        assert_eq!(grids.len(), 3);
        for g in &grids {
            let v = g.get(0, 0);
            assert!(v.is_nan() || v >= 1.0, "{}: {v}", g.name);
        }
        assert!(grids[1].name.contains("uniform"));
    }
}

/// Resource-contention ablation (the §6 extension): per-task mean of
/// `SA-PM bound with sections / SA-PM bound without`, i.e. how much the
/// one-blocking term inflates the provable worst case as critical-section
/// density grows. Columns are utilizations; one grid per section fraction.
pub fn contention_ablation(cfg: &StudyConfig, fractions: &[f64]) -> Vec<Grid> {
    fractions
        .iter()
        .map(|&fraction| {
            let mut grid = Grid::new(
                format!(
                    "bound inflation with {:.0}% critical-section density",
                    fraction * 100.0
                ),
                cfg.n_values.clone(),
                cfg.u_values.clone(),
            );
            for (ni, &n) in cfg.n_values.iter().enumerate() {
                for (ui, &u) in cfg.u_values.iter().enumerate() {
                    let mut sum = 0.0;
                    let mut count = 0usize;
                    for index in 0..cfg.systems_per_config {
                        let seed = cfg.seed
                            ^ 0xC0A7_0000
                            ^ ((n as u64) << 24)
                            ^ (((u * 100.0) as u64) << 8)
                            ^ index as u64;
                        // Same structural draw with and without sections:
                        // identical seeds, only the fraction differs.
                        let with = generate(
                            &WorkloadSpec::paper(n, u).with_critical_section_fraction(fraction),
                            &mut StdRng::seed_from_u64(seed),
                        )
                        .expect("paper spec generates");
                        let without =
                            generate(&WorkloadSpec::paper(n, u), &mut StdRng::seed_from_u64(seed))
                                .expect("paper spec generates");
                        let (Ok(a), Ok(b)) = (
                            analyze_pm(&with, &cfg.analysis),
                            analyze_pm(&without, &cfg.analysis),
                        ) else {
                            continue;
                        };
                        for task in with.tasks() {
                            sum +=
                                a.task_bound(task.id()).as_f64() / b.task_bound(task.id()).as_f64();
                            count += 1;
                        }
                    }
                    grid.set(
                        ni,
                        ui,
                        if count == 0 {
                            f64::NAN
                        } else {
                            sum / count as f64
                        },
                    );
                }
            }
            grid
        })
        .collect()
}

/// Priority-policy ablation: the paper fixes PDM (≡ the EQF local-deadline
/// split); how do the other classic splits fare? Returns, per split, the
/// fraction of systems provably schedulable under RG (SA/PM bounds vs
/// end-to-end deadlines) — larger is better.
pub fn priority_policy_ablation(cfg: &StudyConfig) -> Vec<Grid> {
    DeadlineSplit::ALL
        .iter()
        .map(|&split| {
            let policy = LocalDeadlineMonotonic(split);
            let mut grid = Grid::new(
                format!("provably schedulable fraction under {}", policy.name()),
                cfg.n_values.clone(),
                cfg.u_values.clone(),
            );
            for (ni, &n) in cfg.n_values.iter().enumerate() {
                for (ui, &u) in cfg.u_values.iter().enumerate() {
                    let mut ok = 0usize;
                    for index in 0..cfg.systems_per_config {
                        let seed = cfg.seed
                            ^ 0x70C1_0000
                            ^ ((n as u64) << 24)
                            ^ (((u * 100.0) as u64) << 8)
                            ^ index as u64;
                        let set = generate_with_policy(
                            &WorkloadSpec::paper(n, u),
                            &policy,
                            &mut StdRng::seed_from_u64(seed),
                        )
                        .expect("paper spec generates");
                        if let Ok(bounds) = analyze_pm(&set, &cfg.analysis) {
                            let schedulable = set
                                .tasks()
                                .iter()
                                .all(|t| bounds.task_bound(t.id()) <= t.deadline());
                            if schedulable {
                                ok += 1;
                            }
                        }
                    }
                    grid.set(ni, ui, ok as f64 / cfg.systems_per_config.max(1) as f64);
                }
            }
            grid
        })
        .collect()
}

#[cfg(test)]
mod extension_tests {
    use super::*;

    fn tiny() -> StudyConfig {
        StudyConfig {
            n_values: vec![3],
            u_values: vec![0.6],
            systems_per_config: 3,
            instances_per_task: 8,
            seed: 17,
            ..StudyConfig::default()
        }
    }

    #[test]
    fn contention_inflates_bounds_monotonically() {
        let grids = contention_ablation(&tiny(), &[0.0, 0.5]);
        assert_eq!(grids.len(), 2);
        let none = grids[0].get(0, 0);
        let heavy = grids[1].get(0, 0);
        assert!(
            (none - 1.0).abs() < 1e-9,
            "zero density is the identity: {none}"
        );
        assert!(heavy >= 1.0, "blocking can only inflate: {heavy}");
    }

    #[test]
    fn policy_ablation_covers_all_splits() {
        let grids = priority_policy_ablation(&tiny());
        assert_eq!(grids.len(), 4);
        for g in &grids {
            let v = g.get(0, 0);
            assert!((0.0..=1.0).contains(&v), "{}: {v}", g.name);
        }
    }
}
