//! Mapping study outcomes onto the paper's figures (12–16).

use crate::grid::Grid;
use crate::study::ConfigOutcome;

/// The five quantitative figures of the paper's evaluation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Figure {
    /// Figure 12: SA/DS failure rate per configuration.
    Fig12FailureRate,
    /// Figure 13: mean bound ratio SA-DS / SA-PM.
    Fig13BoundRatio,
    /// Figure 14: mean avg-EER ratio PM / DS (simulation).
    Fig14PmDs,
    /// Figure 15: mean avg-EER ratio RG / DS.
    Fig15RgDs,
    /// Figure 16: mean avg-EER ratio PM / RG.
    Fig16PmRg,
}

impl Figure {
    /// All five, in paper order.
    pub const ALL: [Figure; 5] = [
        Figure::Fig12FailureRate,
        Figure::Fig13BoundRatio,
        Figure::Fig14PmDs,
        Figure::Fig15RgDs,
        Figure::Fig16PmRg,
    ];

    /// The figure's number in the paper.
    pub fn number(self) -> u32 {
        match self {
            Figure::Fig12FailureRate => 12,
            Figure::Fig13BoundRatio => 13,
            Figure::Fig14PmDs => 14,
            Figure::Fig15RgDs => 15,
            Figure::Fig16PmRg => 16,
        }
    }

    /// Metric name as used in grid headers and CSV filenames.
    pub fn metric_name(self) -> &'static str {
        match self {
            Figure::Fig12FailureRate => "DS failure rate",
            Figure::Fig13BoundRatio => "bound ratio DS/PM",
            Figure::Fig14PmDs => "avg-EER ratio PM/DS",
            Figure::Fig15RgDs => "avg-EER ratio RG/DS",
            Figure::Fig16PmRg => "avg-EER ratio PM/RG",
        }
    }

    /// Extracts this figure's metric from one configuration outcome.
    pub fn extract(self, outcome: &ConfigOutcome) -> f64 {
        match self {
            Figure::Fig12FailureRate => outcome.failure_rate(),
            Figure::Fig13BoundRatio => outcome.bound_ratio_mean,
            Figure::Fig14PmDs => outcome.pm_ds_mean,
            Figure::Fig15RgDs => outcome.rg_ds_mean,
            Figure::Fig16PmRg => outcome.pm_rg_mean,
        }
    }
}

/// Builds an `(N, U)` grid of any per-configuration metric.
pub fn custom_grid(
    name: &str,
    outcomes: &[ConfigOutcome],
    extract: impl Fn(&ConfigOutcome) -> f64,
) -> Grid {
    let mut n_values: Vec<usize> = outcomes.iter().map(|o| o.n).collect();
    n_values.sort_unstable();
    n_values.dedup();
    let mut u_values: Vec<f64> = outcomes.iter().map(|o| o.u).collect();
    u_values.sort_by(f64::total_cmp);
    u_values.dedup_by(|a, b| (*a - *b).abs() < 1e-9);
    let mut grid = Grid::new(name, n_values, u_values);
    for o in outcomes {
        let ni = grid
            .n_values
            .iter()
            .position(|&n| n == o.n)
            .expect("outcome n collected above");
        let ui = grid
            .u_values
            .iter()
            .position(|&u| (u - o.u).abs() < 1e-9)
            .expect("outcome u collected above");
        grid.set(ni, ui, extract(o));
    }
    grid
}

/// Builds the `(N, U)` grid of one figure from study outcomes.
pub fn figure_grid(figure: Figure, outcomes: &[ConfigOutcome]) -> Grid {
    let mut n_values: Vec<usize> = outcomes.iter().map(|o| o.n).collect();
    n_values.sort_unstable();
    n_values.dedup();
    let mut u_values: Vec<f64> = outcomes.iter().map(|o| o.u).collect();
    u_values.sort_by(f64::total_cmp);
    u_values.dedup_by(|a, b| (*a - *b).abs() < 1e-9);

    let mut grid = Grid::new(
        format!("figure {}: {}", figure.number(), figure.metric_name()),
        n_values,
        u_values,
    );
    for o in outcomes {
        let ni = grid
            .n_values
            .iter()
            .position(|&n| n == o.n)
            .expect("outcome n collected above");
        let ui = grid
            .u_values
            .iter()
            .position(|&u| (u - o.u).abs() < 1e-9)
            .expect("outcome u collected above");
        grid.set(ni, ui, figure.extract(o));
    }
    grid
}

#[cfg(test)]
mod custom_grid_tests {
    use super::*;

    #[test]
    fn custom_grid_extracts_any_metric() {
        let outcomes = vec![ConfigOutcome {
            n: 2,
            u: 0.5,
            systems: 1,
            ds_failures: 0,
            bound_ratio_mean: 1.0,
            pm_ds_mean: 2.0,
            rg_ds_mean: 1.1,
            pm_rg_mean: 1.8,
            pm_ds_p99_mean: 1.5,
            rg_ds_p99_mean: 1.05,
            pm_ds_ci90: 0.01,
            rg_ds_ci90: 0.01,
            bound_ratio_ci90: 0.01,
            events: 1000,
        }];
        let g = custom_grid("p99 PM/DS", &outcomes, |o| o.pm_ds_p99_mean);
        assert_eq!(g.at(2, 0.5), Some(1.5));
        assert_eq!(g.name, "p99 PM/DS");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(n: usize, u: f64) -> ConfigOutcome {
        ConfigOutcome {
            n,
            u,
            systems: 10,
            ds_failures: 5,
            bound_ratio_mean: 1.5,
            pm_ds_mean: 2.0,
            rg_ds_mean: 1.2,
            pm_rg_mean: 1.7,
            pm_ds_p99_mean: 2.1,
            rg_ds_p99_mean: 1.3,
            pm_ds_ci90: 0.01,
            rg_ds_ci90: 0.01,
            bound_ratio_ci90: 0.01,
            events: 1000,
        }
    }

    #[test]
    fn extraction_per_figure() {
        let o = outcome(4, 0.7);
        assert_eq!(Figure::Fig12FailureRate.extract(&o), 0.5);
        assert_eq!(Figure::Fig13BoundRatio.extract(&o), 1.5);
        assert_eq!(Figure::Fig14PmDs.extract(&o), 2.0);
        assert_eq!(Figure::Fig15RgDs.extract(&o), 1.2);
        assert_eq!(Figure::Fig16PmRg.extract(&o), 1.7);
    }

    #[test]
    fn grid_assembles_from_outcomes() {
        let outcomes = vec![outcome(2, 0.5), outcome(2, 0.6), outcome(3, 0.5)];
        let g = figure_grid(Figure::Fig14PmDs, &outcomes);
        assert_eq!(g.n_values, vec![2, 3]);
        assert_eq!(g.u_values, vec![0.5, 0.6]);
        assert_eq!(g.at(2, 0.6), Some(2.0));
        assert!(g.at(3, 0.6).unwrap().is_nan(), "missing cell stays NaN");
    }

    #[test]
    fn numbering_and_names() {
        assert_eq!(Figure::ALL.len(), 5);
        let numbers: Vec<u32> = Figure::ALL.iter().map(|f| f.number()).collect();
        assert_eq!(numbers, vec![12, 13, 14, 15, 16]);
        for f in Figure::ALL {
            assert!(!f.metric_name().is_empty());
        }
    }
}
