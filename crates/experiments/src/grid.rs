//! `(N, U)` result grids: the data behind Figures 12–16, with CSV and
//! ASCII-table rendering.

use std::fmt;

/// A metric evaluated over the configuration grid: rows are subtask counts
/// `N`, columns are processor utilizations `U`.
#[derive(Clone, PartialEq, Debug)]
pub struct Grid {
    /// Metric name (e.g. `"failure rate"`).
    pub name: String,
    /// Row labels: subtasks per task.
    pub n_values: Vec<usize>,
    /// Column labels: per-processor utilization.
    pub u_values: Vec<f64>,
    /// `cells[n_idx][u_idx]`; `NaN` marks "no data" (e.g. a ratio over an
    /// empty set of finite-bound systems).
    pub cells: Vec<Vec<f64>>,
}

impl Grid {
    /// Creates a grid filled with `NaN`.
    pub fn new(name: impl Into<String>, n_values: Vec<usize>, u_values: Vec<f64>) -> Grid {
        let cells = vec![vec![f64::NAN; u_values.len()]; n_values.len()];
        Grid {
            name: name.into(),
            n_values,
            u_values,
            cells,
        }
    }

    /// Sets one cell by grid indices.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    pub fn set(&mut self, n_idx: usize, u_idx: usize, value: f64) {
        self.cells[n_idx][u_idx] = value;
    }

    /// Reads one cell by grid indices.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    pub fn get(&self, n_idx: usize, u_idx: usize) -> f64 {
        self.cells[n_idx][u_idx]
    }

    /// Reads the cell for configuration `(n, u)`.
    pub fn at(&self, n: usize, u: f64) -> Option<f64> {
        let ni = self.n_values.iter().position(|&x| x == n)?;
        let ui = self.u_values.iter().position(|&x| (x - u).abs() < 1e-9)?;
        Some(self.cells[ni][ui])
    }

    /// Serializes as CSV: header `n,u1,u2,…`, one row per `N`.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("n");
        for u in &self.u_values {
            out.push_str(&format!(",{:.0}", u * 100.0));
        }
        out.push('\n');
        for (ni, n) in self.n_values.iter().enumerate() {
            out.push_str(&n.to_string());
            for ui in 0..self.u_values.len() {
                let v = self.cells[ni][ui];
                if v.is_nan() {
                    out.push(',');
                } else {
                    out.push_str(&format!(",{v:.4}"));
                }
            }
            out.push('\n');
        }
        out
    }

    /// Mean over all non-`NaN` cells.
    pub fn mean(&self) -> f64 {
        let vals: Vec<f64> = self
            .cells
            .iter()
            .flatten()
            .copied()
            .filter(|v| !v.is_nan())
            .collect();
        if vals.is_empty() {
            f64::NAN
        } else {
            vals.iter().sum::<f64>() / vals.len() as f64
        }
    }
}

impl fmt::Display for Grid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} (rows: subtasks/task, cols: utilization %)",
            self.name
        )?;
        write!(f, "{:>4}", "N\\U")?;
        for u in &self.u_values {
            write!(f, "{:>9.0}", u * 100.0)?;
        }
        writeln!(f)?;
        for (ni, n) in self.n_values.iter().enumerate() {
            write!(f, "{n:>4}")?;
            for ui in 0..self.u_values.len() {
                let v = self.cells[ni][ui];
                if v.is_nan() {
                    write!(f, "{:>9}", "-")?;
                } else {
                    write!(f, "{v:>9.3}")?;
                }
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> Grid {
        let mut g = Grid::new("test metric", vec![2, 3], vec![0.5, 0.6]);
        g.set(0, 0, 1.0);
        g.set(0, 1, 2.0);
        g.set(1, 0, 3.0);
        g
    }

    #[test]
    fn set_get_at() {
        let g = grid();
        assert_eq!(g.get(0, 1), 2.0);
        assert_eq!(g.at(3, 0.5), Some(3.0));
        assert!(g.at(3, 0.6).unwrap().is_nan());
        assert_eq!(g.at(9, 0.5), None);
        assert_eq!(g.at(2, 0.9), None);
    }

    #[test]
    fn csv_roundtrip_shape() {
        let csv = grid().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "n,50,60");
        assert_eq!(lines[1], "2,1.0000,2.0000");
        assert_eq!(lines[2], "3,3.0000,"); // NaN renders empty
    }

    #[test]
    fn display_renders_table() {
        let text = grid().to_string();
        assert!(text.contains("test metric"));
        assert!(text.contains("N\\U"));
        assert!(text.contains("50"));
        assert!(text.contains("1.000"));
        assert!(text.contains("-")); // NaN cell
    }

    #[test]
    fn mean_skips_nan() {
        assert_eq!(grid().mean(), 2.0);
        let empty = Grid::new("e", vec![1], vec![0.5]);
        assert!(empty.mean().is_nan());
    }
}
