//! The simulation study of §5: evaluate many synthetic systems per
//! configuration, under every protocol, collecting everything Figures
//! 12–16 need in one pass per system.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::seeding::system_seed;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rtsync_core::analysis::sa_ds::analyze_ds;
use rtsync_core::analysis::sa_pm::analyze_pm;
use rtsync_core::analysis::AnalysisConfig;
use rtsync_core::protocol::Protocol;
use rtsync_core::task::{TaskId, TaskSet};
use rtsync_sim::engine::{simulate, SimConfig};
use rtsync_workload::{generate, WorkloadSpec};

/// Study parameters. Defaults mirror the paper's setup with a reduced
/// system count (the paper used 1000 systems per configuration; pass
/// `--systems 1000` to the `reproduce` binary for the full run).
#[derive(Clone, Debug)]
pub struct StudyConfig {
    /// Subtask counts (paper: 2–8).
    pub n_values: Vec<usize>,
    /// Per-processor utilizations (paper: 0.5–0.9).
    pub u_values: Vec<f64>,
    /// Systems per configuration.
    pub systems_per_config: usize,
    /// Master seed; every system's seed derives deterministically from it.
    pub seed: u64,
    /// Per-task end-to-end instance target for average-EER simulation.
    pub instances_per_task: u64,
    /// Worker threads (the study is embarrassingly parallel over systems).
    pub threads: usize,
    /// Analysis knobs (failure criterion etc.).
    pub analysis: AnalysisConfig,
}

impl Default for StudyConfig {
    fn default() -> StudyConfig {
        StudyConfig {
            n_values: (2..=8).collect(),
            u_values: vec![0.5, 0.6, 0.7, 0.8, 0.9],
            systems_per_config: 20,
            seed: 0xC0FF_EE00,
            instances_per_task: 20,
            threads: std::thread::available_parallelism().map_or(4, |n| n.get()),
            analysis: AnalysisConfig::default(),
        }
    }
}

/// Everything measured on one synthetic system.
#[derive(Clone, Debug)]
pub struct SystemEval {
    /// SA/DS failed to find finite bounds (the Figure-12 event).
    pub ds_failed: bool,
    /// Per-task `SA-DS bound / SA-PM bound` (empty when `ds_failed`).
    pub bound_ratios: Vec<f64>,
    /// Per-task `avg-EER(PM) / avg-EER(DS)` from simulation.
    pub pm_ds: Vec<f64>,
    /// Per-task `avg-EER(RG) / avg-EER(DS)`.
    pub rg_ds: Vec<f64>,
    /// Per-task `avg-EER(PM) / avg-EER(RG)`.
    pub pm_rg: Vec<f64>,
    /// Per-task p99-EER ratio PM/DS (tail-latency view, beyond the paper).
    pub pm_ds_p99: Vec<f64>,
    /// Per-task p99-EER ratio RG/DS.
    pub rg_ds_p99: Vec<f64>,
    /// Simulation events dispatched across the three protocol runs (for
    /// run-log throughput accounting).
    pub events: u64,
}

/// Aggregates over one configuration `(N, U)`.
#[derive(Clone, Debug)]
pub struct ConfigOutcome {
    /// Subtasks per task.
    pub n: usize,
    /// Per-processor utilization.
    pub u: f64,
    /// Systems evaluated.
    pub systems: usize,
    /// Systems where SA/DS failed.
    pub ds_failures: usize,
    /// Mean of per-task bound ratios over DS-finite systems (`NaN` if
    /// every system failed).
    pub bound_ratio_mean: f64,
    /// Mean per-task avg-EER ratio PM/DS.
    pub pm_ds_mean: f64,
    /// Mean per-task avg-EER ratio RG/DS.
    pub rg_ds_mean: f64,
    /// Mean per-task avg-EER ratio PM/RG.
    pub pm_rg_mean: f64,
    /// Mean per-task p99-EER ratio PM/DS.
    pub pm_ds_p99_mean: f64,
    /// Mean per-task p99-EER ratio RG/DS.
    pub rg_ds_p99_mean: f64,
    /// Half-width of the 90% confidence interval of `pm_ds_mean` (normal
    /// approximation over the per-task samples). The paper: "the 90%
    /// confidence intervals are negligibly small for all configurations".
    pub pm_ds_ci90: f64,
    /// Half-width of the 90% confidence interval of `rg_ds_mean`.
    pub rg_ds_ci90: f64,
    /// Half-width of the 90% confidence interval of `bound_ratio_mean`.
    pub bound_ratio_ci90: f64,
    /// Simulation events dispatched over every system of the configuration.
    pub events: u64,
}

impl ConfigOutcome {
    /// Fraction of systems where SA/DS failed (Figure 12's y-axis).
    pub fn failure_rate(&self) -> f64 {
        if self.systems == 0 {
            f64::NAN
        } else {
            self.ds_failures as f64 / self.systems as f64
        }
    }
}

/// Evaluates one system: both analyses, plus average-EER simulation under
/// DS, PM and RG (MPM is schedule-identical to PM under the study's
/// periodic sources, so it is not simulated separately).
pub fn evaluate_system(set: &TaskSet, cfg: &StudyConfig) -> SystemEval {
    // Analyses (phases are irrelevant to both).
    let pm_bounds = analyze_pm(set, &cfg.analysis);
    let ds_bounds = analyze_ds(set, &cfg.analysis);

    let (ds_failed, bound_ratios) = match (&pm_bounds, &ds_bounds) {
        (Ok(pm), Ok(ds)) => {
            let ratios = set
                .tasks()
                .iter()
                .map(|t| ds.task_bound(t.id()).as_f64() / pm.task_bound(t.id()).as_f64())
                .collect();
            (false, ratios)
        }
        _ => (true, Vec::new()),
    };

    // Simulations. PM needs finite SA/PM bounds; at the study's U ≤ 0.9
    // they always exist.
    let sim = |protocol| {
        let sim_cfg = SimConfig::new(protocol).with_instances(cfg.instances_per_task);
        simulate(set, &sim_cfg).expect("study systems are analyzable under SA/PM")
    };
    let ds_sim = sim(Protocol::DirectSync);
    let pm_sim = sim(Protocol::PhaseModification);
    let rg_sim = sim(Protocol::ReleaseGuard);

    let avg = |out: &rtsync_sim::SimOutcome, t: TaskId| out.metrics.task(t).avg_eer();
    let p99 = |out: &rtsync_sim::SimOutcome, t: TaskId| {
        out.metrics.task(t).eer_quantile(0.99).map(|d| d.as_f64())
    };
    let mut pm_ds = Vec::new();
    let mut rg_ds = Vec::new();
    let mut pm_rg = Vec::new();
    let mut pm_ds_p99 = Vec::new();
    let mut rg_ds_p99 = Vec::new();
    for t in set.tasks() {
        let (Some(d), Some(p), Some(r)) = (
            avg(&ds_sim, t.id()),
            avg(&pm_sim, t.id()),
            avg(&rg_sim, t.id()),
        ) else {
            continue; // a task never completed before the horizon: skip it
        };
        pm_ds.push(p / d);
        rg_ds.push(r / d);
        pm_rg.push(p / r);
        if let (Some(dq), Some(pq), Some(rq)) = (
            p99(&ds_sim, t.id()),
            p99(&pm_sim, t.id()),
            p99(&rg_sim, t.id()),
        ) {
            if dq > 0.0 {
                pm_ds_p99.push(pq / dq);
                rg_ds_p99.push(rq / dq);
            }
        }
    }

    SystemEval {
        ds_failed,
        bound_ratios,
        pm_ds,
        rg_ds,
        pm_rg,
        pm_ds_p99,
        rg_ds_p99,
        events: ds_sim.events + pm_sim.events + rg_sim.events,
    }
}

/// Runs every system of one configuration (in parallel) and aggregates.
pub fn run_config(n: usize, u: f64, cfg: &StudyConfig) -> ConfigOutcome {
    let evals = evaluate_many(n, u, cfg);
    aggregate(n, u, &evals)
}

/// Runs the whole grid. Returns outcomes in row-major `(N, U)` order.
pub fn run_study(cfg: &StudyConfig) -> Vec<ConfigOutcome> {
    let mut out = Vec::with_capacity(cfg.n_values.len() * cfg.u_values.len());
    for &n in &cfg.n_values {
        for &u in &cfg.u_values {
            out.push(run_config(n, u, cfg));
        }
    }
    out
}

fn evaluate_many(n: usize, u: f64, cfg: &StudyConfig) -> Vec<SystemEval> {
    let spec = WorkloadSpec::paper(n, u).with_random_phases();
    let seeds: Vec<u64> = (0..cfg.systems_per_config)
        .map(|i| system_seed(cfg.seed, n, u, i))
        .collect();
    let results: Mutex<Vec<Option<SystemEval>>> = Mutex::new(vec![None; cfg.systems_per_config]);
    let next = AtomicUsize::new(0);
    let threads = cfg.threads.clamp(1, cfg.systems_per_config.max(1));
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= seeds.len() {
                    break;
                }
                let mut rng = StdRng::seed_from_u64(seeds[i]);
                let set = generate(&spec, &mut rng).expect("paper spec always generates");
                let eval = evaluate_system(&set, cfg);
                results.lock().expect("no panics while holding the lock")[i] = Some(eval);
            });
        }
    });
    results
        .into_inner()
        .expect("lock released")
        .into_iter()
        .map(|e| e.expect("every index was evaluated"))
        .collect()
}

fn aggregate(n: usize, u: f64, evals: &[SystemEval]) -> ConfigOutcome {
    let ds_failures = evals.iter().filter(|e| e.ds_failed).count();
    let collect = |select: fn(&SystemEval) -> &Vec<f64>| -> Vec<f64> {
        evals
            .iter()
            .flat_map(|e| select(e).iter().copied())
            .collect()
    };
    let mean_of = |select: fn(&SystemEval) -> &Vec<f64>| mean(&collect(select));
    ConfigOutcome {
        n,
        u,
        systems: evals.len(),
        ds_failures,
        bound_ratio_mean: mean_of(|e| &e.bound_ratios),
        pm_ds_mean: mean_of(|e| &e.pm_ds),
        rg_ds_mean: mean_of(|e| &e.rg_ds),
        pm_rg_mean: mean_of(|e| &e.pm_rg),
        pm_ds_p99_mean: mean_of(|e| &e.pm_ds_p99),
        rg_ds_p99_mean: mean_of(|e| &e.rg_ds_p99),
        pm_ds_ci90: ci90_half_width(&collect(|e| &e.pm_ds)),
        rg_ds_ci90: ci90_half_width(&collect(|e| &e.rg_ds)),
        bound_ratio_ci90: ci90_half_width(&collect(|e| &e.bound_ratios)),
        events: evals.iter().map(|e| e.events).sum(),
    }
}

fn mean(vals: &[f64]) -> f64 {
    if vals.is_empty() {
        f64::NAN
    } else {
        vals.iter().sum::<f64>() / vals.len() as f64
    }
}

/// Half-width of the 90% confidence interval of the sample mean, using the
/// normal approximation (`1.645 · s/√n`); `NaN` below two samples.
pub fn ci90_half_width(vals: &[f64]) -> f64 {
    if vals.len() < 2 {
        return f64::NAN;
    }
    let m = mean(vals);
    let var = vals.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / (vals.len() - 1) as f64;
    1.645 * (var / vals.len() as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> StudyConfig {
        StudyConfig {
            n_values: vec![2],
            u_values: vec![0.5],
            systems_per_config: 3,
            seed: 7,
            instances_per_task: 5,
            threads: 2,
            analysis: AnalysisConfig::default(),
        }
    }

    #[test]
    fn evaluate_system_produces_ratios() {
        let cfg = tiny_cfg();
        let spec = WorkloadSpec::paper(2, 0.5).with_random_phases();
        let mut rng = StdRng::seed_from_u64(1);
        let set = generate(&spec, &mut rng).unwrap();
        let eval = evaluate_system(&set, &cfg);
        assert!(!eval.ds_failed, "(2, 50) virtually never fails");
        assert_eq!(eval.bound_ratios.len(), 12);
        // SA/DS dominates SA/PM for every task.
        for r in &eval.bound_ratios {
            assert!(*r >= 1.0 - 1e-9, "bound ratio {r} below 1");
        }
        assert_eq!(eval.pm_ds.len(), 12);
        // PM delays releases: on average at least as slow as DS.
        let mean: f64 = eval.pm_ds.iter().sum::<f64>() / 12.0;
        assert!(mean >= 1.0, "PM/DS mean {mean} below 1");
    }

    #[test]
    fn ci90_math() {
        assert!(ci90_half_width(&[]).is_nan());
        assert!(ci90_half_width(&[1.0]).is_nan());
        // Constant samples: zero width.
        assert_eq!(ci90_half_width(&[2.0, 2.0, 2.0]), 0.0);
        // s = 1 over 4 samples: 1.645 / 2.
        let hw = ci90_half_width(&[1.0, 2.0, 3.0, 2.0]);
        let m: f64 = 2.0;
        let var = ((1.0f64 - m).powi(2) + (3.0f64 - m).powi(2)) / 3.0;
        assert!((hw - 1.645 * (var / 4.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn run_config_aggregates() {
        let cfg = tiny_cfg();
        let out = run_config(2, 0.5, &cfg);
        assert_eq!(out.systems, 3);
        assert_eq!(out.ds_failures, 0);
        assert_eq!(out.failure_rate(), 0.0);
        assert!(out.bound_ratio_mean >= 1.0);
        assert!(out.pm_ds_mean >= 1.0);
        // Confidence intervals computed and finite with 3 systems × 12 tasks.
        assert!(out.pm_ds_ci90.is_finite() && out.pm_ds_ci90 >= 0.0);
        assert!(out.rg_ds_ci90.is_finite());
        // "Negligibly small" relative to the mean, as the paper reports.
        assert!(out.pm_ds_ci90 < 0.25 * out.pm_ds_mean, "{out:?}");
        assert!(out.pm_rg_mean >= 0.9, "{}", out.pm_rg_mean);
        // Tail ratios are populated and PM's tail dominates DS's (PM pins
        // the whole distribution near the worst case). The histogram's
        // 6.25% quantization leaves a little slack.
        assert!(out.pm_ds_p99_mean > 0.9, "{}", out.pm_ds_p99_mean);
        assert!(out.rg_ds_p99_mean > 0.5, "{}", out.rg_ds_p99_mean);
    }

    #[test]
    fn study_is_deterministic_across_thread_counts() {
        let mut cfg = tiny_cfg();
        cfg.threads = 1;
        let a = run_config(2, 0.5, &cfg);
        cfg.threads = 3;
        let b = run_config(2, 0.5, &cfg);
        assert_eq!(a.bound_ratio_mean, b.bound_ratio_mean);
        assert_eq!(a.pm_ds_mean, b.pm_ds_mean);
        assert_eq!(a.rg_ds_mean, b.rg_ds_mean);
    }

    #[test]
    fn default_config_matches_paper_grid() {
        let cfg = StudyConfig::default();
        assert_eq!(cfg.n_values, vec![2, 3, 4, 5, 6, 7, 8]);
        assert_eq!(cfg.u_values.len(), 5);
        assert_eq!(cfg.n_values.len() * cfg.u_values.len(), 35);
    }
}
