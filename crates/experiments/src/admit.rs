//! The admission-control throughput study: how many online admit/retire
//! decisions per second the incremental engine sustains on §5.1
//! synthetic workloads, and what the memoization actually buys.
//!
//! Each run draws a seeded §5.1 system (4 processors), converts its task
//! chains into [`ChainRequest`]s ranked shortest-period-first, and
//! drives the same operation sequence through two
//! [`AdmissionState`] arms over identical requests:
//!
//! * **warm** — memoization on: `admit` re-runs fixed points only for
//!   subtasks whose interference set changed, seeded from the memoized
//!   bounds;
//! * **cold** — memoization off: every decision re-analyzes the whole
//!   resident system from scratch, exactly the batch analyses.
//!
//! The sequence admits every chain, then churns: each round retires one
//! resident (cycling over the admitted ids) and re-admits it. That is
//! the online steady state the engine exists for — membership changes
//! one chain at a time against a warm resident set. Per `(N, U, mode)`
//! cell the study reports decisions/s for both arms, the warm/cold
//! speedup, the subtask re-analyses each arm actually ran, and a
//! verdict-agreement count: any admit/retire whose outcome differs
//! between the arms is a correctness failure
//! ([`AdmitOutcome::is_clean`]), since memoization is exactness-
//! preserving by construction.
//!
//! Timings are wall-clock and machine-dependent; the recorded CSVs are
//! a snapshot, the agreement counters are invariants.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use crate::seeding::job_seed;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rtsync_core::analysis::admission::{
    AdmissionConfig, AdmissionMode, AdmissionState, ChainRequest,
};
use rtsync_workload::{generate, WorkloadSpec};

/// Admission-study parameters.
#[derive(Clone, Debug)]
pub struct AdmitStudyConfig {
    /// Workload shapes to sweep: `(subtasks per task, per-processor
    /// utilization)` of the §5.1 generator.
    pub shapes: Vec<(usize, f64)>,
    /// Analysis modes to sweep.
    pub modes: Vec<AdmissionMode>,
    /// Systems drawn per `(shape, mode)` cell.
    pub systems_per_cell: usize,
    /// Retire + re-admit rounds per system after the initial fill.
    pub churn_rounds: usize,
    /// Master seed; system seeds derive from it.
    pub seed: u64,
    /// Worker threads.
    pub threads: usize,
}

impl Default for AdmitStudyConfig {
    fn default() -> AdmitStudyConfig {
        AdmitStudyConfig {
            shapes: vec![(2, 0.25), (4, 0.25), (4, 0.50), (8, 0.50)],
            modes: vec![AdmissionMode::PmFamily, AdmissionMode::DirectSync],
            systems_per_cell: 8,
            churn_rounds: 200,
            seed: 0xAD31_7000,
            threads: std::thread::available_parallelism().map_or(4, |n| n.get()),
        }
    }
}

impl AdmitStudyConfig {
    /// A reduced study for CI smoke jobs and tests.
    pub fn smoke() -> AdmitStudyConfig {
        AdmitStudyConfig {
            shapes: vec![(2, 0.25), (4, 0.50)],
            systems_per_cell: 2,
            churn_rounds: 12,
            ..AdmitStudyConfig::default()
        }
    }

    /// Total runs in the study (each run drives both arms).
    pub fn total_runs(&self) -> usize {
        self.shapes.len() * self.modes.len() * self.systems_per_cell
    }
}

/// One arm's measurements out of one run.
#[derive(Clone, Copy, Debug, Default)]
pub struct AdmitArm {
    /// Admit + retire operations served.
    pub ops: u64,
    /// Chains admitted (initial fill + churn re-admissions).
    pub admitted: u64,
    /// Admissions rejected.
    pub rejected: u64,
    /// Subtask analyses actually re-run.
    pub reanalyzed: u64,
    /// Subtask analyses skipped by memoization.
    pub skipped: u64,
    /// Wall-clock seconds spent inside the engine.
    pub seconds: f64,
}

impl AdmitArm {
    /// Decisions per second (admits + retires over engine time).
    pub fn rate(&self) -> f64 {
        if self.seconds > 0.0 {
            self.ops as f64 / self.seconds
        } else {
            0.0
        }
    }
}

/// The verdict of one run: both arms over the same operation sequence.
#[derive(Clone, Debug)]
pub struct AdmitVerdict {
    /// Subtasks per task of this run's cell.
    pub n: usize,
    /// Per-processor utilization of this run's cell.
    pub u: f64,
    /// Analysis mode of this run's cell.
    pub mode: AdmissionMode,
    /// Run index within the cell.
    pub run_index: usize,
    /// Seed the synthetic system was generated from.
    pub system_seed: u64,
    /// The memoizing arm.
    pub warm: AdmitArm,
    /// The from-scratch arm.
    pub cold: AdmitArm,
    /// Operations whose outcome differed between the arms (must be 0).
    pub disagreements: u64,
}

/// Aggregate of one `(N, U, mode)` cell.
#[derive(Clone, Debug)]
pub struct AdmitCell {
    /// Subtasks per task.
    pub n: usize,
    /// Per-processor utilization.
    pub u: f64,
    /// Analysis mode.
    pub mode: AdmissionMode,
    /// Runs aggregated.
    pub runs: usize,
    /// Warm-arm totals.
    pub warm: AdmitArm,
    /// Cold-arm totals.
    pub cold: AdmitArm,
    /// Total operations that disagreed between the arms.
    pub disagreements: u64,
}

impl AdmitCell {
    /// Warm-over-cold throughput ratio.
    pub fn speedup(&self) -> f64 {
        let cold = self.cold.rate();
        if cold > 0.0 {
            self.warm.rate() / cold
        } else {
            f64::NAN
        }
    }
}

/// The whole study's outcome.
#[derive(Clone, Debug)]
pub struct AdmitOutcome {
    /// Cell aggregates: shapes outer, modes inner.
    pub cells: Vec<AdmitCell>,
    /// Per-run verdicts in deterministic (cell, run) order.
    pub verdicts: Vec<AdmitVerdict>,
}

impl AdmitOutcome {
    /// `true` when the warm and cold arms agreed on every single
    /// operation's outcome — the memoization exactness invariant.
    pub fn is_clean(&self) -> bool {
        self.verdicts.iter().all(|v| v.disagreements == 0)
    }

    /// Decisions/s of the memoizing arm across all runs.
    pub fn overall_warm_rate(&self) -> f64 {
        let (ops, secs) = self.verdicts.iter().fold((0u64, 0.0), |(o, s), v| {
            (o + v.warm.ops, s + v.warm.seconds)
        });
        if secs > 0.0 {
            ops as f64 / secs
        } else {
            0.0
        }
    }
}

/// The §5.1 system of one run, as admission requests: one chain per
/// task, id = task index, ranked shortest-period-first (the deadline-
/// monotonic order the workload generator assigns priorities in).
fn requests_of(system_seed: u64, n: usize, u: f64) -> (usize, Vec<ChainRequest>) {
    let spec = WorkloadSpec::paper(n, u);
    let set = generate(&spec, &mut StdRng::seed_from_u64(system_seed))
        .expect("paper spec always generates");
    let requests = set
        .tasks()
        .iter()
        .enumerate()
        .map(|(i, task)| {
            let subtasks = task
                .subtasks()
                .iter()
                .map(|sub| (sub.processor().index(), sub.execution()))
                .collect();
            ChainRequest::new(i as u64, task.period(), subtasks)
                .with_deadline(task.deadline())
                .with_rank(task.period().ticks().min(i64::from(u32::MAX)) as u32)
        })
        .collect();
    (set.num_processors(), requests)
}

/// Drives one arm through the full sequence: admit every chain, then
/// `churn_rounds` retire + re-admit rounds cycling over the admitted
/// ids. Returns the measurements plus the per-operation outcome trace
/// (admitted flag per admit, success flag per retire) for agreement
/// checking.
fn drive(
    processors: usize,
    requests: &[ChainRequest],
    churn_rounds: usize,
    cfg: AdmissionConfig,
) -> (AdmitArm, Vec<bool>) {
    let mut state = AdmissionState::new(processors, cfg);
    let mut outcomes = Vec::with_capacity(requests.len() + 2 * churn_rounds);
    let mut arm = AdmitArm::default();
    let started = Instant::now();
    let mut resident_ids: Vec<u64> = Vec::new();
    for req in requests {
        let decision = state.admit(req.clone());
        if decision.admitted {
            resident_ids.push(req.id);
        }
        outcomes.push(decision.admitted);
    }
    for round in 0..churn_rounds {
        if resident_ids.is_empty() {
            break;
        }
        let id = resident_ids[round % resident_ids.len()];
        let retired = state.retire(id).is_ok();
        outcomes.push(retired);
        let req = requests[id as usize].clone();
        let readmitted = state.admit(req).admitted;
        outcomes.push(readmitted);
        if !readmitted {
            // Shrinking a schedulable system and re-growing it to the
            // same membership cannot fail; recorded for the agreement
            // check rather than assumed.
            resident_ids.retain(|&r| r != id);
        }
    }
    arm.seconds = started.elapsed().as_secs_f64();
    let stats = state.stats();
    arm.ops = stats.decisions + stats.retired;
    arm.admitted = stats.admitted;
    arm.rejected = stats.rejected;
    arm.reanalyzed = stats.subtasks_reanalyzed;
    arm.skipped = stats.subtasks_skipped;
    (arm, outcomes)
}

/// Evaluates one run of one cell: both arms over the same sequence.
fn evaluate_run(
    cell: (usize, f64, AdmissionMode),
    run_index: usize,
    system_seed: u64,
    churn_rounds: usize,
) -> AdmitVerdict {
    let (n, u, mode) = cell;
    let (processors, requests) = requests_of(system_seed, n, u);
    let base = AdmissionConfig::new(mode);
    let (warm, warm_outcomes) = drive(processors, &requests, churn_rounds, base);
    let (cold, cold_outcomes) = drive(
        processors,
        &requests,
        churn_rounds,
        base.with_memoization(false),
    );
    let disagreements = warm_outcomes
        .iter()
        .zip(&cold_outcomes)
        .filter(|(w, c)| w != c)
        .count() as u64
        + warm_outcomes.len().abs_diff(cold_outcomes.len()) as u64;
    AdmitVerdict {
        n,
        u,
        mode,
        run_index,
        system_seed,
        warm,
        cold,
        disagreements,
    }
}

/// Runs the whole study: `shapes × modes × systems_per_cell` seeded
/// runs, two arms each. Cells come back shapes-outer, modes-inner;
/// verdicts in (cell, run) order. Outcome *verdicts* are deterministic
/// for a given config; the timings are wall-clock.
pub fn run_admit_study(cfg: &AdmitStudyConfig) -> AdmitOutcome {
    let cells: Vec<(usize, f64, AdmissionMode)> = cfg
        .shapes
        .iter()
        .flat_map(|&(n, u)| cfg.modes.iter().map(move |&mode| (n, u, mode)))
        .collect();
    let jobs: Vec<(usize, usize)> = (0..cells.len())
        .flat_map(|c| (0..cfg.systems_per_cell).map(move |r| (c, r)))
        .collect();

    let results: Mutex<Vec<Option<AdmitVerdict>>> = Mutex::new(vec![None; jobs.len()]);
    let next = AtomicUsize::new(0);
    let threads = cfg.threads.clamp(1, jobs.len().max(1));
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let j = next.fetch_add(1, Ordering::Relaxed);
                if j >= jobs.len() {
                    break;
                }
                let (c, r) = jobs[j];
                // Same shape + run index → same system seed, so every
                // mode (and both arms) sees identical systems.
                let (n, u, _) = cells[c];
                let shape_index = cfg
                    .shapes
                    .iter()
                    .position(|&s| s == (n, u))
                    .expect("own shape");
                let system_seed = job_seed(cfg.seed, shape_index, r);
                let verdict = evaluate_run(cells[c], r, system_seed, cfg.churn_rounds);
                results.lock().expect("no panics while holding the lock")[j] = Some(verdict);
            });
        }
    });
    let verdicts: Vec<AdmitVerdict> = results
        .into_inner()
        .expect("lock released")
        .into_iter()
        .map(|r| r.expect("every run was evaluated"))
        .collect();

    let cells = cells
        .iter()
        .enumerate()
        .map(|(c, &(n, u, mode))| {
            let runs = &verdicts[c * cfg.systems_per_cell..(c + 1) * cfg.systems_per_cell];
            let mut cell = AdmitCell {
                n,
                u,
                mode,
                runs: runs.len(),
                warm: AdmitArm::default(),
                cold: AdmitArm::default(),
                disagreements: 0,
            };
            for v in runs {
                for (total, arm) in [(&mut cell.warm, &v.warm), (&mut cell.cold, &v.cold)] {
                    total.ops += arm.ops;
                    total.admitted += arm.admitted;
                    total.rejected += arm.rejected;
                    total.reanalyzed += arm.reanalyzed;
                    total.skipped += arm.skipped;
                    total.seconds += arm.seconds;
                }
                cell.disagreements += v.disagreements;
            }
            cell
        })
        .collect();

    AdmitOutcome { cells, verdicts }
}

/// The mode's CSV/column tag.
fn mode_tag(mode: AdmissionMode) -> &'static str {
    match mode {
        AdmissionMode::PmFamily => "pm",
        AdmissionMode::DirectSync => "ds",
    }
}

/// Cell-level CSV: one row per `(N, U, mode)` coordinate.
pub fn grid_csv(outcome: &AdmitOutcome) -> String {
    let mut out = String::from(
        "n,u,mode,runs,ops,admitted,rejected,\
         warm_decisions_per_sec,cold_decisions_per_sec,speedup,\
         warm_reanalyzed,warm_skipped,cold_reanalyzed,disagreements\n",
    );
    for c in &outcome.cells {
        out.push_str(&format!(
            "{},{:.2},{},{},{},{},{},{:.0},{:.0},{:.2},{},{},{},{}\n",
            c.n,
            c.u,
            mode_tag(c.mode),
            c.runs,
            c.warm.ops,
            c.warm.admitted,
            c.warm.rejected,
            c.warm.rate(),
            c.cold.rate(),
            c.speedup(),
            c.warm.reanalyzed,
            c.warm.skipped,
            c.cold.reanalyzed,
            c.disagreements,
        ));
    }
    out
}

/// Headline CSV: one row per mode plus the overall line the acceptance
/// gate reads (`mode=all`).
pub fn summary_csv(outcome: &AdmitOutcome) -> String {
    let mut out = String::from(
        "mode,runs,ops,warm_decisions_per_sec,cold_decisions_per_sec,\
         speedup,disagreements\n",
    );
    let mut rows: Vec<(String, Vec<&AdmitVerdict>)> = Vec::new();
    for mode in [AdmissionMode::PmFamily, AdmissionMode::DirectSync] {
        let runs: Vec<&AdmitVerdict> = outcome.verdicts.iter().filter(|v| v.mode == mode).collect();
        if !runs.is_empty() {
            rows.push((mode_tag(mode).to_string(), runs));
        }
    }
    rows.push(("all".to_string(), outcome.verdicts.iter().collect()));
    for (tag, runs) in rows {
        let mut warm = (0u64, 0.0f64);
        let mut cold = (0u64, 0.0f64);
        let mut disagreements = 0u64;
        for v in &runs {
            warm = (warm.0 + v.warm.ops, warm.1 + v.warm.seconds);
            cold = (cold.0 + v.cold.ops, cold.1 + v.cold.seconds);
            disagreements += v.disagreements;
        }
        let rate = |(ops, secs): (u64, f64)| if secs > 0.0 { ops as f64 / secs } else { 0.0 };
        out.push_str(&format!(
            "{},{},{},{:.0},{:.0},{:.2},{}\n",
            tag,
            runs.len(),
            warm.0,
            rate(warm),
            rate(cold),
            if rate(cold) > 0.0 {
                rate(warm) / rate(cold)
            } else {
                f64::NAN
            },
            disagreements,
        ));
    }
    out
}

/// ASCII rendering of the grid.
pub fn render(outcome: &AdmitOutcome) -> String {
    let mut out =
        String::from("admission throughput (decisions/s, warm = memoized, cold = from-scratch)\n");
    out.push_str(&format!(
        "{:<4}{:<6}{:<6}{:>10}{:>14}{:>14}{:>10}{:>14}{:>12}\n",
        "N", "U", "mode", "ops", "warm dec/s", "cold dec/s", "speedup", "reanalyzed", "disagree"
    ));
    for c in &outcome.cells {
        out.push_str(&format!(
            "{:<4}{:<6.2}{:<6}{:>10}{:>14.0}{:>14.0}{:>10.2}{:>14}{:>12}\n",
            c.n,
            c.u,
            mode_tag(c.mode),
            c.warm.ops,
            c.warm.rate(),
            c.cold.rate(),
            c.speedup(),
            c.warm.reanalyzed,
            c.disagreements,
        ));
    }
    out.push_str(&format!(
        "overall warm throughput: {:.0} decisions/s over {} runs\n",
        outcome.overall_warm_rate(),
        outcome.verdicts.len(),
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_study_runs_and_arms_agree() {
        let cfg = AdmitStudyConfig {
            threads: 2,
            ..AdmitStudyConfig::smoke()
        };
        let outcome = run_admit_study(&cfg);
        assert_eq!(outcome.cells.len(), cfg.shapes.len() * cfg.modes.len());
        assert_eq!(outcome.verdicts.len(), cfg.total_runs());
        assert!(outcome.is_clean(), "memoized and cold verdicts must agree");
        for v in &outcome.verdicts {
            assert!(v.warm.ops > 0);
            assert_eq!(v.warm.ops, v.cold.ops, "both arms serve the same sequence");
            assert_eq!(v.warm.admitted, v.cold.admitted);
            assert_eq!(v.warm.rejected, v.cold.rejected);
        }
        // The §5.1 chains are schedulable as generated: the fill admits
        // every chain and churn keeps re-admitting, so the memoizing arm
        // skips work the cold arm repeats.
        let warm_skips: u64 = outcome.verdicts.iter().map(|v| v.warm.skipped).sum();
        assert!(warm_skips > 0, "memoization never skipped anything");
    }

    #[test]
    fn deterministic_verdicts_across_thread_counts() {
        let cfg1 = AdmitStudyConfig {
            threads: 1,
            ..AdmitStudyConfig::smoke()
        };
        let cfg4 = AdmitStudyConfig {
            threads: 4,
            ..AdmitStudyConfig::smoke()
        };
        let a = run_admit_study(&cfg1);
        let b = run_admit_study(&cfg4);
        for (x, y) in a.verdicts.iter().zip(&b.verdicts) {
            assert_eq!(x.system_seed, y.system_seed);
            assert_eq!(x.warm.admitted, y.warm.admitted);
            assert_eq!(x.warm.rejected, y.warm.rejected);
            assert_eq!(x.warm.reanalyzed, y.warm.reanalyzed);
            assert_eq!(x.disagreements, y.disagreements);
        }
    }

    #[test]
    fn csvs_have_matching_shapes() {
        let outcome = run_admit_study(&AdmitStudyConfig {
            threads: 1,
            systems_per_cell: 1,
            churn_rounds: 4,
            shapes: vec![(2, 0.25)],
            ..AdmitStudyConfig::smoke()
        });
        let grid = grid_csv(&outcome);
        assert_eq!(grid.lines().count(), 1 + outcome.cells.len());
        let summary = summary_csv(&outcome);
        // pm + ds + all.
        assert_eq!(summary.lines().count(), 1 + 3);
        assert!(render(&outcome).contains("overall warm throughput"));
    }
}
