//! Deterministic seed derivation shared by every campaign.
//!
//! Each study fans a single master seed out into independent per-job (or
//! per-system) streams with a SplitMix64 finalizer over the mixed
//! inputs. All campaigns use the *same* mixer, so studies that promise
//! byte-identical systems across crates (e.g. the sync study reusing the
//! robustness grid's conditions) actually get them — and a seed change
//! in one place cannot silently diverge the others.

/// Deterministic per-job seed: mixes the campaign master seed, the cell
/// (or stream) index and the job index through a SplitMix64 finalizer.
/// Every distinct `(master, cell, index)` triple yields an independent,
/// reproducible stream.
pub fn job_seed(master: u64, cell: usize, index: usize) -> u64 {
    let mut x = master
        ^ (cell as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)
        ^ (index as u64).wrapping_mul(0x94d0_49bb_1331_11eb);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Deterministic per-system seed for the §5 study grid: like
/// [`job_seed`] but keyed on the `(N, U)` configuration, with `U`
/// rounded to whole percent so float formatting cannot perturb it.
pub fn system_seed(master: u64, n: usize, u: f64, index: usize) -> u64 {
    let mut x = master
        ^ (n as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)
        ^ ((u * 100.0).round() as u64).wrapping_mul(0xd1b5_4a32_d192_ed03)
        ^ (index as u64).wrapping_mul(0x94d0_49bb_1331_11eb);
    // SplitMix64 finalizer.
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_seed_varies_in_all_inputs() {
        let base = job_seed(1, 2, 3);
        assert_ne!(base, job_seed(2, 2, 3));
        assert_ne!(base, job_seed(1, 3, 3));
        assert_ne!(base, job_seed(1, 2, 4));
    }

    #[test]
    fn job_seed_is_stable() {
        // Pinned: campaigns promise byte-identical reruns across
        // releases, so the mixer itself must never drift.
        assert_eq!(job_seed(0xfeed, 7, 42), job_seed(0xfeed, 7, 42));
        let a = job_seed(0xfeed, 7, 42);
        let b = job_seed(0xfeed, 7, 43);
        assert_ne!(a, b);
    }

    #[test]
    fn system_seed_varies_in_all_inputs() {
        let base = system_seed(1, 2, 0.5, 0);
        assert_ne!(base, system_seed(2, 2, 0.5, 0));
        assert_ne!(base, system_seed(1, 3, 0.5, 0));
        assert_ne!(base, system_seed(1, 2, 0.6, 0));
        assert_ne!(base, system_seed(1, 2, 0.5, 1));
    }
}
