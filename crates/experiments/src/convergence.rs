//! Convergence of the average-EER ratio estimates.
//!
//! The paper does not state its simulation horizon. Our study stops when
//! every task has completed a configurable number of end-to-end instances;
//! this module measures how the Figure-14/15 ratio estimates move as that
//! target grows, justifying the default. The ratios stabilize quickly
//! because they are averaged over 12 tasks × many systems; per the
//! recorded run, going from 20 to 80 instances moves the aggregate ratios
//! by under ~2%.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rtsync_core::analysis::sa_ds::{analyze_ds_traced, SweepOrder};
use rtsync_core::analysis::sa_pm::analyze_pm_traced;
use rtsync_core::protocol::Protocol;
use rtsync_core::time::Dur;
use rtsync_sim::engine::{simulate, SimConfig};
use rtsync_workload::{generate, WorkloadSpec};

use crate::study::StudyConfig;

/// Ratio estimates at one instance target.
#[derive(Clone, Copy, Debug)]
pub struct ConvergenceRow {
    /// The per-task end-to-end instance target used.
    pub instances: u64,
    /// Mean per-task avg-EER ratio PM/DS.
    pub pm_ds: f64,
    /// Mean per-task avg-EER ratio RG/DS.
    pub rg_ds: f64,
}

/// Measures the ratio estimates of configuration `(n, u)` at each instance
/// target, over `cfg.systems_per_config` systems (same seeds across
/// targets, so rows differ only by horizon).
pub fn convergence_study(
    n: usize,
    u: f64,
    cfg: &StudyConfig,
    targets: &[u64],
) -> Vec<ConvergenceRow> {
    let spec = WorkloadSpec::paper(n, u).with_random_phases();
    targets
        .iter()
        .map(|&instances| {
            let mut pm_ds_sum = 0.0;
            let mut rg_ds_sum = 0.0;
            let mut count = 0usize;
            for index in 0..cfg.systems_per_config {
                let mut rng = StdRng::seed_from_u64(
                    cfg.seed
                        ^ 0xC0BE_0000
                        ^ ((n as u64) << 24)
                        ^ (((u * 100.0) as u64) << 8)
                        ^ index as u64,
                );
                let set = generate(&spec, &mut rng).expect("paper spec generates");
                let run = |p| {
                    simulate(&set, &SimConfig::new(p).with_instances(instances))
                        .expect("study systems simulate")
                };
                let ds = run(Protocol::DirectSync);
                let pm = run(Protocol::PhaseModification);
                let rg = run(Protocol::ReleaseGuard);
                for task in set.tasks() {
                    let (Some(d), Some(p), Some(r)) = (
                        ds.metrics.task(task.id()).avg_eer(),
                        pm.metrics.task(task.id()).avg_eer(),
                        rg.metrics.task(task.id()).avg_eer(),
                    ) else {
                        continue;
                    };
                    pm_ds_sum += p / d;
                    rg_ds_sum += r / d;
                    count += 1;
                }
            }
            ConvergenceRow {
                instances,
                pm_ds: pm_ds_sum / count.max(1) as f64,
                rg_ds: rg_ds_sum / count.max(1) as f64,
            }
        })
        .collect()
}

/// How the *analyses* converged on one generated system: SA/PM busy-period
/// iteration effort and the SA/DS IEERT sweep trajectory.
#[derive(Clone, Copy, Debug)]
pub struct AnalysisConvergenceRow {
    /// Subtasks per task.
    pub n: usize,
    /// Per-processor utilization.
    pub u: f64,
    /// System index within the configuration (seeds the generator).
    pub system: usize,
    /// SA/PM found finite bounds.
    pub pm_converged: bool,
    /// Total busy-period fixed-point iterations across all subtasks
    /// (zero when SA/PM failed).
    pub pm_iterations: u64,
    /// SA/DS reached a fixed point (the complement of the Figure-12
    /// failure event).
    pub ds_converged: bool,
    /// IEERT sweeps performed (including the verifying sweep, or up to
    /// the point divergence was detected).
    pub ds_sweeps: u64,
    /// Largest single-sweep subtask-bound growth observed.
    pub ds_peak_delta: Dur,
}

/// Runs both analyses over the systems of configuration `(n, u)` —
/// generated with the same seeds as [`convergence_study`] and the main
/// study — recording per-system convergence effort.
pub fn analysis_convergence_study(
    n: usize,
    u: f64,
    cfg: &StudyConfig,
) -> Vec<AnalysisConvergenceRow> {
    let spec = WorkloadSpec::paper(n, u).with_random_phases();
    (0..cfg.systems_per_config)
        .map(|index| {
            let mut rng = StdRng::seed_from_u64(
                cfg.seed
                    ^ 0xC0BE_0000
                    ^ ((n as u64) << 24)
                    ^ (((u * 100.0) as u64) << 8)
                    ^ index as u64,
            );
            let set = generate(&spec, &mut rng).expect("paper spec generates");
            let (pm_converged, pm_iterations) = match analyze_pm_traced(&set, &cfg.analysis) {
                Ok((_, report)) => (true, report.total_iterations()),
                Err(_) => (false, 0),
            };
            let (ds_converged, ds_sweeps, ds_peak_delta) =
                match analyze_ds_traced(&set, &cfg.analysis, SweepOrder::default()) {
                    Ok((bounds, report)) => (
                        bounds.is_some(),
                        report.sweeps,
                        report.deltas.iter().copied().max().unwrap_or(Dur::ZERO),
                    ),
                    Err(_) => (false, 0, Dur::ZERO),
                };
            AnalysisConvergenceRow {
                n,
                u,
                system: index,
                pm_converged,
                pm_iterations,
                ds_converged,
                ds_sweeps,
                ds_peak_delta,
            }
        })
        .collect()
}

/// Renders analysis-convergence rows as CSV (`convergence_obs.csv`).
pub fn analysis_convergence_csv(rows: &[AnalysisConvergenceRow]) -> String {
    let mut out = String::from(
        "n,u,system,pm_converged,pm_iterations,ds_converged,ds_sweeps,ds_peak_delta\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{},{:.2},{},{},{},{},{},{}\n",
            r.n,
            r.u,
            r.system,
            r.pm_converged,
            r.pm_iterations,
            r.ds_converged,
            r.ds_sweeps,
            r.ds_peak_delta.ticks()
        ));
    }
    out
}

/// Renders a short text summary of analysis-convergence rows.
pub fn render_analysis(rows: &[AnalysisConvergenceRow]) -> String {
    if rows.is_empty() {
        return "analysis convergence: no systems\n".to_string();
    }
    let (n, u) = (rows[0].n, rows[0].u);
    let converged = rows.iter().filter(|r| r.ds_converged).count();
    let mean_iters = rows.iter().map(|r| r.pm_iterations).sum::<u64>() as f64 / rows.len() as f64;
    let finite: Vec<&AnalysisConvergenceRow> = rows.iter().filter(|r| r.ds_converged).collect();
    let mean_sweeps = if finite.is_empty() {
        f64::NAN
    } else {
        finite.iter().map(|r| r.ds_sweeps).sum::<u64>() as f64 / finite.len() as f64
    };
    format!(
        "analysis convergence at ({n}, {:.0}%): {} systems, \
         SA/PM mean {mean_iters:.1} busy-period iterations, \
         SA/DS {converged}/{} converged (mean {mean_sweeps:.1} sweeps)\n",
        u * 100.0,
        rows.len(),
        rows.len()
    )
}

/// Renders convergence rows as a text table.
pub fn render(n: usize, u: f64, rows: &[ConvergenceRow]) -> String {
    let mut out = format!(
        "ratio convergence at configuration ({n}, {:.0}%): estimates vs instance target\n\
         {:>10}{:>10}{:>10}\n",
        u * 100.0,
        "instances",
        "PM/DS",
        "RG/DS"
    );
    for r in rows {
        out.push_str(&format!(
            "{:>10}{:>10.3}{:>10.3}\n",
            r.instances, r.pm_ds, r.rg_ds
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_stabilize_with_more_instances() {
        let cfg = StudyConfig {
            systems_per_config: 4,
            seed: 99,
            ..StudyConfig::default()
        };
        let rows = convergence_study(3, 0.6, &cfg, &[10, 40]);
        assert_eq!(rows.len(), 2);
        // Both estimates are in the plausible band and close to each other.
        for r in &rows {
            assert!(r.pm_ds > 1.0 && r.pm_ds < 4.0, "{r:?}");
            assert!(r.rg_ds > 0.95 && r.rg_ds < 2.0, "{r:?}");
        }
        let drift = (rows[0].pm_ds - rows[1].pm_ds).abs() / rows[1].pm_ds;
        assert!(
            drift < 0.15,
            "PM/DS drifted {drift:.3} from 10 to 40 instances"
        );
    }

    #[test]
    fn analysis_convergence_rows_are_complete_and_csv_renders() {
        let cfg = StudyConfig {
            systems_per_config: 3,
            seed: 7,
            ..StudyConfig::default()
        };
        let rows = analysis_convergence_study(3, 0.6, &cfg);
        assert_eq!(rows.len(), 3);
        for r in &rows {
            assert!(r.pm_converged, "{r:?}");
            assert!(r.pm_iterations > 0, "{r:?}");
            if r.ds_converged {
                assert!(r.ds_sweeps >= 1, "{r:?}");
            }
        }
        let csv = analysis_convergence_csv(&rows);
        assert!(csv.starts_with("n,u,system,"));
        assert_eq!(csv.lines().count(), 4);
        let summary = render_analysis(&rows);
        assert!(summary.contains("3 systems"), "{summary}");
    }

    #[test]
    fn render_contains_rows() {
        let rows = vec![ConvergenceRow {
            instances: 20,
            pm_ds: 2.5,
            rg_ds: 1.01,
        }];
        let text = render(4, 0.7, &rows);
        assert!(text.contains("(4, 70%)"));
        assert!(text.contains("2.500"));
        assert!(text.contains("1.010"));
    }
}
