//! Convergence of the average-EER ratio estimates.
//!
//! The paper does not state its simulation horizon. Our study stops when
//! every task has completed a configurable number of end-to-end instances;
//! this module measures how the Figure-14/15 ratio estimates move as that
//! target grows, justifying the default. The ratios stabilize quickly
//! because they are averaged over 12 tasks × many systems; per the
//! recorded run, going from 20 to 80 instances moves the aggregate ratios
//! by under ~2%.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rtsync_core::protocol::Protocol;
use rtsync_sim::engine::{simulate, SimConfig};
use rtsync_workload::{generate, WorkloadSpec};

use crate::study::StudyConfig;

/// Ratio estimates at one instance target.
#[derive(Clone, Copy, Debug)]
pub struct ConvergenceRow {
    /// The per-task end-to-end instance target used.
    pub instances: u64,
    /// Mean per-task avg-EER ratio PM/DS.
    pub pm_ds: f64,
    /// Mean per-task avg-EER ratio RG/DS.
    pub rg_ds: f64,
}

/// Measures the ratio estimates of configuration `(n, u)` at each instance
/// target, over `cfg.systems_per_config` systems (same seeds across
/// targets, so rows differ only by horizon).
pub fn convergence_study(
    n: usize,
    u: f64,
    cfg: &StudyConfig,
    targets: &[u64],
) -> Vec<ConvergenceRow> {
    let spec = WorkloadSpec::paper(n, u).with_random_phases();
    targets
        .iter()
        .map(|&instances| {
            let mut pm_ds_sum = 0.0;
            let mut rg_ds_sum = 0.0;
            let mut count = 0usize;
            for index in 0..cfg.systems_per_config {
                let mut rng = StdRng::seed_from_u64(
                    cfg.seed
                        ^ 0xC0BE_0000
                        ^ ((n as u64) << 24)
                        ^ (((u * 100.0) as u64) << 8)
                        ^ index as u64,
                );
                let set = generate(&spec, &mut rng).expect("paper spec generates");
                let run = |p| {
                    simulate(&set, &SimConfig::new(p).with_instances(instances))
                        .expect("study systems simulate")
                };
                let ds = run(Protocol::DirectSync);
                let pm = run(Protocol::PhaseModification);
                let rg = run(Protocol::ReleaseGuard);
                for task in set.tasks() {
                    let (Some(d), Some(p), Some(r)) = (
                        ds.metrics.task(task.id()).avg_eer(),
                        pm.metrics.task(task.id()).avg_eer(),
                        rg.metrics.task(task.id()).avg_eer(),
                    ) else {
                        continue;
                    };
                    pm_ds_sum += p / d;
                    rg_ds_sum += r / d;
                    count += 1;
                }
            }
            ConvergenceRow {
                instances,
                pm_ds: pm_ds_sum / count.max(1) as f64,
                rg_ds: rg_ds_sum / count.max(1) as f64,
            }
        })
        .collect()
}

/// Renders convergence rows as a text table.
pub fn render(n: usize, u: f64, rows: &[ConvergenceRow]) -> String {
    let mut out = format!(
        "ratio convergence at configuration ({n}, {:.0}%): estimates vs instance target\n\
         {:>10}{:>10}{:>10}\n",
        u * 100.0,
        "instances",
        "PM/DS",
        "RG/DS"
    );
    for r in rows {
        out.push_str(&format!(
            "{:>10}{:>10.3}{:>10.3}\n",
            r.instances, r.pm_ds, r.rg_ds
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_stabilize_with_more_instances() {
        let cfg = StudyConfig {
            systems_per_config: 4,
            seed: 99,
            ..StudyConfig::default()
        };
        let rows = convergence_study(3, 0.6, &cfg, &[10, 40]);
        assert_eq!(rows.len(), 2);
        // Both estimates are in the plausible band and close to each other.
        for r in &rows {
            assert!(r.pm_ds > 1.0 && r.pm_ds < 4.0, "{r:?}");
            assert!(r.rg_ds > 0.95 && r.rg_ds < 2.0, "{r:?}");
        }
        let drift = (rows[0].pm_ds - rows[1].pm_ds).abs() / rows[1].pm_ds;
        assert!(
            drift < 0.15,
            "PM/DS drifted {drift:.3} from 10 to 40 instances"
        );
    }

    #[test]
    fn render_contains_rows() {
        let rows = vec![ConvergenceRow {
            instances: 20,
            pm_ds: 2.5,
            rg_ds: 1.01,
        }];
        let text = render(4, 0.7, &rows);
        assert!(text.contains("(4, 70%)"));
        assert!(text.contains("2.500"));
        assert!(text.contains("1.010"));
    }
}
