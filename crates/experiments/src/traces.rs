//! Reproduction of the paper's schedule figures (3, 5, 6, 7) as rendered
//! traces of the simulator on the running examples.

use rtsync_core::examples::{example1, example2};
use rtsync_core::protocol::Protocol;
use rtsync_core::task::{SubtaskId, TaskId};
use rtsync_core::time::Time;
use rtsync_sim::engine::{simulate, SimConfig, SimOutcome};

/// The paper's schedule-illustration figures.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TraceFigure {
    /// Figure 3: Example 2 under DS — `T₃` misses its deadline at 10.
    Fig3ExampleUnderDs,
    /// Figure 5: Example 2 under PM — `T₃` meets its deadline.
    Fig5ExampleUnderPm,
    /// Figure 6: Example 1's chain under MPM (timer-delayed signals).
    Fig6ChainUnderMpm,
    /// Figure 7: Example 2 under RG — deferred release freed at the idle
    /// point at 9.
    Fig7ExampleUnderRg,
}

impl TraceFigure {
    /// All four, in paper order.
    pub const ALL: [TraceFigure; 4] = [
        TraceFigure::Fig3ExampleUnderDs,
        TraceFigure::Fig5ExampleUnderPm,
        TraceFigure::Fig6ChainUnderMpm,
        TraceFigure::Fig7ExampleUnderRg,
    ];

    /// The figure's number in the paper.
    pub fn number(self) -> u32 {
        match self {
            TraceFigure::Fig3ExampleUnderDs => 3,
            TraceFigure::Fig5ExampleUnderPm => 5,
            TraceFigure::Fig6ChainUnderMpm => 6,
            TraceFigure::Fig7ExampleUnderRg => 7,
        }
    }

    /// Runs the simulation behind the figure.
    pub fn run(self) -> SimOutcome {
        let (set, protocol) = match self {
            TraceFigure::Fig3ExampleUnderDs => (example2(), Protocol::DirectSync),
            TraceFigure::Fig5ExampleUnderPm => (example2(), Protocol::PhaseModification),
            TraceFigure::Fig6ChainUnderMpm => (example1(), Protocol::ModifiedPhaseModification),
            TraceFigure::Fig7ExampleUnderRg => (example2(), Protocol::ReleaseGuard),
        };
        simulate(
            &set,
            &SimConfig::new(protocol).with_instances(5).with_trace(),
        )
        .expect("the running examples are analyzable")
    }

    /// Renders the figure: an ASCII Gantt plus the key observations the
    /// paper makes about the schedule.
    pub fn render(self) -> String {
        let out = self.run();
        let trace = out.trace.as_ref().expect("trace recording enabled");
        let gantt = trace.render_gantt(Time::from_ticks(30));
        let mut text = format!("figure {} — {}\n{gantt}", self.number(), self.caption());
        match self {
            TraceFigure::Fig3ExampleUnderDs => {
                let t22 = SubtaskId::new(TaskId::new(1), 1);
                let rel: Vec<i64> = trace
                    .releases_of(t22)
                    .iter()
                    .take(5)
                    .map(|t| t.ticks())
                    .collect();
                text.push_str(&format!(
                    "T2.2 releases: {rel:?} (paper: 4, 8, 16, 20, 28)\n\
                     T3 deadline misses: {}\n",
                    out.metrics.task(TaskId::new(2)).deadline_misses()
                ));
            }
            TraceFigure::Fig5ExampleUnderPm | TraceFigure::Fig7ExampleUnderRg => {
                text.push_str(&format!(
                    "T3 deadline misses: {}\n",
                    out.metrics.task(TaskId::new(2)).deadline_misses()
                ));
            }
            TraceFigure::Fig6ChainUnderMpm => {
                let s = out.metrics.task(TaskId::new(0));
                text.push_str(&format!(
                    "chain EER (timer-paced): avg {:?}, jitter {}\n",
                    s.avg_eer(),
                    s.max_output_jitter()
                ));
            }
        }
        text
    }

    fn caption(self) -> &'static str {
        match self {
            TraceFigure::Fig3ExampleUnderDs => "Example 2 under the DS protocol",
            TraceFigure::Fig5ExampleUnderPm => "Example 2 under the PM protocol",
            TraceFigure::Fig6ChainUnderMpm => "Example 1 under the MPM protocol",
            TraceFigure::Fig7ExampleUnderRg => "Example 2 under the RG protocol",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_trace_figures_render() {
        for fig in TraceFigure::ALL {
            let text = fig.render();
            assert!(text.contains(&format!("figure {}", fig.number())));
            assert!(text.contains("P0"), "{text}");
        }
    }

    #[test]
    fn fig3_documents_the_miss() {
        let text = TraceFigure::Fig3ExampleUnderDs.render();
        assert!(text.contains("[4, 8, 16, 20, 28]"), "{text}");
    }

    #[test]
    fn fig5_and_fig7_show_no_misses() {
        for fig in [
            TraceFigure::Fig5ExampleUnderPm,
            TraceFigure::Fig7ExampleUnderRg,
        ] {
            let out = fig.run();
            assert_eq!(out.metrics.task(TaskId::new(2)).deadline_misses(), 0);
        }
    }

    #[test]
    fn fig6_chain_has_constant_eer() {
        let out = TraceFigure::Fig6ChainUnderMpm.run();
        let s = out.metrics.task(TaskId::new(0));
        // MPM paces by bounds: with no interference the EER is exactly the
        // sum of per-subtask bounds minus the head start… in Example 1 the
        // bounds equal the execution times of the predecessors, so the EER
        // equals R_{1,1} + R_{1,2} + c_{1,3} = 2 + 3 + 2 = 7 every time.
        assert_eq!(s.avg_eer(), Some(7.0));
        assert_eq!(s.max_output_jitter().ticks(), 0);
    }
}
