//! # rtsync-workload
//!
//! Synthetic distributed real-time workloads, reproducing §5.1 of Sun &
//! Liu (ICDCS 1996) exactly:
//!
//! * every task has the same number of subtasks `N` and every processor
//!   the same target utilization `U` — a *configuration* `(N, U)`;
//! * task periods are drawn from a **truncated exponential** distribution
//!   on `[100, 10000]` time units (the paper does not state the scale
//!   parameter; it defaults to 3000 here and is configurable);
//! * subtasks are placed uniformly at random with **no two consecutive
//!   subtasks of a task on the same processor**;
//! * subtasks on a processor split its utilization in proportion to
//!   i.i.d. weights from `U(0.001, 1)`; a subtask's execution time is its
//!   utilization share times its period;
//! * priorities are assigned by **Proportional-Deadline-Monotonic**;
//! * relative deadlines equal periods; phases are zero for analysis or
//!   uniform in `[0, p_i)` for average-EER simulations.
//!
//! Real-valued units are quantized to integer ticks
//! ([`WorkloadSpec::ticks_per_unit`], default 1000 ticks per paper unit),
//! keeping quantization error below 0.1% of any execution time.
//!
//! ```
//! use rand::SeedableRng;
//! use rtsync_workload::{generate, WorkloadSpec};
//!
//! let spec = WorkloadSpec::paper(5, 0.6); // configuration (5, 60)
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let system = generate(&spec, &mut rng)?;
//! assert_eq!(system.num_tasks(), 12);
//! assert_eq!(system.num_processors(), 4);
//! # Ok::<(), rtsync_workload::GenerateError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::error::Error;
use std::fmt;

use rand::{Rng, RngExt};
use rtsync_core::error::ValidateTaskSetError;
use rtsync_core::priority::{
    build_with_policy, ChainSpec, PriorityPolicy, ProportionalDeadlineMonotonic,
};
use rtsync_core::task::{CriticalSection, ResourceId, TaskSet};
use rtsync_core::time::{Dur, Time};

/// How task periods are distributed over `period_range`.
///
/// The paper uses a truncated exponential because it "yields task periods
/// with more variation than when the periods are evenly distributed"; the
/// alternatives exist for the ablation studies in `rtsync-experiments`
/// (do the evaluation's shapes survive a different period distribution?).
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum PeriodDistribution {
    /// Exponential with the given scale θ, truncated to the range
    /// (the paper's choice; θ is not stated there — default 3000).
    TruncatedExponential {
        /// Scale parameter θ.
        scale: f64,
    },
    /// Uniform over the range.
    Uniform,
    /// Log-uniform over the range (uniform in `ln p`).
    LogUniform,
}

impl PeriodDistribution {
    /// Draws one period in `[lo, hi]`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R, lo: f64, hi: f64) -> f64 {
        let u: f64 = rng.random_range(0.0..1.0);
        match *self {
            PeriodDistribution::TruncatedExponential { scale } => {
                let z = 1.0 - (-(hi - lo) / scale).exp();
                lo - scale * (1.0 - u * z).ln()
            }
            PeriodDistribution::Uniform => lo + u * (hi - lo),
            PeriodDistribution::LogUniform => (lo.ln() + u * (hi.ln() - lo.ln())).exp(),
        }
    }
}

/// How task phases are chosen.
#[derive(Clone, Copy, PartialEq, Eq, Default, Debug)]
pub enum PhaseModel {
    /// All phases zero (the worst-case-analysis setting).
    #[default]
    Zero,
    /// Uniform random in `[0, p_i)` (the paper's average-EER simulations).
    UniformRandom,
}

/// Parameters of one synthetic system (see the [crate docs](self)).
#[derive(Clone, Debug)]
pub struct WorkloadSpec {
    /// Subtasks per task, `N`.
    pub subtasks_per_task: usize,
    /// Per-processor target utilization `U` in `(0, 1]`.
    pub utilization: f64,
    /// Processors in the system.
    pub num_processors: usize,
    /// Tasks in the system.
    pub num_tasks: usize,
    /// Period range in paper time units, inclusive.
    pub period_range: (f64, f64),
    /// The period distribution over `period_range`.
    pub period_distribution: PeriodDistribution,
    /// Integer ticks per paper time unit.
    pub ticks_per_unit: i64,
    /// Lower bound of the utilization-split weights (paper: 0.001).
    pub min_weight: f64,
    /// Phase assignment.
    pub phases: PhaseModel,
    /// Probability that a subtask is non-preemptive (0 reproduces the
    /// paper's fully preemptive model; the §6 future-work extension).
    pub nonpreemptive_fraction: f64,
    /// Probability that a subtask carries one critical section on its
    /// processor's local resource (0 reproduces the paper's resource-free
    /// model; the §6 "resource contention" extension, Highest Locker).
    pub critical_section_fraction: f64,
    /// Largest critical-section length as a fraction of the subtask's
    /// execution time (used only when sections are generated).
    pub critical_section_max_fraction: f64,
}

impl WorkloadSpec {
    /// The paper's configuration `(N, U)`: 4 processors, 12 tasks, periods
    /// exponential on `[100, 10000]`, PDM priorities, zero phases.
    ///
    /// # Panics
    ///
    /// Panics if `utilization` is not in `(0, 1]` or `subtasks_per_task`
    /// is 0.
    pub fn paper(subtasks_per_task: usize, utilization: f64) -> WorkloadSpec {
        assert!(subtasks_per_task > 0, "tasks need at least one subtask");
        assert!(
            utilization > 0.0 && utilization <= 1.0,
            "utilization must be in (0, 1], got {utilization}"
        );
        WorkloadSpec {
            subtasks_per_task,
            utilization,
            num_processors: 4,
            num_tasks: 12,
            period_range: (100.0, 10_000.0),
            period_distribution: PeriodDistribution::TruncatedExponential { scale: 3_000.0 },
            ticks_per_unit: 1_000,
            min_weight: 0.001,
            phases: PhaseModel::Zero,
            nonpreemptive_fraction: 0.0,
            critical_section_fraction: 0.0,
            critical_section_max_fraction: 0.5,
        }
    }

    /// Returns the spec with random phases (for average-EER simulation).
    pub fn with_random_phases(mut self) -> WorkloadSpec {
        self.phases = PhaseModel::UniformRandom;
        self
    }

    /// Returns the spec with the given probability of a subtask being
    /// non-preemptive.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is not in `[0, 1]`.
    pub fn with_nonpreemptive_fraction(mut self, fraction: f64) -> WorkloadSpec {
        assert!(
            (0.0..=1.0).contains(&fraction),
            "fraction must be in [0, 1], got {fraction}"
        );
        self.nonpreemptive_fraction = fraction;
        self
    }

    /// Returns the spec with the given probability of a subtask carrying a
    /// critical section (one per-processor resource, Highest Locker).
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is not in `[0, 1]`.
    pub fn with_critical_section_fraction(mut self, fraction: f64) -> WorkloadSpec {
        assert!(
            (0.0..=1.0).contains(&fraction),
            "fraction must be in [0, 1], got {fraction}"
        );
        self.critical_section_fraction = fraction;
        self
    }
}

/// An error from [`generate`].
#[derive(Clone, PartialEq, Eq, Debug)]
#[non_exhaustive]
pub enum GenerateError {
    /// Chains of length ≥ 2 need at least two processors to satisfy the
    /// consecutive-subtasks-on-different-processors constraint.
    NotEnoughProcessors,
    /// The generated parameters failed task-set validation (indicates a
    /// spec so extreme that quantization broke an invariant).
    Invalid(ValidateTaskSetError),
}

impl fmt::Display for GenerateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GenerateError::NotEnoughProcessors => {
                write!(f, "chains of length 2 or more need at least two processors")
            }
            GenerateError::Invalid(e) => write!(f, "generated system failed validation: {e}"),
        }
    }
}

impl Error for GenerateError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            GenerateError::Invalid(e) => Some(e),
            GenerateError::NotEnoughProcessors => None,
        }
    }
}

/// Generates one system with the paper's Proportional-Deadline-Monotonic
/// priorities.
///
/// # Errors
///
/// See [`GenerateError`].
pub fn generate<R: Rng + ?Sized>(
    spec: &WorkloadSpec,
    rng: &mut R,
) -> Result<TaskSet, GenerateError> {
    generate_with_policy(spec, &ProportionalDeadlineMonotonic, rng)
}

/// Generates one system from a bare `u64` seed, for entry points (the
/// CLI, scripts) that don't want to thread an RNG themselves.
///
/// # Errors
///
/// See [`GenerateError`].
pub fn generate_seeded(spec: &WorkloadSpec, seed: u64) -> Result<TaskSet, GenerateError> {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    generate(spec, &mut StdRng::seed_from_u64(seed))
}

/// Generates one system with an explicit priority policy (an extension
/// knob beyond the paper, which fixes PDM).
///
/// # Errors
///
/// See [`GenerateError`].
pub fn generate_with_policy<R: Rng + ?Sized>(
    spec: &WorkloadSpec,
    policy: &dyn PriorityPolicy,
    rng: &mut R,
) -> Result<TaskSet, GenerateError> {
    if spec.subtasks_per_task >= 2 && spec.num_processors < 2 {
        return Err(GenerateError::NotEnoughProcessors);
    }

    // 1. Periods (ticks) and placements.
    let mut periods = Vec::with_capacity(spec.num_tasks);
    let mut placements: Vec<Vec<usize>> = Vec::with_capacity(spec.num_tasks);
    for _ in 0..spec.num_tasks {
        let p_units =
            spec.period_distribution
                .sample(rng, spec.period_range.0, spec.period_range.1);
        let p_ticks = (p_units * spec.ticks_per_unit as f64).round().max(1.0) as i64;
        periods.push(Dur::from_ticks(p_ticks));
        placements.push(place_chain(
            rng,
            spec.subtasks_per_task,
            spec.num_processors,
        ));
    }

    // 2. Utilization-split weights, then per-processor normalization.
    let weights: Vec<Vec<f64>> = (0..spec.num_tasks)
        .map(|_| {
            (0..spec.subtasks_per_task)
                .map(|_| rng.random_range(spec.min_weight..=1.0))
                .collect()
        })
        .collect();
    let mut weight_sum = vec![0.0f64; spec.num_processors];
    for (ti, places) in placements.iter().enumerate() {
        for (si, &proc) in places.iter().enumerate() {
            weight_sum[proc] += weights[ti][si];
        }
    }

    // 3. Execution times: c = (U · w/Σw) · p, quantized, at least one tick.
    let mut chains = Vec::with_capacity(spec.num_tasks);
    for (ti, places) in placements.iter().enumerate() {
        let subtasks = places
            .iter()
            .enumerate()
            .map(|(si, &proc)| {
                let share = spec.utilization * weights[ti][si] / weight_sum[proc];
                let exec = (share * periods[ti].ticks() as f64).round().max(1.0) as i64;
                (proc, Dur::from_ticks(exec))
            })
            .collect();
        let mut chain = ChainSpec::new(periods[ti], subtasks);
        if spec.phases == PhaseModel::UniformRandom {
            chain = chain.with_phase(Time::from_ticks(rng.random_range(0..periods[ti].ticks())));
        }
        if spec.nonpreemptive_fraction > 0.0 {
            let nonpreemptive = (0..spec.subtasks_per_task)
                .filter(|_| rng.random_range(0.0..1.0) < spec.nonpreemptive_fraction)
                .collect();
            chain = chain.with_nonpreemptive(nonpreemptive);
        }
        if spec.critical_section_fraction > 0.0 {
            for si in 0..spec.subtasks_per_task {
                if rng.random_range(0.0..1.0) >= spec.critical_section_fraction {
                    continue;
                }
                let (proc, exec) = chain.subtasks[si];
                let exec = exec.ticks();
                let max_len = ((exec as f64 * spec.critical_section_max_fraction) as i64).max(1);
                let len = rng.random_range(1..=max_len.min(exec));
                let start = rng.random_range(0..=exec - len);
                // One resource per processor keeps every resource local.
                chain = chain.with_critical_section(
                    si,
                    CriticalSection {
                        resource: ResourceId::new(proc),
                        start: Dur::from_ticks(start),
                        len: Dur::from_ticks(len),
                    },
                );
            }
        }
        chains.push(chain);
    }

    build_with_policy(spec.num_processors, &chains, policy).map_err(GenerateError::Invalid)
}

/// A chain of `len` processor indices with no two consecutive equal.
fn place_chain<R: Rng + ?Sized>(rng: &mut R, len: usize, num_procs: usize) -> Vec<usize> {
    let mut chain = Vec::with_capacity(len);
    let mut prev: Option<usize> = None;
    for _ in 0..len {
        let next = loop {
            let candidate = rng.random_range(0..num_procs);
            if Some(candidate) != prev {
                break candidate;
            }
        };
        chain.push(next);
        prev = Some(next);
    }
    chain
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rtsync_core::task::ProcessorId;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn paper_spec_shape() {
        let set = generate(&WorkloadSpec::paper(5, 0.6), &mut rng(1)).unwrap();
        assert_eq!(set.num_tasks(), 12);
        assert_eq!(set.num_processors(), 4);
        assert_eq!(set.num_subtasks(), 60);
        for task in set.tasks() {
            assert_eq!(task.chain_len(), 5);
            assert_eq!(task.deadline(), task.period());
            assert_eq!(task.phase(), Time::ZERO);
        }
    }

    #[test]
    fn periods_within_range_and_quantized() {
        let spec = WorkloadSpec::paper(3, 0.5);
        let set = generate(&spec, &mut rng(2)).unwrap();
        for task in set.tasks() {
            let ticks = task.period().ticks();
            assert!(
                (100_000..=10_000_000).contains(&ticks),
                "period {ticks} outside the scaled [100, 10000] range"
            );
        }
    }

    #[test]
    fn period_distribution_is_skewed_low() {
        // A truncated exponential with θ = 3000 puts well over half the
        // mass below the midpoint 5050.
        let spec = WorkloadSpec::paper(2, 0.5);
        let mut r = rng(3);
        let mut below = 0;
        let mut total = 0;
        for _ in 0..50 {
            let set = generate(&spec, &mut r).unwrap();
            for task in set.tasks() {
                total += 1;
                if task.period().ticks() < 5_050_000 {
                    below += 1;
                }
            }
        }
        assert!(
            below as f64 / total as f64 > 0.6,
            "{below}/{total} below midpoint — not exponential-shaped"
        );
    }

    #[test]
    fn no_consecutive_subtasks_share_a_processor() {
        let set = generate(&WorkloadSpec::paper(8, 0.9), &mut rng(4)).unwrap();
        for task in set.tasks() {
            for pair in task.subtasks().windows(2) {
                assert_ne!(pair[0].processor(), pair[1].processor());
            }
        }
    }

    #[test]
    fn processor_utilization_close_to_target() {
        for (n, u) in [(2, 0.5), (5, 0.7), (8, 0.9)] {
            let set = generate(&WorkloadSpec::paper(n, u), &mut rng(5)).unwrap();
            for p in 0..set.num_processors() {
                let got = set.processor_utilization_ppm(ProcessorId::new(p)) as f64 / 1e6;
                // Quantization moves each subtask by < 1 tick; with periods
                // ≥ 100k ticks the aggregate error is far below 0.1%.
                assert!(
                    (got - u).abs() < 0.001,
                    "processor {p} utilization {got} vs target {u} for N={n}"
                );
            }
        }
    }

    #[test]
    fn generation_is_deterministic_in_the_seed() {
        let spec = WorkloadSpec::paper(4, 0.8);
        let a = generate(&spec, &mut rng(42)).unwrap();
        let b = generate(&spec, &mut rng(42)).unwrap();
        let c = generate(&spec, &mut rng(43)).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn random_phases_land_within_one_period() {
        let spec = WorkloadSpec::paper(3, 0.6).with_random_phases();
        let set = generate(&spec, &mut rng(6)).unwrap();
        let mut nonzero = 0;
        for task in set.tasks() {
            assert!(task.phase() >= Time::ZERO);
            assert!(task.phase().since_origin() < task.period());
            if task.phase() > Time::ZERO {
                nonzero += 1;
            }
        }
        assert!(nonzero >= 10, "phases should almost surely be nonzero");
    }

    #[test]
    fn single_processor_chains_rejected() {
        let mut spec = WorkloadSpec::paper(3, 0.5);
        spec.num_processors = 1;
        assert_eq!(
            generate(&spec, &mut rng(7)).unwrap_err(),
            GenerateError::NotEnoughProcessors
        );
    }

    #[test]
    fn single_subtask_chains_on_one_processor_allowed() {
        let mut spec = WorkloadSpec::paper(1, 0.5);
        spec.num_processors = 1;
        spec.num_tasks = 4;
        let set = generate(&spec, &mut rng(8)).unwrap();
        assert_eq!(set.num_tasks(), 4);
        assert_eq!(set.num_subtasks(), 4);
    }

    #[test]
    fn period_distributions_respect_bounds() {
        let mut r = rng(9);
        for dist in [
            PeriodDistribution::TruncatedExponential { scale: 3_000.0 },
            PeriodDistribution::Uniform,
            PeriodDistribution::LogUniform,
        ] {
            for _ in 0..5_000 {
                let x = dist.sample(&mut r, 100.0, 10_000.0);
                assert!((100.0..=10_000.0).contains(&x), "{dist:?}: {x}");
            }
        }
    }

    #[test]
    fn uniform_periods_are_less_skewed_than_exponential() {
        let mut r = rng(10);
        let below_mid = |dist: PeriodDistribution, r: &mut StdRng| {
            (0..4_000)
                .filter(|_| dist.sample(r, 100.0, 10_000.0) < 5_050.0)
                .count() as f64
                / 4_000.0
        };
        let exp = below_mid(
            PeriodDistribution::TruncatedExponential { scale: 3_000.0 },
            &mut r,
        );
        let uni = below_mid(PeriodDistribution::Uniform, &mut r);
        assert!(exp > uni + 0.1, "exp {exp} vs uniform {uni}");
        assert!((uni - 0.5).abs() < 0.05, "uniform should center: {uni}");
    }

    #[test]
    fn alternative_policy_keeps_structure() {
        use rtsync_core::priority::RateMonotonic;
        let spec = WorkloadSpec::paper(4, 0.7);
        let pdm = generate(&spec, &mut rng(11)).unwrap();
        let rm = generate_with_policy(&spec, &RateMonotonic, &mut rng(11)).unwrap();
        // Same RNG draws → same structure; only priorities may differ.
        assert_eq!(pdm.num_subtasks(), rm.num_subtasks());
        for (a, b) in pdm.tasks().iter().zip(rm.tasks()) {
            assert_eq!(a.period(), b.period());
            for (sa, sb) in a.subtasks().iter().zip(b.subtasks()) {
                assert_eq!(sa.processor(), sb.processor());
                assert_eq!(sa.execution(), sb.execution());
            }
        }
    }

    #[test]
    fn nonpreemptive_fraction_marks_subtasks() {
        let spec = WorkloadSpec::paper(4, 0.5).with_nonpreemptive_fraction(0.5);
        let set = generate(&spec, &mut rng(21)).unwrap();
        let nonpreemptive = set.subtasks().filter(|s| !s.is_preemptible()).count();
        let total = set.num_subtasks();
        // With p = 0.5 over 48 subtasks, hitting 0 or all is astronomically
        // unlikely under a fixed seed.
        assert!(
            nonpreemptive > 5 && nonpreemptive < total - 5,
            "{nonpreemptive}/{total}"
        );
        // Zero fraction reproduces the paper's model.
        let base = generate(&WorkloadSpec::paper(4, 0.5), &mut rng(21)).unwrap();
        assert!(base.subtasks().all(|s| s.is_preemptible()));
    }

    #[test]
    fn critical_section_fraction_generates_local_sections() {
        let spec = WorkloadSpec::paper(4, 0.5).with_critical_section_fraction(0.5);
        let set = generate(&spec, &mut rng(31)).unwrap();
        let with_cs = set
            .subtasks()
            .filter(|s| !s.critical_sections().is_empty())
            .count();
        assert!(with_cs > 5, "{with_cs} sections generated");
        // Every section's resource is the host processor's local one and
        // fits inside the execution budget (already guaranteed by build,
        // but assert the generator's intent explicitly).
        for sub in set.subtasks() {
            for cs in sub.critical_sections() {
                assert_eq!(cs.resource.index(), sub.processor().index());
                assert!(cs.end() <= sub.execution());
            }
        }
        // The analyses accept the generated systems.
        use rtsync_core::analysis::{sa_pm::analyze_pm, AnalysisConfig};
        assert!(analyze_pm(&set, &AnalysisConfig::default()).is_ok());
    }

    #[test]
    #[should_panic(expected = "fraction must be in [0, 1]")]
    fn nonpreemptive_fraction_validated() {
        let _ = WorkloadSpec::paper(2, 0.5).with_nonpreemptive_fraction(1.5);
    }

    #[test]
    fn error_display() {
        assert!(GenerateError::NotEnoughProcessors
            .to_string()
            .contains("two processors"));
    }
}
