//! Integration tests for the telemetry layer: attaching the windowed
//! recorder never perturbs the schedule — for every protocol, ideal or
//! nonideal or synced, the run with a `TelemetryObserver` attached is
//! bit-for-bit the run without one (trace, event count, end time), and
//! the recorder still fills its windows while watching.

use proptest::prelude::*;
use rtsync_core::examples::example2;
use rtsync_core::protocol::Protocol;
use rtsync_core::time::Dur;
use rtsync_sim::engine::{simulate, simulate_observed, SimConfig};
use rtsync_sim::nonideal::{ChannelModel, ClockModel, NonidealConfig};
use rtsync_sim::{EventLogObserver, SyncConfig, Tee, TelemetryObserver};

fn d(x: i64) -> Dur {
    Dur::from_ticks(x)
}

/// Clocks with offsets up to ±50 ticks and up to 5% drift.
fn bad_clocks(seed: u64) -> ClockModel {
    ClockModel::Random {
        max_offset: d(50),
        max_drift_ppm: 50_000,
        seed,
    }
}

/// The three environment modes the identity guarantee must hold in.
fn mode_config(cfg: SimConfig, mode: usize) -> SimConfig {
    match mode {
        // Nonideal: skewed clocks and a lossy, laggy channel.
        1 => cfg.with_nonideal(
            NonidealConfig::default()
                .with_clocks(bad_clocks(9))
                .with_channel(ChannelModel::uniform(Dur::ZERO, d(3)).with_seed(17)),
        ),
        // Synced: skewed clocks corrected by sync rounds on the wire.
        2 => cfg
            .with_nonideal(NonidealConfig::default().with_clocks(bad_clocks(9)))
            .with_sync(SyncConfig::new(d(8))),
        // Ideal.
        _ => cfg,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The telemetry-off path is the unobserved engine, and attaching the
    /// recorder (alone or teed with the event log) changes nothing the
    /// engine computes: 4 protocols × {ideal, nonideal, sync}.
    #[test]
    fn telemetry_never_perturbs_the_schedule(
        proto_idx in 0usize..4,
        instances in 5u64..30,
        mode in 0usize..3,
    ) {
        let set = example2();
        let protocol = Protocol::ALL[proto_idx];
        let cfg = mode_config(
            SimConfig::new(protocol).with_instances(instances).with_trace(),
            mode,
        );

        let plain = simulate(&set, &cfg).unwrap();

        let mut tel = TelemetryObserver::new(d(16));
        let watched = simulate_observed(&set, &cfg, &mut tel).unwrap();
        prop_assert_eq!(&plain.trace, &watched.trace, "{:?} mode {}", protocol, mode);
        prop_assert_eq!(plain.events, watched.events);
        prop_assert_eq!(plain.end_time, watched.end_time);
        prop_assert_eq!(&plain.busy_ticks, &watched.busy_ticks);

        let report = tel.into_report();
        prop_assert!(!report.windows.is_empty());
        prop_assert!(report.windows.iter().any(|w| w.samples > 0));

        // Teed with the event log the guarantee still holds — the sample
        // gate ORs across the tee without changing either side.
        let mut tel2 = TelemetryObserver::new(d(16));
        let mut log = EventLogObserver::default();
        let mut tee = Tee(&mut log, &mut tel2);
        let teed = simulate_observed(&set, &cfg, &mut tee).unwrap();
        prop_assert_eq!(&plain.trace, &teed.trace, "{:?} mode {} (teed)", protocol, mode);
        prop_assert_eq!(plain.events, teed.events);
    }
}

/// A telemetry run is deterministic: same config, same report.
#[test]
fn telemetry_report_is_deterministic() {
    let set = example2();
    let cfg = mode_config(
        SimConfig::new(Protocol::ModifiedPhaseModification).with_instances(40),
        1,
    );
    let mut a = TelemetryObserver::new(d(12));
    simulate_observed(&set, &cfg, &mut a).unwrap();
    let mut b = TelemetryObserver::new(d(12));
    simulate_observed(&set, &cfg, &mut b).unwrap();
    assert_eq!(a.into_report(), b.into_report());
}

/// Counter events splice into the Chrome trace the event log exports:
/// same `ts` domain, valid JSON objects, every window covered.
#[test]
fn counter_tracks_share_the_trace_time_domain() {
    let set = example2();
    let cfg = SimConfig::new(Protocol::ReleaseGuard).with_instances(30);
    let mut tel = TelemetryObserver::new(d(10));
    let mut log = EventLogObserver::default();
    let mut tee = Tee(&mut log, &mut tel);
    simulate_observed(&set, &cfg, &mut tee).unwrap();
    let report = tel.into_report();
    let counters = report.chrome_counter_events();
    assert!(!counters.is_empty());
    let last_window_start = report.windows.last().unwrap().start.ticks();
    assert!(counters
        .iter()
        .any(|c| c.contains(&format!("\"ts\":{last_window_start}"))));
    let trace = log.to_chrome_trace();
    assert!(trace.contains("\"traceEvents\""));
}
