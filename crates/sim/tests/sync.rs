//! Integration tests for the clock-synchronization layer: sync rounds
//! genuinely tame nonideal clocks for the clock-driven PM protocol, the
//! correction policies behave as documented, runs stay deterministic,
//! and — the equivalence guarantee — the sync-disabled path is
//! bit-for-bit the legacy engine for every protocol, ideal or nonideal.

use proptest::prelude::*;
use rtsync_core::examples::example2;
use rtsync_core::protocol::Protocol;
use rtsync_core::time::Dur;
use rtsync_sim::engine::{simulate, simulate_observed, SimConfig};
use rtsync_sim::nonideal::LinkAsymmetry;
use rtsync_sim::nonideal::{eer_inflation, ChannelModel, ClockModel, NonidealConfig};
use rtsync_sim::{
    FaultConfig, PartitionSchedule, Persona, ProtocolCounters, SyncConfig, SyncPolicy, SyncStats,
};

fn d(x: i64) -> Dur {
    Dur::from_ticks(x)
}

/// Clocks with offsets up to ±50 ticks and up to 5% drift — hostile
/// territory for PM on a task set whose periods are 4–6 ticks.
fn bad_clocks(seed: u64) -> ClockModel {
    ClockModel::Random {
        max_offset: d(50),
        max_drift_ppm: 50_000,
        seed,
    }
}

/// Mean distance of the per-task EER inflation ratios from 1.0. Offset
/// clocks can shift PM releases early as well as late, so raw inflation
/// can deflate below 1 while the schedule is still badly wrong — the
/// deviation from the ideal ratio is the honest distortion measure.
fn mean_eer_distortion(ideal: &rtsync_sim::Metrics, observed: &rtsync_sim::Metrics) -> f64 {
    let ratios: Vec<f64> = eer_inflation(ideal, observed)
        .into_iter()
        .flatten()
        .collect();
    assert!(!ratios.is_empty());
    ratios.iter().map(|r| (r - 1.0).abs()).sum::<f64>() / ratios.len() as f64
}

/// Sync rounds run, produce Marzullo estimates with bounded uncertainty,
/// and drive every node's true clock error well below its initial offset.
#[test]
fn sync_rounds_estimate_and_correct_offsets() {
    let set = example2();
    let out = simulate(
        &set,
        &SimConfig::new(Protocol::PhaseModification)
            .with_instances(200)
            .with_nonideal(NonidealConfig::default().with_clocks(bad_clocks(7)))
            .with_sync(SyncConfig::new(d(8))),
    )
    .unwrap();
    let s = &out.sync_stats;
    assert!(s.rounds > 0, "{s:?}");
    assert!(s.estimates > 0, "{s:?}");
    assert!(s.frames > 0, "sync frames rode the channel: {s:?}");
    assert!(!s.corrections.is_empty(), "step policy corrected: {s:?}");
    // Offsets start at up to 50 ticks; after correction the residual is
    // drift·period + RTT/2, i.e. a couple of ticks.
    let mean_err = s.mean_true_error().unwrap();
    assert!(mean_err < 10.0, "mean true error {mean_err} (stats {s:?})");
}

/// The acceptance property in miniature: under drifting, offset clocks,
/// PM with sync is far closer to its ideal-clock schedule than PM
/// without sync.
#[test]
fn synced_pm_beats_unsynced_pm_under_bad_clocks() {
    let set = example2();
    let base = SimConfig::new(Protocol::PhaseModification).with_instances(200);
    let ideal = simulate(&set, &base).unwrap();
    let unsynced = simulate(
        &set,
        &base
            .clone()
            .with_nonideal(NonidealConfig::default().with_clocks(bad_clocks(7))),
    )
    .unwrap();
    let synced = simulate(
        &set,
        &base
            .clone()
            .with_nonideal(NonidealConfig::default().with_clocks(bad_clocks(7)))
            .with_sync(SyncConfig::new(d(8))),
    )
    .unwrap();
    let raw = mean_eer_distortion(&ideal.metrics, &unsynced.metrics);
    let corrected = mean_eer_distortion(&ideal.metrics, &synced.metrics);
    assert!(
        raw > 0.1,
        "50-tick offsets must visibly distort unsynced PM (got {raw})"
    );
    assert!(
        corrected < raw / 2.0,
        "sync must reclaim most of the distortion ({corrected} vs {raw})"
    );
    // Offset clocks also break PM's precedence guarantees outright; sync
    // must not make that worse.
    assert!(
        synced.violations.len() <= unsynced.violations.len(),
        "synced {} vs unsynced {}",
        synced.violations.len(),
        unsynced.violations.len()
    );
}

/// `Observe` measures without touching the clocks: no corrections are
/// ever applied, and the true error stays an order of magnitude above
/// the `Step` policy's under the same seeds.
#[test]
fn observe_policy_measures_but_never_corrects() {
    let set = example2();
    let run = |policy: SyncPolicy| {
        simulate(
            &set,
            &SimConfig::new(Protocol::PhaseModification)
                .with_instances(200)
                .with_nonideal(NonidealConfig::default().with_clocks(bad_clocks(9)))
                .with_sync(SyncConfig::new(d(8)).with_policy(policy)),
        )
        .unwrap()
        .sync_stats
    };
    let observed = run(SyncPolicy::Observe);
    let stepped = run(SyncPolicy::Step);
    assert!(observed.corrections.is_empty());
    assert!(observed.estimates > 0, "it still estimates");
    let (o, s) = (
        observed.mean_true_error().unwrap(),
        stepped.mean_true_error().unwrap(),
    );
    assert!(s * 4.0 < o, "step {s} must beat observe {o}");
}

/// `Slew` clamps every single correction to the configured bound.
#[test]
fn slew_corrections_are_bounded() {
    let set = example2();
    let out = simulate(
        &set,
        &SimConfig::new(Protocol::PhaseModification)
            .with_instances(200)
            .with_nonideal(NonidealConfig::default().with_clocks(bad_clocks(11)))
            .with_sync(SyncConfig::new(d(8)).with_policy(SyncPolicy::Slew { max_step: d(2) })),
    )
    .unwrap();
    let corrections = &out.sync_stats.corrections;
    assert!(!corrections.is_empty());
    // The 0.01-quantile reaches the most-negative bucket of a sample
    // this small; together with the max these bound every correction.
    assert!(corrections.quantile(0.01).unwrap() >= d(-2));
    assert!(corrections.quantile(1.0).unwrap() <= d(2));
}

/// Sync runs are seeded end to end: identical configs give bit-identical
/// outcomes, including the sync statistics.
#[test]
fn sync_runs_are_deterministic() {
    let set = example2();
    let cfg = SimConfig::new(Protocol::ReleaseGuard)
        .with_instances(60)
        .with_trace()
        .with_nonideal(
            NonidealConfig::default()
                .with_clocks(bad_clocks(5))
                .with_channel(ChannelModel::uniform(Dur::ZERO, d(2)).with_seed(21)),
        )
        .with_sync(SyncConfig::new(d(10)));
    let a = simulate(&set, &cfg).unwrap();
    let b = simulate(&set, &cfg).unwrap();
    assert_eq!(a.trace, b.trace);
    assert_eq!(a.events, b.events);
    assert_eq!(a.sync_stats, b.sync_stats);
    assert_eq!(a.channel_stats, b.channel_stats);
}

/// Sync frames share the wire with real protocol signals and are visible
/// through the observer: counters see rounds, frames and a nonzero share
/// of the channel traffic.
#[test]
fn sync_traffic_shares_the_channel_and_reaches_observers() {
    let set = example2();
    let mut counters = ProtocolCounters::default();
    let out = simulate_observed(
        &set,
        &SimConfig::new(Protocol::ReleaseGuard)
            .with_instances(60)
            .with_nonideal(
                NonidealConfig::default().with_channel(ChannelModel::constant(d(1)).with_seed(3)),
            )
            .with_sync(SyncConfig::new(d(10))),
        &mut counters,
    )
    .unwrap();
    assert!(counters.sync_rounds > 0);
    assert!(counters.sync_frames > 0);
    assert!(counters.sync_traffic_share().unwrap() > 0.0);
    assert_eq!(counters.sync_rounds, out.sync_stats.rounds);
    // Every sync frame that left a node went through the shared channel:
    // the channel saw strictly more sends than the protocol's signals.
    assert!(out.channel_stats.sent > counters.signal_sends);
    assert!(counters.render().contains("sync:"), "{}", counters.render());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Equivalence guarantee, randomized: with sync disabled the engine
    /// takes the exact legacy path for every protocol — on the ideal
    /// path a default `NonidealConfig` stays bit-identical to the plain
    /// engine, and on the nonideal path a seeded lossy channel run is
    /// bit-deterministic with zero sync activity (no extra RNG draw ever
    /// hits the shared channel generator).
    #[test]
    fn sync_disabled_path_is_bit_identical(
        proto_idx in 0usize..4,
        instances in 5u64..30,
    ) {
        let set = example2();
        let protocol = Protocol::ALL[proto_idx];
        let plain = SimConfig::new(protocol)
            .with_instances(instances)
            .with_trace();
        let nonideal = plain.clone().with_nonideal(NonidealConfig::default());
        let a = simulate(&set, &plain).unwrap();
        let b = simulate(&set, &nonideal).unwrap();
        prop_assert_eq!(&a.trace, &b.trace, "{:?}", protocol);
        prop_assert_eq!(a.events, b.events, "{:?}", protocol);
        prop_assert_eq!(&a.sync_stats, &SyncStats::default());
        prop_assert_eq!(&b.sync_stats, &SyncStats::default());

        let lossy = plain
            .clone()
            .with_channel(ChannelModel::uniform(Dur::ZERO, d(3)).with_seed(17));
        let c = simulate(&set, &lossy).unwrap();
        let e = simulate(&set, &lossy).unwrap();
        prop_assert_eq!(&c.trace, &e.trace, "{:?}", protocol);
        prop_assert_eq!(c.events, e.events, "{:?}", protocol);
        prop_assert_eq!(&c.sync_stats, &SyncStats::default());
    }

    /// Adversary knobs in their neutral position are exact no-ops: all-
    /// honest personas, an all-zero asymmetry matrix and an empty
    /// partition schedule leave every protocol's schedule bit-identical
    /// on the ideal path, the nonideal path and the synced path alike.
    #[test]
    fn neutral_adversary_knobs_are_bit_identical(
        proto_idx in 0usize..4,
        instances in 5u64..25,
    ) {
        let set = example2();
        let n = set.num_processors();
        let protocol = Protocol::ALL[proto_idx];
        let zero_asym = LinkAsymmetry::explicit(vec![vec![Dur::ZERO; n]; n]);
        let no_cut = FaultConfig::explicit(vec![Vec::new(); n])
            .with_partitions(PartitionSchedule::Explicit(Vec::new()));

        // Ideal path: a plain run vs the same with every knob neutral.
        let plain = SimConfig::new(protocol)
            .with_instances(instances)
            .with_trace();
        let neutral_plain = plain
            .clone()
            .with_nonideal(NonidealConfig::default().with_asymmetry(zero_asym.clone()))
            .with_faults(no_cut.clone());
        let a = simulate(&set, &plain).unwrap();
        let b = simulate(&set, &neutral_plain).unwrap();
        prop_assert_eq!(&a.trace, &b.trace, "{:?}", protocol);
        prop_assert_eq!(a.events, b.events, "{:?}", protocol);

        // Nonideal + synced path: a lossy, drifting, synced run vs the
        // same with honest personas, zero asymmetry and an empty cut.
        let nonideal = NonidealConfig::default()
            .with_clocks(bad_clocks(5))
            .with_channel(ChannelModel::uniform(Dur::ZERO, d(2)).with_seed(21));
        let synced = SimConfig::new(protocol)
            .with_instances(instances)
            .with_trace()
            .with_nonideal(nonideal.clone())
            .with_sync(SyncConfig::new(d(10)));
        let neutral_synced = SimConfig::new(protocol)
            .with_instances(instances)
            .with_trace()
            .with_nonideal(nonideal.with_asymmetry(zero_asym))
            .with_sync(
                SyncConfig::new(d(10))
                    .with_personas(vec![Persona::Honest; n])
                    .with_persona_seed(41),
            )
            .with_faults(no_cut);
        let c = simulate(&set, &synced).unwrap();
        let e = simulate(&set, &neutral_synced).unwrap();
        prop_assert_eq!(&c.trace, &e.trace, "{:?}", protocol);
        prop_assert_eq!(c.events, e.events, "{:?}", protocol);
        prop_assert_eq!(&c.sync_stats, &e.sync_stats, "{:?}", protocol);
    }
}
