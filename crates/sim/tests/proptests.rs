//! Property tests of the simulator's scheduling core: the event-driven
//! [`Processor`] is checked against a brute-force tick-by-tick reference
//! scheduler on random job sets, and the event queue's ordering contract
//! is exercised under random loads.

use proptest::prelude::*;
use rtsync_core::task::{Priority, ProcessorId, SubtaskId, TaskId};
use rtsync_core::time::{Dur, Time};
use rtsync_sim::event::{EventKind, EventQueue, ReferenceEventQueue};
use rtsync_sim::priority_profile::PriorityProfile;
use rtsync_sim::processor::{Milestone, Processor, Resched};
use rtsync_sim::JobId;

#[derive(Clone, Copy, Debug)]
struct JobSpec {
    release: i64,
    priority: u32,
    budget: i64,
    preemptible: bool,
}

/// Brute-force reference: simulate tick by tick. Jobs are identified by
/// their index; equal priorities break ties by release time then index
/// (the FIFO the processor promises). Returns completion times.
fn oracle(jobs: &[JobSpec]) -> Vec<i64> {
    #[derive(Clone, Copy)]
    struct Live {
        idx: usize,
        remaining: i64,
        started: bool,
    }
    let mut completion = vec![0i64; jobs.len()];
    let mut live: Vec<Live> = Vec::new();
    let mut current: Option<usize> = None; // index into `live`
    let mut t = 0i64;
    let mut done = 0;
    while done < jobs.len() {
        // Completions exactly at t (from the previous tick of work).
        if let Some(ci) = current {
            if live[ci].remaining == 0 {
                completion[live[ci].idx] = t;
                live.remove(ci);
                current = None;
                done += 1;
            }
        }
        // Releases at t.
        for (idx, j) in jobs.iter().enumerate() {
            if j.release == t {
                live.push(Live {
                    idx,
                    remaining: j.budget,
                    started: false,
                });
            }
        }
        // Dispatch: a started non-preemptible job keeps the slot.
        let keep = current.is_some_and(|ci| {
            let job = &live[ci];
            job.started && !jobs[job.idx].preemptible && job.remaining > 0
        });
        if !keep && !live.is_empty() {
            // Highest priority, FIFO by (release, index) within a level.
            let best = (0..live.len())
                .min_by_key(|&i| {
                    let j = &jobs[live[i].idx];
                    (j.priority, j.release, live[i].idx)
                })
                .expect("non-empty");
            current = Some(best);
        } else if live.is_empty() {
            current = None;
        }
        // One tick of work.
        if let Some(ci) = current {
            live[ci].started = true;
            live[ci].remaining -= 1;
        }
        t += 1;
        if t > 10_000 {
            unreachable!("oracle runaway");
        }
    }
    completion
}

/// Drive the real `Processor` with a miniature engine (releases at known
/// times, completion events from reschedule, end-of-instant dispatch).
fn event_driven(jobs: &[JobSpec]) -> Vec<i64> {
    let mut completion = vec![0i64; jobs.len()];
    let mut p = Processor::new(ProcessorId::new(0));
    // (time, kind): kind 0 = completion(gen), kind 1 = release(job index).
    #[derive(Clone, Copy)]
    enum Ev {
        Completion(u64),
        Release(usize),
    }
    let mut queue: Vec<(i64, usize, Ev)> = jobs
        .iter()
        .enumerate()
        .map(|(i, j)| (j.release, i, Ev::Release(i)))
        .collect();
    let mut seq = jobs.len();
    let mut done = 0;
    while done < jobs.len() {
        // Pop the earliest event; completions before releases at a tie.
        queue.sort_by_key(|&(t, s, ref ev)| (t, matches!(ev, Ev::Release(_)) as u8, s));
        let (now, _, ev) = queue.remove(0);
        let now_t = Time::from_ticks(now);
        match ev {
            Ev::Release(i) => {
                let j = jobs[i];
                if let Some(slice) = p.advance(now_t) {
                    let _ = slice;
                }
                p.release(
                    JobId::new(SubtaskId::new(TaskId::new(i), 0), 0),
                    PriorityProfile::flat(Priority::new(j.priority)),
                    Dur::from_ticks(j.budget),
                    j.preemptible,
                );
            }
            Ev::Completion(gen) => {
                let _ = p.advance(now_t);
                match p.take_milestone(gen) {
                    Some(Milestone::Completed(job)) => {
                        completion[job.task().index()] = now;
                        done += 1;
                    }
                    Some(Milestone::Boundary(_)) => {
                        unreachable!("flat profiles have no boundaries")
                    }
                    None => {}
                }
            }
        }
        // End-of-instant dispatch: only when no same-time event remains.
        let more_now = queue.iter().any(|&(t, _, _)| t == now);
        if !more_now {
            if let Resched::NewMilestone { at, gen } = p.reschedule(now_t) {
                queue.push((at.ticks(), seq, Ev::Completion(gen)));
                seq += 1;
            }
        }
    }
    completion
}

fn arb_jobs() -> impl Strategy<Value = Vec<JobSpec>> {
    prop::collection::vec((0i64..40, 0u32..4, 1i64..6, prop::bool::ANY), 1..10)
        .prop_map(|raw| {
            raw.into_iter()
                .map(|(release, priority, budget, preemptible)| JobSpec {
                    release,
                    priority,
                    budget,
                    preemptible,
                })
                .collect::<Vec<_>>()
        })
        .prop_filter(
            "unique (priority, release) pairs keep FIFO deterministic",
            |jobs| {
                // Two jobs with the same priority and the same release time would
                // tie-break by engine insertion order vs oracle index — make them
                // unambiguous by requiring distinct (priority, release) pairs.
                let mut seen = std::collections::HashSet::new();
                jobs.iter().all(|j| seen.insert((j.priority, j.release)))
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// The event-driven processor completes every job at exactly the
    /// instant the tick-by-tick reference scheduler does — including
    /// non-preemptible jobs and same-instant arbitration.
    #[test]
    fn processor_matches_tick_oracle(jobs in arb_jobs()) {
        let expect = oracle(&jobs);
        let got = event_driven(&jobs);
        prop_assert_eq!(got, expect, "jobs: {:?}", jobs);
    }

    /// The event queue pops in (time, kind-rank, insertion) order whatever
    /// the insertion order was.
    #[test]
    fn event_queue_total_order(entries in prop::collection::vec((0i64..50, 0u8..2), 1..50)) {
        let mut q = EventQueue::new();
        for (i, &(t, k)) in entries.iter().enumerate() {
            let kind = if k == 0 {
                EventKind::Completion { proc: ProcessorId::new(0), gen: i as u64 }
            } else {
                EventKind::SourceRelease { task: TaskId::new(i), instance: 0 }
            };
            q.push(Time::from_ticks(t), kind);
        }
        let mut prev: Option<(i64, u8)> = None;
        while let Some(ev) = q.pop() {
            let rank = match ev.kind {
                EventKind::Completion { .. } => 0u8,
                _ => 3,
            };
            if let Some((pt, pr)) = prev {
                prop_assert!(
                    (pt, pr) <= (ev.time.ticks(), rank),
                    "queue went backwards: ({pt}, {pr}) then ({}, {rank})",
                    ev.time.ticks()
                );
            }
            prev = Some((ev.time.ticks(), rank));
        }
    }

    /// Differential oracle: the two-tier wheel queue pops the exact same
    /// `(time, kind)` sequence as [`ReferenceEventQueue`] — the plain
    /// binary-heap implementation it replaced — under random push/pop
    /// interleavings. The time mapping deliberately stacks three regimes:
    /// dense same-instant ties (exercising kind-rank and insertion-order
    /// arbitration, including the adjacent AckDeliver/RetransmitTimer
    /// ranks), times straddling the wheel horizon (near/far migration),
    /// and scattered far-future times (overflow-heap refills).
    #[test]
    fn wheel_queue_matches_the_reference_heap(
        ops in prop::collection::vec(
            (prop::bool::ANY, 0i64..200_000, 0u8..4), 1..200),
    ) {
        let kind_of = |sel: u8, i: usize| match sel {
            0 => EventKind::Completion { proc: ProcessorId::new(0), gen: i as u64 },
            1 => EventKind::SourceRelease { task: TaskId::new(i), instance: 0 },
            // Fixed seqs so same-instant ack/retransmit pairs differ only
            // by kind rank and insertion order.
            2 => EventKind::AckDeliver { seq: 7 },
            _ => EventKind::RetransmitTimer { seq: 7, attempt: 1 },
        };
        let mut wheel = EventQueue::new();
        let mut reference = ReferenceEventQueue::new();
        for (i, &(is_pop, raw_t, sel)) in ops.iter().enumerate() {
            if is_pop {
                let got = wheel.pop().map(|e| (e.time, e.kind));
                let want = reference.pop().map(|e| (e.time, e.kind));
                prop_assert_eq!(got, want, "diverged at op {}", i);
            } else {
                let t = Time::from_ticks(match raw_t % 10 {
                    0..=5 => raw_t % 16,             // dense ties
                    6 | 7 => 32_700 + raw_t % 140,   // wheel-horizon straddle
                    _ => raw_t,                      // far future
                });
                wheel.push(t, kind_of(sel, i));
                reference.push(t, kind_of(sel, i));
            }
        }
        prop_assert_eq!(wheel.len(), reference.len());
        loop {
            let got = wheel.pop().map(|e| (e.time, e.kind));
            let want = reference.pop().map(|e| (e.time, e.kind));
            prop_assert_eq!(got, want, "diverged during the final drain");
            if got.is_none() {
                break;
            }
        }
    }
}
