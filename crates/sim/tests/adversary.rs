//! Integration tests for the adversarial-time machinery: network
//! partitions sever and heal deterministically without leaking protocol
//! signals across the cut, Byzantine timeserver personas corrupt samples
//! without defeating a minority-tolerant Marzullo intersection (and
//! visibly defeat it at a colluding majority), per-link asymmetry widens
//! the advertised uncertainty honestly, and sync-over-transport retries
//! dropped frames.

use rtsync_core::examples::{example1, example2};
use rtsync_core::protocol::Protocol;
use rtsync_core::time::{Dur, Time};
use rtsync_sim::engine::{simulate, simulate_observed, SimConfig};
use rtsync_sim::nonideal::{ChannelModel, ClockModel, LinkAsymmetry, NonidealConfig};
use rtsync_sim::{
    FaultConfig, InvariantObserver, PartitionSchedule, PartitionWindow, Persona, SyncConfig,
};

fn d(x: i64) -> Dur {
    Dur::from_ticks(x)
}

fn t(x: i64) -> Time {
    Time::from_ticks(x)
}

/// One explicit cut isolating P0 from P1 over `[10, 10 + span)`.
fn one_cut(span: i64) -> FaultConfig {
    FaultConfig::explicit(vec![Vec::new(), Vec::new()]).with_partitions(
        PartitionSchedule::Explicit(vec![PartitionWindow {
            at: t(10),
            heal_delay: d(span),
            island: vec![0],
        }]),
    )
}

/// Random clocks hostile enough that sync corrections matter.
fn bad_clocks(seed: u64) -> ClockModel {
    ClockModel::Random {
        max_offset: d(50),
        max_drift_ppm: 20_000,
        seed,
    }
}

/// A cut severs cross-processor signals, parks them, and replays every
/// one at the heal; the whole run is bit-deterministic.
#[test]
fn partition_severs_parks_and_replays_signals() {
    let set = example2();
    let cfg = SimConfig::new(Protocol::DirectSync)
        .with_instances(40)
        .with_trace()
        .with_channel(ChannelModel::constant(d(1)).with_seed(5))
        .with_faults(one_cut(30));
    let a = simulate(&set, &cfg).unwrap();
    let fs = &a.fault_stats;
    assert_eq!(fs.partitions, 1, "{fs:?}");
    assert_eq!(fs.heals, 1, "{fs:?}");
    assert!(fs.severed_signals > 0, "the cut crossed T1's chain: {fs:?}");
    assert_eq!(
        fs.partition_replayed, fs.severed_signals,
        "every parked signal replays at the heal: {fs:?}"
    );
    let b = simulate(&set, &cfg).unwrap();
    assert_eq!(a.trace, b.trace);
    assert_eq!(a.events, b.events);
    assert_eq!(a.fault_stats, b.fault_stats);
}

/// The online invariants hold through a cut and its heal for every
/// protocol: nothing crosses the partition, conservation closes, and the
/// run ends clean.
#[test]
fn partition_invariants_hold_for_every_protocol() {
    let set = example2();
    for protocol in Protocol::ALL {
        let mut obs = InvariantObserver::default();
        let out = simulate_observed(
            &set,
            &SimConfig::new(protocol)
                .with_instances(40)
                .with_channel(ChannelModel::constant(d(1)).with_seed(5))
                .with_faults(one_cut(25)),
            &mut obs,
        )
        .unwrap();
        obs.check_outcome(&out);
        assert!(
            obs.is_clean(),
            "{protocol:?}: {:?}",
            obs.violations().first()
        );
    }
}

/// A single large-offset liar among three timeservers corrupts samples
/// but cannot move the Marzullo intersection: every settled estimate
/// still brackets the true offset and the armed invariant stays clean.
#[test]
fn minority_liar_cannot_defeat_the_bracket() {
    let set = example1();
    let mut obs = InvariantObserver::default();
    let out = simulate_observed(
        &set,
        &SimConfig::new(Protocol::PhaseModification)
            .with_instances(150)
            .with_nonideal(NonidealConfig::default().with_clocks(bad_clocks(3)))
            .with_sync(SyncConfig::new(d(8)).with_personas(vec![
                Persona::Honest,
                Persona::FixedLiar { offset: d(8000) },
                Persona::Honest,
            ])),
        &mut obs,
    )
    .unwrap();
    let s = &out.sync_stats;
    assert!(s.corrupted_samples > 0, "the liar answered: {s:?}");
    assert!(s.bracket_samples > 0, "{s:?}");
    assert_eq!(
        s.bracket_misses, 0,
        "minority liar defeated Marzullo: {s:?}"
    );
    assert!(obs.is_clean(), "{:?}", obs.violations().first());
}

/// Two colluders out of three agree on a fake offset: past n/2 their
/// mutually-consistent intervals out-vote the reference and the settled
/// estimates stop bracketing the true offset — the documented failure
/// mode of intersection-based sync under a Byzantine majority.
#[test]
fn colluding_majority_defeats_the_bracket() {
    let set = example1();
    let out = simulate(
        &set,
        &SimConfig::new(Protocol::PhaseModification)
            .with_instances(150)
            .with_nonideal(NonidealConfig::default().with_clocks(bad_clocks(3)))
            .with_sync(SyncConfig::new(d(8)).with_personas(vec![
                Persona::Colluder { target: d(-6000) },
                Persona::Colluder { target: d(-6000) },
                Persona::Honest,
            ])),
    )
    .unwrap();
    let s = &out.sync_stats;
    assert!(s.corrupted_samples > 0, "{s:?}");
    assert!(
        s.bracket_misses > 0,
        "a colluding majority must break uncertainty honesty: {s:?}"
    );
}

/// Asymmetric links bias NTP's midpoint; the advertised asymmetry bound
/// widens every sample, so the estimate stays honest — with strictly
/// wider raw samples than the symmetric run (the settled Marzullo
/// half-width itself stays pinned by the tight reference interval).
#[test]
fn asymmetry_widens_uncertainty_but_stays_honest() {
    let set = example1();
    let base = SimConfig::new(Protocol::PhaseModification)
        .with_instances(150)
        .with_sync(SyncConfig::new(d(8)));
    let symmetric = simulate(
        &set,
        &base
            .clone()
            .with_nonideal(NonidealConfig::default().with_clocks(bad_clocks(7))),
    )
    .unwrap();
    let skewed = simulate(
        &set,
        &base.clone().with_nonideal(
            NonidealConfig::default()
                .with_clocks(bad_clocks(7))
                .with_asymmetry(LinkAsymmetry::random(3, d(6), 11)),
        ),
    )
    .unwrap();
    assert_eq!(symmetric.sync_stats.bracket_misses, 0);
    assert_eq!(
        skewed.sync_stats.bracket_misses, 0,
        "the asymmetry bound must keep the bracket honest: {:?}",
        skewed.sync_stats
    );
    assert!(
        skewed.sync_stats.max_sample_width > symmetric.sync_stats.max_sample_width,
        "biased links must widen the raw samples ({:?} vs {:?})",
        skewed.sync_stats.max_sample_width,
        symmetric.sync_stats.max_sample_width
    );
}

/// Sync-over-transport mode retries frames the channel drops: the lossy
/// run records losses and retransmissions, and recovers more exchanges
/// than the fire-and-forget mode under the same seeds.
#[test]
fn sync_over_transport_retries_dropped_frames() {
    let set = example2();
    let lossy = |over: bool| {
        simulate(
            &set,
            &SimConfig::new(Protocol::ReleaseGuard)
                .with_instances(80)
                .with_channel(
                    ChannelModel::constant(d(1))
                        .with_seed(9)
                        .with_endpoint_drops(0.3),
                )
                .with_sync(SyncConfig::new(d(10)).with_over_transport(over)),
        )
        .unwrap()
        .sync_stats
    };
    let plain = lossy(false);
    let acked = lossy(true);
    assert!(plain.frames_lost > 0, "{plain:?}");
    assert_eq!(plain.retransmits, 0, "{plain:?}");
    assert!(acked.retransmits > 0, "{acked:?}");
    assert!(
        acked.exchanges > plain.exchanges,
        "retries must recover exchanges ({} vs {})",
        acked.exchanges,
        plain.exchanges
    );
}

/// Partition-window cadence also severs sync frames and heartbeat-driven
/// detector traffic, and the counters agree with the fault-side census.
#[test]
fn cut_severs_sync_frames_too() {
    let set = example2();
    let out = simulate(
        &set,
        &SimConfig::new(Protocol::ReleaseGuard)
            .with_instances(60)
            .with_channel(ChannelModel::constant(d(1)).with_seed(5))
            .with_faults(one_cut(40))
            .with_sync(SyncConfig::new(d(6))),
    )
    .unwrap();
    let fs = &out.fault_stats;
    assert!(out.sync_stats.frames_severed > 0, "{:?}", out.sync_stats);
    assert_eq!(out.sync_stats.frames_severed, fs.severed_sync, "{fs:?}");
}
