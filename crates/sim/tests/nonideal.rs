//! Integration tests for the nonideal-conditions subsystem: the paper's
//! qualitative robustness claims, measured.

use rtsync_core::analysis::sa_pm::analyze_pm;
use rtsync_core::examples::{example1, example2};
use rtsync_core::protocol::Protocol;
use rtsync_core::time::{Dur, Time};
use rtsync_core::AnalysisConfig;
use rtsync_sim::engine::{simulate, SimConfig};
use rtsync_sim::nonideal::{ChannelModel, ClockModel, LocalClock, NonidealConfig};
use rtsync_sim::{TransportConfig, ViolationKind};

fn d(x: i64) -> Dur {
    Dur::from_ticks(x)
}

/// With every knob at zero, the nonideal config takes the exact legacy
/// code path: traces and even event counts are bit-for-bit identical.
#[test]
fn default_nonideal_is_bit_identical_to_plain_engine() {
    for set in [example1(), example2()] {
        for protocol in Protocol::ALL {
            let plain = SimConfig::new(protocol).with_instances(20).with_trace();
            let nonideal = plain.clone().with_nonideal(NonidealConfig::default());
            let a = simulate(&set, &plain).unwrap();
            let b = simulate(&set, &nonideal).unwrap();
            assert_eq!(a.trace, b.trace, "{protocol:?}");
            assert_eq!(a.events, b.events, "{protocol:?}");
            assert_eq!(b.channel_stats.sent, 0, "{protocol:?}");
        }
    }
}

/// A zero-latency channel routes every cross-processor signal through
/// `SignalSend`/`SignalDeliver` events but must reproduce the ideal
/// schedule: same releases, completions and executed segments.
#[test]
fn zero_latency_channel_reproduces_ideal_schedule() {
    for set in [example1(), example2()] {
        for protocol in [
            Protocol::DirectSync,
            Protocol::ModifiedPhaseModification,
            Protocol::ReleaseGuard,
        ] {
            let ideal_cfg = SimConfig::new(protocol).with_instances(20).with_trace();
            let routed_cfg = ideal_cfg
                .clone()
                .with_channel(ChannelModel::constant(Dur::ZERO));
            let ideal = simulate(&set, &ideal_cfg).unwrap();
            let routed = simulate(&set, &routed_cfg).unwrap();
            let (it, rt) = (ideal.trace.unwrap(), routed.trace.unwrap());
            for task in set.tasks() {
                for sub in task.subtasks() {
                    assert_eq!(
                        it.releases_of(sub.id()),
                        rt.releases_of(sub.id()),
                        "{protocol:?} {} releases",
                        sub.id()
                    );
                    assert_eq!(
                        it.completions_of(sub.id()),
                        rt.completions_of(sub.id()),
                        "{protocol:?} {} completions",
                        sub.id()
                    );
                }
            }
            for p in 0..set.num_processors() {
                let proc = rtsync_core::task::ProcessorId::new(p);
                assert_eq!(it.segments_on(proc), rt.segments_on(proc), "{protocol:?}");
            }
            assert!(
                routed.channel_stats.sent > 0,
                "{protocol:?} used the channel"
            );
            assert_eq!(routed.channel_stats.applied, routed.channel_stats.sent);
        }
    }
}

/// The smallest gap PM's ideal schedule leaves between a predecessor's
/// completion and its successor's clock-driven release.
fn pm_slack(set: &rtsync_core::task::TaskSet) -> Dur {
    let out = simulate(
        set,
        &SimConfig::new(Protocol::PhaseModification)
            .with_instances(20)
            .with_trace(),
    )
    .unwrap();
    let trace = out.trace.unwrap();
    let mut slack = Dur::MAX;
    for task in set.tasks() {
        for sub in task.subtasks().iter().skip(1) {
            let pred = sub.id().predecessor().unwrap();
            let comps = trace.completions_of(pred);
            for (m, rel) in trace.releases_of(sub.id()).iter().enumerate() {
                if let Some(&c) = comps.get(m) {
                    slack = slack.min(*rel - c);
                }
            }
        }
    }
    assert!(slack < Dur::MAX, "PM schedule has cross-subtask releases");
    slack
}

/// The acceptance scenario: once clock offsets exceed PM's schedule
/// slack, PM releases a successor before its predecessor completed — a
/// detected precedence `Violation` — while RG under the *same clocks*
/// stays violation-free and within its SA/PM bound (RG never reads
/// absolute local time, so offsets cancel out of its guard durations).
#[test]
fn pm_offset_beyond_slack_violates_precedence_rg_does_not() {
    let set = example2();
    let slack = pm_slack(&set);
    // Every processor clock runs *fast* by slack + 1: PM's local release
    // phases are reached that much earlier in true time, but the external
    // sources (and everything else) live in true time.
    let offset = Dur::from_ticks(slack.ticks() + 1);
    let clocks = ClockModel::Explicit(vec![LocalClock::with_offset(offset); 2]);
    let ni = NonidealConfig::default().with_clocks(clocks);

    let pm = simulate(
        &set,
        &SimConfig::new(Protocol::PhaseModification)
            .with_instances(20)
            .with_nonideal(ni.clone()),
    )
    .unwrap();
    assert!(
        pm.violations
            .iter()
            .any(|v| v.kind == ViolationKind::PrecedenceViolated),
        "PM with offset {} > slack {} must violate precedence",
        offset,
        slack
    );

    let rg = simulate(
        &set,
        &SimConfig::new(Protocol::ReleaseGuard)
            .with_instances(20)
            .with_nonideal(ni),
    )
    .unwrap();
    assert!(rg.violations.is_empty(), "RG is offset-immune");
    let bounds = analyze_pm(&set, &AnalysisConfig::default()).unwrap();
    for task in set.tasks() {
        if let Some(max) = rg.metrics.task(task.id()).max_eer() {
            assert!(
                max <= bounds.task_bound(task.id()),
                "RG task {} exceeded its SA/PM bound: {} > {}",
                task.id(),
                max,
                bounds.task_bound(task.id())
            );
        }
    }
}

/// The independent validator finds the same precedence breaks in the
/// recorded trace that the engine reported live: the new failure mode is
/// detectable from the artifact alone.
#[test]
fn validator_detects_pm_precedence_breaks_from_trace() {
    let set = example2();
    let slack = pm_slack(&set);
    let offset = Dur::from_ticks(slack.ticks() + 1);
    let clocks = ClockModel::Explicit(vec![LocalClock::with_offset(offset); 2]);
    let out = simulate(
        &set,
        &SimConfig::new(Protocol::PhaseModification)
            .with_instances(20)
            .with_trace()
            .with_nonideal(NonidealConfig::default().with_clocks(clocks)),
    )
    .unwrap();
    let engine_count = out
        .violations
        .iter()
        .filter(|v| v.kind == ViolationKind::PrecedenceViolated)
        .count();
    assert!(engine_count > 0);
    let defects = rtsync_sim::validate_schedule(&set, out.trace.as_ref().unwrap(), true);
    let validator_count = defects
        .iter()
        .filter(|d| matches!(d, rtsync_sim::ScheduleDefect::PrecedenceViolation { .. }))
        .count();
    assert_eq!(
        validator_count, engine_count,
        "validator and engine agree on every break: {defects:?}"
    );
}

/// Offsets *below* the slack leave PM intact: the boundary is sharp.
#[test]
fn pm_tolerates_offsets_within_slack() {
    let set = example2();
    let slack = pm_slack(&set);
    if slack == Dur::ZERO {
        return; // schedule is tight; nothing to tolerate
    }
    let clocks = ClockModel::Explicit(vec![LocalClock::with_offset(slack); 2]);
    let out = simulate(
        &set,
        &SimConfig::new(Protocol::PhaseModification)
            .with_instances(20)
            .with_nonideal(NonidealConfig::default().with_clocks(clocks)),
    )
    .unwrap();
    assert!(
        out.violations.is_empty(),
        "offset == slack still meets every release exactly at completion"
    );
}

/// MPM degrades additively: constant signal latency `L` delays each
/// cross-processor hop by exactly `L`, so a task's end-to-end response
/// grows by at most `(chain length - 1) * L`, and never shrinks.
#[test]
fn mpm_latency_degrades_additively() {
    let set = example2();
    let base = simulate(
        &set,
        &SimConfig::new(Protocol::ModifiedPhaseModification).with_instances(50),
    )
    .unwrap();
    for latency in 1..=4i64 {
        let out = simulate(
            &set,
            &SimConfig::new(Protocol::ModifiedPhaseModification)
                .with_instances(50)
                .with_channel(ChannelModel::constant(d(latency))),
        )
        .unwrap();
        for task in set.tasks() {
            let hops = (task.chain_len() - 1) as f64;
            let stats = out.metrics.task(task.id());
            let (Some(ideal), Some(seen)) =
                (base.metrics.task(task.id()).avg_eer(), stats.avg_eer())
            else {
                continue;
            };
            assert!(
                seen <= ideal + hops * latency as f64 + 1e-9,
                "task {}: avg EER {} exceeds additive bound {} at L={}",
                task.id(),
                seen,
                ideal + hops * latency as f64,
                latency
            );
            // The chain that actually rides the channel can only get
            // slower; single-subtask tasks may speed up as interference
            // shifts away from them, so the lower bound applies to
            // multi-hop chains alone.
            if task.chain_len() > 1 {
                assert!(
                    seen + 1e-9 >= ideal,
                    "task {}: delayed hops cannot shrink EER ({} < {}) at L={}",
                    task.id(),
                    seen,
                    ideal,
                    latency
                );
            }
        }
    }
}

/// Randomized channels are seeded: identical configs give bit-identical
/// runs, and with the endpoint transport attached every dropped signal is
/// recovered even under drops, duplicates and reordering.
#[test]
fn faulty_channel_is_deterministic_and_lossless() {
    let set = example2();
    let channel = ChannelModel::uniform(Dur::ZERO, d(3))
        .with_seed(42)
        .with_endpoint_drops(0.4)
        .with_duplicates(0.3);
    let cfg = SimConfig::new(Protocol::DirectSync)
        .with_instances(60)
        .with_trace()
        .with_channel(channel)
        .with_transport(TransportConfig::new(d(8)));
    let a = simulate(&set, &cfg).unwrap();
    let b = simulate(&set, &cfg).unwrap();
    assert_eq!(a.trace, b.trace);
    assert_eq!(a.events, b.events);
    assert_eq!(a.channel_stats, b.channel_stats);

    let stats = a.channel_stats;
    assert!(stats.dropped > 0, "p=0.4 over {} sends", stats.sent);
    assert!(stats.duplicates_injected > 0);
    // The endpoint transport recovers every drop: nothing is lost, no
    // `SignalLost` is ever reported.
    assert_eq!(a.transport_stats.gave_up, 0);
    assert_eq!(a.metrics.total_lost(), 0);
    assert!(
        !a.violations
            .iter()
            .any(|v| v.kind == ViolationKind::SignalLost),
        "{:?}",
        a.violations
    );
    // The independent validator agrees: the delayed schedule is still a
    // correct preemptive fixed-priority schedule with precedence intact.
    let defects = rtsync_sim::validate_schedule(&set, a.trace.as_ref().unwrap(), true);
    assert!(defects.is_empty(), "{defects:?}");
}

/// Even heavy loss (`p = 0.7`) cannot wedge the simulation: the endpoint
/// transport retransmits until every signal lands and the run completes
/// with releases in order.
#[test]
fn heavy_loss_still_delivers_via_endpoint_retransmission() {
    let set = example2();
    let out = simulate(
        &set,
        &SimConfig::new(Protocol::ReleaseGuard)
            .with_instances(30)
            .with_channel(
                ChannelModel::constant(d(1))
                    .with_endpoint_drops(0.7)
                    .with_seed(3),
            )
            .with_transport(TransportConfig::new(d(3))),
    )
    .unwrap();
    assert!(out.reached_target);
    let stats = out.channel_stats;
    assert!(stats.dropped > 0);
    assert!(
        out.transport_stats.retransmissions > 0,
        "recovery is the endpoints' job now"
    );
    assert_eq!(out.transport_stats.gave_up, 0);
    assert_eq!(out.metrics.total_lost(), 0);
}

/// Drifting clocks leave the signal-driven protocols' correctness alone:
/// RG and DS preserve precedence under any bounded drift (their timers
/// measure durations, so rates only stretch the guards).
#[test]
fn rg_and_ds_preserve_precedence_under_drift() {
    let set = example2();
    let clocks = ClockModel::Random {
        max_offset: d(5),
        max_drift_ppm: 50_000, // up to 5% fast or slow
        seed: 7,
    };
    for protocol in [Protocol::DirectSync, Protocol::ReleaseGuard] {
        let out = simulate(
            &set,
            &SimConfig::new(protocol)
                .with_instances(40)
                .with_nonideal(NonidealConfig::default().with_clocks(clocks.clone())),
        )
        .unwrap();
        assert!(out.violations.is_empty(), "{protocol:?}");
    }
}

/// EER inflation: the robustness metric reads 1.0 for an identical run
/// and grows once latency delays completions.
#[test]
fn eer_inflation_reads_one_for_identical_runs() {
    let set = example2();
    let cfg = SimConfig::new(Protocol::ReleaseGuard).with_instances(30);
    let ideal = simulate(&set, &cfg).unwrap();
    let same = simulate(&set, &cfg).unwrap();
    for ratio in rtsync_sim::nonideal::eer_inflation(&ideal.metrics, &same.metrics)
        .into_iter()
        .flatten()
    {
        assert!((ratio - 1.0).abs() < 1e-12);
    }
    let delayed = simulate(
        &set,
        &cfg.clone().with_channel(ChannelModel::constant(d(3))),
    )
    .unwrap();
    let inflations = rtsync_sim::nonideal::eer_inflation(&ideal.metrics, &delayed.metrics);
    assert!(
        inflations.iter().flatten().any(|&r| r > 1.0),
        "3-tick latency must inflate some task's EER: {inflations:?}"
    );
}

/// PM under drift-only clocks (no offset) on a long horizon: local
/// timers slide relative to true-time sources, eventually past the
/// slack — the drift analogue of the offset scenario.
#[test]
fn pm_drift_accumulates_into_violation() {
    let set = example2();
    // 2% fast on both processors: after ~t=100 the accumulated advance
    // exceeds example2's PM slack.
    let clocks = ClockModel::Explicit(vec![
        LocalClock::with_drift_ppm(20_000),
        LocalClock::with_drift_ppm(20_000),
    ]);
    let out = simulate(
        &set,
        &SimConfig::new(Protocol::PhaseModification)
            .with_instances(100)
            .with_nonideal(NonidealConfig::default().with_clocks(clocks)),
    )
    .unwrap();
    assert!(
        out.violations
            .iter()
            .any(|v| v.kind == ViolationKind::PrecedenceViolated),
        "accumulated drift must eventually break PM"
    );
}

/// Sanity on the clock conversions the engine depends on, at the
/// integration surface: a round trip through local time is lossless
/// within one tick over a long span.
#[test]
fn clock_round_trip_is_tight() {
    let clock = LocalClock {
        offset: d(-7),
        drift_ppm: 12_345,
    };
    for t in (0..1_000_000).step_by(9_973) {
        let t = Time::from_ticks(t);
        let back = clock.true_of_local(clock.local_of(t));
        let err = (back - t).ticks().abs();
        assert!(err <= 1, "round trip error {err} at {t}");
    }
}
