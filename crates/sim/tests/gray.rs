//! Integration tests for the gray-failure machinery: slowdown windows
//! stretch service without fail-stopping, stalls freeze a node without
//! killing its in-flight work (unlike a crash), degraded links inflate
//! latency and drop lossy frames while the wire stays live, flapping
//! bursts resolve into ordinary crash/recover cycles — and the adaptive
//! φ-accrual detector absorbs a merely-slow peer that a fixed-timeout
//! cliff falsely declares dead. With every gray knob in its neutral
//! position the engine is bit-identical to the pre-gray path.

use proptest::prelude::*;
use rtsync_core::examples::example2;
use rtsync_core::protocol::Protocol;
use rtsync_core::time::{Dur, Time};
use rtsync_sim::engine::{simulate, SimConfig};
use rtsync_sim::{
    CrashWindow, DetectorConfig, FaultConfig, FlapBurst, FlapSchedule, GrayConfig,
    LinkDegradeWindow, LinkSchedule, PhiConfig, SlowSchedule, SlowWindow, StallSchedule,
    StallWindow, TransportConfig,
};

fn d(x: i64) -> Dur {
    Dur::from_ticks(x)
}

fn t(x: i64) -> Time {
    Time::from_ticks(x)
}

/// A heartbeat detector riding the endpoint transport; `phi` arms the
/// adaptive mode.
fn detector(phi: bool) -> TransportConfig {
    let mut det = DetectorConfig::new(d(5));
    if phi {
        det = det.with_phi(PhiConfig::new());
    }
    TransportConfig::new(d(8)).with_seed(3).with_detector(det)
}

/// One long 8x slowdown of P0 — far past the fixed detector's 6-period
/// death cliff (heartbeats land every 40 ticks against a 30-tick
/// `dead_after`), but short of φ's dead threshold (9.2 x the observed
/// mean, which only grows as the slow intervals feed the window).
fn slow_p0() -> FaultConfig {
    FaultConfig::gray_only(GrayConfig::new().with_slow(SlowSchedule::Explicit(vec![
        vec![SlowWindow {
            at: t(40),
            span: d(600),
            factor: 8,
        }],
        Vec::new(),
    ])))
}

/// A slowed processor stays live at reduced rate: the run completes
/// later than the healthy twin, the φ-accrual observer sees the peer as
/// Degraded (gray ground truth confirms), and nobody is ever declared
/// dead. The whole run is bit-deterministic.
#[test]
fn slowdown_stretches_completion_and_phi_holds_degraded() {
    let set = example2();
    let healthy = SimConfig::new(Protocol::DirectSync)
        .with_instances(40)
        .with_transport(detector(true));
    let slowed = healthy.clone().with_faults(slow_p0());
    let a = simulate(&set, &healthy).unwrap();
    let b = simulate(&set, &slowed).unwrap();
    assert_eq!(b.fault_stats.slowdowns, 1, "{:?}", b.fault_stats);
    assert!(
        b.end_time > a.end_time,
        "an 8x slowdown must stretch completion ({} vs {})",
        b.end_time.ticks(),
        a.end_time.ticks()
    );
    let dt = &b.detect_stats;
    assert!(dt.degradeds > 0, "φ must notice the slow peer: {dt:?}");
    assert!(dt.gray_hits > 0, "ground truth must confirm gray: {dt:?}");
    assert_eq!(dt.deads, 0, "nobody actually died: {dt:?}");
    assert_eq!(dt.false_deads, 0, "{dt:?}");
    assert!(b.reached_target, "the horizon must absorb the stretch");
    let c = simulate(&set, &slowed).unwrap();
    assert_eq!(b.events, c.events);
    assert_eq!(b.detect_stats, c.detect_stats);
    assert_eq!(b.fault_stats, c.fault_stats);
}

/// The same slow peer under the fixed suspect/dead cliff: every stretched
/// heartbeat gap walks the observer to a false Dead verdict on a node
/// that is up the whole time — the headline gray-failure mode — while
/// the adaptive arm holds at Degraded with zero false deads.
#[test]
fn fixed_cliff_false_deads_where_phi_survives() {
    let set = example2();
    let run = |phi: bool| {
        simulate(
            &set,
            &SimConfig::new(Protocol::DirectSync)
                .with_instances(40)
                .with_transport(detector(phi))
                .with_faults(slow_p0()),
        )
        .unwrap()
        .detect_stats
    };
    let fixed = run(false);
    let adaptive = run(true);
    assert!(fixed.false_deads > 0, "{fixed:?}");
    assert!(
        fixed.false_dead_gray > 0,
        "the false deads must be charged to gray ground truth: {fixed:?}"
    );
    assert_eq!(adaptive.false_deads, 0, "{adaptive:?}");
    assert!(
        adaptive.false_deads < fixed.false_deads,
        "adaptive must strictly dominate fixed on false deads"
    );
}

/// A stall freezes the node but, unlike a crash of the same span, kills
/// nothing: every in-flight job survives with its partial execution and
/// every instance completes.
#[test]
fn stall_preserves_in_flight_work_unlike_a_crash() {
    let set = example2();
    let base = SimConfig::new(Protocol::DirectSync).with_instances(40);
    let stalled = base
        .clone()
        .with_faults(FaultConfig::gray_only(GrayConfig::new().with_stalls(
            StallSchedule::Explicit(vec![
                vec![StallWindow {
                    at: t(50),
                    span: d(120),
                }],
                Vec::new(),
            ]),
        )));
    let crashed = base.clone().with_faults(FaultConfig::explicit(vec![
        vec![CrashWindow {
            at: t(50),
            restart_delay: d(120),
        }],
        Vec::new(),
    ]));
    let healthy = simulate(&set, &base).unwrap();
    let a = simulate(&set, &stalled).unwrap();
    let b = simulate(&set, &crashed).unwrap();
    assert_eq!(a.fault_stats.stalls, 1, "{:?}", a.fault_stats);
    assert_eq!(a.fault_stats.killed_jobs, 0, "{:?}", a.fault_stats);
    assert_eq!(a.fault_stats.cancelled_instances, 0, "{:?}", a.fault_stats);
    assert!(
        b.fault_stats.killed_jobs > 0,
        "the crash twin must kill the in-flight job: {:?}",
        b.fault_stats
    );
    assert!(
        a.end_time > healthy.end_time,
        "the freeze must delay completion"
    );
    assert!(a.reached_target, "the drain-aware horizon must absorb it");
    for task in set.tasks() {
        assert!(
            a.metrics.task(task.id()).completed() >= 40,
            "a stall must not lose instances ({})",
            task.id()
        );
    }
}

/// A degraded link is live but lossy: heartbeats crossing it pay extra
/// latency and a seeded drop rate, both counted — and the run stays
/// bit-deterministic under the per-frame jitter stream.
#[test]
fn degraded_link_inflates_latency_and_drops_frames() {
    let set = example2();
    let window = |from: usize, to: usize| LinkDegradeWindow {
        at: t(20),
        span: d(2_000),
        from,
        to,
        extra_latency: d(3),
        jitter: d(2),
        drop_permille: 400,
    };
    let cfg = SimConfig::new(Protocol::ReleaseGuard)
        .with_instances(60)
        .with_transport(detector(true))
        .with_faults(FaultConfig::gray_only(
            GrayConfig::new()
                .with_links(LinkSchedule::Explicit(vec![window(0, 1), window(1, 0)]))
                .with_frame_seed(29),
        ));
    let a = simulate(&set, &cfg).unwrap();
    let fs = &a.fault_stats;
    assert_eq!(fs.link_degrades, 2, "{fs:?}");
    assert!(fs.gray_dropped_heartbeats > 0, "{fs:?}");
    assert!(fs.gray_extra_latency_ticks > 0, "{fs:?}");
    let b = simulate(&set, &cfg).unwrap();
    assert_eq!(a.events, b.events);
    assert_eq!(a.fault_stats, b.fault_stats);
    assert_eq!(a.detect_stats, b.detect_stats);
}

/// Flapping bursts resolve into ordinary crash/recover cycles: the full
/// crash machinery (kill, backlog, recovery) applies to every cycle.
#[test]
fn flapping_resolves_into_crash_recover_cycles() {
    let set = example2();
    let out = simulate(
        &set,
        &SimConfig::new(Protocol::DirectSync)
            .with_instances(40)
            .with_faults(FaultConfig::gray_only(GrayConfig::new().with_flaps(
                FlapSchedule::Explicit(vec![
                    vec![FlapBurst {
                        at: t(30),
                        cycles: 3,
                        down: d(10),
                        up: d(40),
                    }],
                    Vec::new(),
                ]),
            ))),
    )
    .unwrap();
    assert_eq!(out.fault_stats.crashes, 3, "{:?}", out.fault_stats);
    assert_eq!(out.fault_stats.recoveries, 3, "{:?}", out.fault_stats);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Gray knobs in their neutral position are exact no-ops: empty
    /// explicit schedules for every persona (and any frame seed) leave
    /// every protocol's schedule bit-identical on the ideal path and on
    /// the transport-plus-detector path alike.
    #[test]
    fn neutral_gray_knobs_are_bit_identical(
        proto_idx in 0usize..4,
        instances in 5u64..25,
        frame_seed in 0u64..u64::MAX,
    ) {
        let set = example2();
        let n = set.num_processors();
        let protocol = Protocol::ALL[proto_idx];
        let neutral = GrayConfig::new()
            .with_slow(SlowSchedule::Explicit(vec![Vec::new(); n]))
            .with_stalls(StallSchedule::Explicit(vec![Vec::new(); n]))
            .with_links(LinkSchedule::Explicit(Vec::new()))
            .with_flaps(FlapSchedule::Explicit(vec![Vec::new(); n]))
            .with_frame_seed(frame_seed);
        prop_assert!(!neutral.is_inert(), "explicit empties are armed but neutral");

        // Ideal path.
        let plain = SimConfig::new(protocol)
            .with_instances(instances)
            .with_trace();
        let a = simulate(&set, &plain).unwrap();
        let b = simulate(
            &set,
            &plain.clone().with_faults(FaultConfig::gray_only(neutral.clone())),
        )
        .unwrap();
        prop_assert_eq!(&a.trace, &b.trace, "{:?}", protocol);
        prop_assert_eq!(a.events, b.events, "{:?}", protocol);

        // Transport + fixed-detector path: heartbeats, suspicion timers
        // and retransmissions all run; the neutral gray domain must not
        // perturb a single draw or delivery.
        let detected = plain.clone().with_transport(detector(false));
        let c = simulate(&set, &detected).unwrap();
        let e = simulate(
            &set,
            &detected.clone().with_faults(FaultConfig::gray_only(neutral)),
        )
        .unwrap();
        prop_assert_eq!(&c.trace, &e.trace, "{:?}", protocol);
        prop_assert_eq!(c.events, e.events, "{:?}", protocol);
        prop_assert_eq!(c.detect_stats, e.detect_stats, "{:?}", protocol);
    }
}
