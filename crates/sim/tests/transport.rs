//! Integration tests for the endpoint-driven reliable signaling stack:
//! ack/retransmit transport, heartbeat failure detection and graceful
//! degradation — plus the equivalence guarantees that keep the ideal
//! path bit-for-bit unchanged when the transport is disabled.

use proptest::prelude::*;
use rtsync_core::examples::{example1, example2};
use rtsync_core::protocol::Protocol;
use rtsync_core::time::{Dur, Time};
use rtsync_sim::engine::{simulate, SimConfig};
use rtsync_sim::nonideal::{ChannelModel, NonidealConfig};
use rtsync_sim::{
    CrashWindow, Degradation, DetectorConfig, FaultConfig, TransportConfig, ViolationKind,
};

fn d(x: i64) -> Dur {
    Dur::from_ticks(x)
}

/// A transport over a perfect zero-latency channel with instant acks
/// reproduces the ideal schedule exactly: same releases, completions and
/// executed segments, for every protocol.
#[test]
fn perfect_transport_reproduces_ideal_schedule() {
    for set in [example1(), example2()] {
        for protocol in Protocol::ALL {
            let ideal_cfg = SimConfig::new(protocol).with_instances(20).with_trace();
            let routed_cfg = ideal_cfg
                .clone()
                .with_channel(ChannelModel::constant(Dur::ZERO))
                .with_transport(TransportConfig::new(d(4)));
            let ideal = simulate(&set, &ideal_cfg).unwrap();
            let routed = simulate(&set, &routed_cfg).unwrap();
            let (it, rt) = (ideal.trace.unwrap(), routed.trace.unwrap());
            for task in set.tasks() {
                for sub in task.subtasks() {
                    assert_eq!(
                        it.releases_of(sub.id()),
                        rt.releases_of(sub.id()),
                        "{protocol:?} {} releases",
                        sub.id()
                    );
                    assert_eq!(
                        it.completions_of(sub.id()),
                        rt.completions_of(sub.id()),
                        "{protocol:?} {} completions",
                        sub.id()
                    );
                }
            }
            for p in 0..set.num_processors() {
                let proc = rtsync_core::task::ProcessorId::new(p);
                assert_eq!(it.segments_on(proc), rt.segments_on(proc), "{protocol:?}");
            }
            assert!(routed.violations.is_empty(), "{protocol:?}");
            // Every frame acked on first transmission: no retries, no dups.
            let ts = &routed.transport_stats;
            assert_eq!(ts.retransmissions, 0, "{protocol:?}");
            assert_eq!(ts.gave_up, 0, "{protocol:?}");
            assert_eq!(ts.dup_deliveries, 0, "{protocol:?}");
            assert_eq!(ts.dup_acks, 0, "{protocol:?}");
            if protocol != Protocol::PhaseModification {
                assert!(ts.sent > 0, "{protocol:?} signals ride the transport");
                assert_eq!(ts.delivered, ts.sent, "{protocol:?}");
                assert_eq!(ts.acks, ts.sent, "{protocol:?}");
            }
        }
    }
}

/// Transport runs are seeded end to end: identical configs (lossy
/// channel, crashes, detector) give bit-identical outcomes.
#[test]
fn transport_runs_are_deterministic() {
    let set = example2();
    let channel = ChannelModel::uniform(Dur::ZERO, d(3))
        .with_seed(42)
        .with_endpoint_drops(0.4)
        .with_duplicates(0.2);
    let faults = FaultConfig::explicit(vec![vec![CrashWindow {
        at: Time::from_ticks(150),
        restart_delay: d(300),
    }]]);
    let cfg = SimConfig::new(Protocol::ReleaseGuard)
        .with_instances(40)
        .with_trace()
        .with_channel(channel)
        .with_faults(faults)
        .with_transport(
            TransportConfig::new(d(4))
                .with_ack_drops(0.1)
                .with_seed(7)
                .with_detector(DetectorConfig::new(d(10))),
        );
    let a = simulate(&set, &cfg).unwrap();
    let b = simulate(&set, &cfg).unwrap();
    assert_eq!(a.trace, b.trace);
    assert_eq!(a.events, b.events);
    assert_eq!(a.transport_stats, b.transport_stats);
    assert_eq!(a.detect_stats, b.detect_stats);
    assert_eq!(a.degradations, b.degradations);
    assert_eq!(a.violations, b.violations);
}

/// With an unbounded retry budget, heavy random loss (drops on both the
/// data and the ack direction) loses nothing: every instance resolves,
/// no `SignalLost` is ever reported.
#[test]
fn unbounded_retries_survive_heavy_loss() {
    let set = example2();
    for protocol in Protocol::ALL {
        let channel = ChannelModel::constant(d(1))
            .with_seed(11)
            .with_endpoint_drops(0.7);
        let out = simulate(
            &set,
            &SimConfig::new(protocol)
                .with_instances(50)
                .with_channel(channel)
                .with_transport(TransportConfig::new(d(3)).with_ack_drops(0.3).with_seed(5)),
        )
        .unwrap();
        assert!(out.reached_target, "{protocol:?}");
        assert!(
            out.violations.is_empty(),
            "{protocol:?}: {:?}",
            out.violations
        );
        assert_eq!(out.transport_stats.gave_up, 0, "{protocol:?}");
        assert_eq!(out.metrics.total_lost(), 0, "{protocol:?}");
        if protocol != Protocol::PhaseModification {
            assert!(out.transport_stats.retransmissions > 0, "{protocol:?}");
            // Frames still in flight when the target is reached stay
            // unclosed; nothing is ever delivered that was not sent.
            assert!(
                out.transport_stats.delivered <= out.transport_stats.sent,
                "{protocol:?}"
            );
            assert!(out.transport_stats.delivered > 0, "{protocol:?}");
        }
    }
}

/// A bounded retry budget under total loss abandons every frame: each
/// abandonment is a `SignalLost` violation plus a structured
/// `SignalAbandoned` degradation event, and the doomed instances are
/// resolved so the run still terminates.
#[test]
fn bounded_budget_abandons_under_total_loss() {
    let set = example2();
    let out = simulate(
        &set,
        &SimConfig::new(Protocol::DirectSync)
            .with_instances(20)
            .with_channel(
                ChannelModel::constant(d(1))
                    .with_endpoint_drops(1.0)
                    .with_seed(3),
            )
            .with_transport(TransportConfig::new(d(2)).with_retry_budget(3)),
    )
    .unwrap();
    let ts = &out.transport_stats;
    assert!(ts.gave_up > 0);
    assert_eq!(ts.delivered, 0, "total loss delivers nothing");
    // Budget 3 = original + 3 retries per abandoned frame; frames still
    // mid-schedule when the run stops add a few more.
    assert!(ts.retransmissions >= 3 * ts.gave_up);
    let lost = out
        .violations
        .iter()
        .filter(|v| v.kind == ViolationKind::SignalLost)
        .count() as u64;
    assert_eq!(lost, ts.gave_up);
    let abandoned = out
        .degradations
        .iter()
        .filter(|e| matches!(e.kind, Degradation::SignalAbandoned { .. }))
        .count() as u64;
    assert_eq!(abandoned, ts.gave_up);
    assert!(out.metrics.total_lost() > 0);
}

/// The detector sees a long crash for what it is — no false positives —
/// and RG/MPM keep releasing from local information while the
/// predecessor's host is down; DS has no local release rule and stalls.
#[test]
fn detector_drives_degraded_releases_through_a_crash() {
    let set = example2();
    // Crash long enough for the detector (period 10, dead after 60) to
    // declare death and force releases, short enough that the run is
    // still going when the node comes back — so revival is observed too.
    let crash = || {
        FaultConfig::explicit(vec![vec![CrashWindow {
            at: Time::from_ticks(200),
            restart_delay: d(150),
        }]])
    };
    for protocol in [Protocol::ReleaseGuard, Protocol::ModifiedPhaseModification] {
        let out = simulate(
            &set,
            &SimConfig::new(protocol)
                .with_instances(80)
                .with_channel(
                    ChannelModel::constant(d(1))
                        .with_endpoint_drops(0.3)
                        .with_seed(7),
                )
                .with_faults(crash())
                .with_transport(
                    TransportConfig::new(d(4)).with_detector(DetectorConfig::new(d(10))),
                ),
        )
        .unwrap();
        let ds = &out.detect_stats;
        assert!(ds.deads >= 1, "{protocol:?} declared the crashed node dead");
        assert_eq!(ds.false_deads, 0, "{protocol:?}");
        assert_eq!(ds.false_positive_rate(), Some(0.0), "{protocol:?}");
        assert!(
            ds.forced_releases > 0,
            "{protocol:?} released without the lost signals"
        );
        // RG absorbs both the outage and the recovery backlog cleanly.
        // MPM's recovery burst overloads its timers (a pre-existing
        // ReleaseAll artifact, present without any transport); the
        // transport itself must still never lose a signal.
        if protocol == Protocol::ReleaseGuard {
            assert!(
                out.violations.is_empty(),
                "{protocol:?}: {:?}",
                out.violations
            );
        } else {
            assert!(
                !out.violations
                    .iter()
                    .any(|v| v.kind == ViolationKind::SignalLost),
                "{protocol:?}"
            );
        }
        assert!(out.degradations.iter().any(|e| matches!(
            e.kind,
            Degradation::PeerDead {
                false_positive: false,
                ..
            }
        )));
        assert!(out
            .degradations
            .iter()
            .any(|e| matches!(e.kind, Degradation::ForcedRelease { .. })));
        assert!(
            out.degradations
                .iter()
                .any(|e| matches!(e.kind, Degradation::PeerRevived { .. })),
            "{protocol:?} noticed the recovery"
        );
    }
    // DS: detection fires but there is no fallback to force releases.
    let out = simulate(
        &set,
        &SimConfig::new(Protocol::DirectSync)
            .with_instances(50)
            .with_channel(ChannelModel::constant(d(1)))
            .with_faults(crash())
            .with_transport(TransportConfig::new(d(4)).with_detector(DetectorConfig::new(d(10)))),
    )
    .unwrap();
    assert!(out.detect_stats.deads >= 1);
    assert_eq!(out.detect_stats.forced_releases, 0);
}

/// A healthy network with sane thresholds never raises a suspicion.
#[test]
fn quiet_network_has_no_false_positives() {
    let set = example2();
    let out = simulate(
        &set,
        &SimConfig::new(Protocol::ReleaseGuard)
            .with_instances(60)
            .with_transport(TransportConfig::new(d(4)).with_detector(DetectorConfig::new(d(10)))),
    )
    .unwrap();
    let ds = &out.detect_stats;
    assert!(ds.heartbeats_sent > 0);
    assert_eq!(ds.suspects, 0);
    assert_eq!(ds.deads, 0);
    assert_eq!(ds.false_positive_rate(), None);
    assert!(out.degradations.is_empty());
}

/// Thresholds shorter than the heartbeat period manufacture false
/// positives on a perfectly healthy system — and the ground-truth
/// accounting calls every one of them out.
#[test]
fn aggressive_thresholds_produce_accounted_false_positives() {
    let set = example2();
    let detector = DetectorConfig::new(d(40))
        .with_thresholds(d(10), d(20))
        .with_degradation(false);
    let out = simulate(
        &set,
        &SimConfig::new(Protocol::ReleaseGuard)
            .with_instances(40)
            .with_transport(TransportConfig::new(d(4)).with_detector(detector)),
    )
    .unwrap();
    let ds = &out.detect_stats;
    assert!(ds.false_suspects > 0, "{ds:?}");
    assert!(ds.false_deads > 0, "{ds:?}");
    assert_eq!(ds.false_suspects, ds.suspects);
    assert_eq!(ds.false_deads, ds.deads);
    assert_eq!(ds.false_positive_rate(), Some(1.0));
    // Degradation disabled: detection alone must not touch the schedule.
    assert_eq!(ds.forced_releases, 0);
    assert!(out.violations.is_empty());
}

/// The deadline watchdog trips exactly when measured end-to-end misses
/// occur (threshold 1), and stays quiet on a clean run.
#[test]
fn watchdog_trips_track_deadline_misses() {
    let set = example2();
    // With threshold 1, trips fire exactly when measured misses exist
    // (RG's deferred releases can miss deadlines even on an ideal run —
    // the paper's worst-case-EER trade-off — so assert the iff, not
    // zero misses).
    let clean = simulate(
        &set,
        &SimConfig::new(Protocol::ReleaseGuard)
            .with_instances(40)
            .with_transport(
                TransportConfig::new(d(4))
                    .with_detector(DetectorConfig::new(d(10)).with_watchdog(1)),
            ),
    )
    .unwrap();
    assert_eq!(
        clean.detect_stats.watchdog_trips == 0,
        clean.metrics.total_deadline_misses() == 0
    );
    // Heavy loss stretches releases past deadlines: trips must follow.
    let lossy = simulate(
        &set,
        &SimConfig::new(Protocol::DirectSync)
            .with_instances(60)
            .with_channel(
                ChannelModel::constant(d(1))
                    .with_endpoint_drops(0.8)
                    .with_seed(13),
            )
            .with_transport(
                TransportConfig::new(d(6))
                    .with_detector(DetectorConfig::new(d(10)).with_watchdog(1)),
            ),
    )
    .unwrap();
    assert!(
        lossy.metrics.total_deadline_misses() > 0,
        "80% loss with RTO 6 must miss deadlines on example2"
    );
    assert!(lossy.detect_stats.watchdog_trips > 0);
    assert!(lossy
        .degradations
        .iter()
        .any(|e| matches!(e.kind, Degradation::WatchdogTrip { .. })));
}

fn crash_strategy() -> impl Strategy<Value = Vec<Vec<CrashWindow>>> {
    prop::collection::vec(prop::collection::vec((0i64..300, 1i64..80), 0..2), 2..=2).prop_map(
        |procs| {
            procs
                .into_iter()
                .map(|ws| {
                    ws.into_iter()
                        .map(|(at, dt)| CrashWindow {
                            at: Time::from_ticks(at),
                            restart_delay: d(dt),
                        })
                        .collect()
                })
                .collect()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Acceptance property: transport-enabled under random drops with an
    /// unbounded retry budget loses zero instances on a crash-free system,
    /// for every protocol.
    #[test]
    fn random_drops_lose_nothing_with_unbounded_budget(
        drop_p in 0.0f64..0.6,
        ack_p in 0.0f64..0.3,
        seed in 0u64..u64::MAX,
        timeout in 1i64..8,
        proto_idx in 0usize..4,
    ) {
        let set = example2();
        let protocol = Protocol::ALL[proto_idx];
        let channel = ChannelModel::constant(d(1))
            .with_seed(seed)
            .with_endpoint_drops(drop_p);
        let out = simulate(
            &set,
            &SimConfig::new(protocol)
                .with_instances(25)
                .with_channel(channel)
                .with_transport(
                    TransportConfig::new(d(timeout))
                        .with_ack_drops(ack_p)
                        .with_seed(seed ^ 0x9e3779b97f4a7c15),
                ),
        )
        .unwrap();
        prop_assert!(out.reached_target, "{protocol:?}");
        prop_assert_eq!(out.metrics.total_lost(), 0, "{:?}", protocol);
        prop_assert_eq!(out.transport_stats.gave_up, 0, "{:?}", protocol);
        prop_assert!(out.violations.is_empty(), "{protocol:?}: {:?}", out.violations);
    }

    /// Under random drops *and* random crashes, an unbounded retry budget
    /// never reports `SignalLost`: the journaled send queue rides out
    /// sender outages, receiver outages are covered by retransmission.
    #[test]
    fn random_drops_and_crashes_never_lose_signals(
        drop_p in 0.0f64..0.7,
        seed in 0u64..u64::MAX,
        timeout in 1i64..8,
        proto_idx in 0usize..4,
        windows in crash_strategy(),
        with_detector in prop::bool::ANY,
    ) {
        let set = example2();
        let protocol = Protocol::ALL[proto_idx];
        let channel = ChannelModel::constant(d(1))
            .with_seed(seed)
            .with_endpoint_drops(drop_p);
        let mut transport = TransportConfig::new(d(timeout)).with_seed(seed.rotate_left(17));
        if with_detector {
            transport = transport.with_detector(DetectorConfig::new(d(10)));
        }
        let out = simulate(
            &set,
            &SimConfig::new(protocol)
                .with_instances(25)
                .with_channel(channel)
                .with_faults(FaultConfig::explicit(windows))
                .with_transport(transport),
        )
        .unwrap();
        prop_assert_eq!(out.transport_stats.gave_up, 0, "{:?}", protocol);
        prop_assert!(
            !out.violations.iter().any(|v| v.kind == ViolationKind::SignalLost),
            "{protocol:?}: {:?}",
            out.violations
        );
    }

    /// Equivalence guarantee, randomized: with the transport disabled the
    /// engine takes the exact legacy path — a default `NonidealConfig`
    /// run is bit-for-bit identical to the plain engine for any protocol
    /// and instance target.
    #[test]
    fn transport_disabled_path_is_bit_identical(
        proto_idx in 0usize..4,
        instances in 5u64..30,
    ) {
        let set = example2();
        let protocol = Protocol::ALL[proto_idx];
        let plain = SimConfig::new(protocol)
            .with_instances(instances)
            .with_trace();
        let nonideal = plain.clone().with_nonideal(NonidealConfig::default());
        let a = simulate(&set, &plain).unwrap();
        let b = simulate(&set, &nonideal).unwrap();
        prop_assert_eq!(a.trace, b.trace, "{:?}", protocol);
        prop_assert_eq!(a.events, b.events, "{:?}", protocol);
        prop_assert_eq!(a.transport_stats.sent, 0);
        prop_assert_eq!(b.detect_stats.heartbeats_sent, 0);
    }
}
