//! Per-protocol release controllers.
//!
//! A [`Controller`] is the protocol-specific brain the engine consults at
//! each scheduling event:
//!
//! * **DS** releases a successor the instant its predecessor completes.
//! * **PM** does nothing here — all its releases are clock-driven
//!   (`TimedRelease` events the engine schedules from [`PmPhases`]).
//! * **MPM** schedules a timer `R_{i,j}` after every release; the timer —
//!   not the completion — triggers the successor.
//! * **RG** runs one [`ReleaseGuard`] per non-first subtask, deferring
//!   early signals and freeing them at guard expiry or processor idle
//!   points.

use std::collections::VecDeque;

use rtsync_core::analysis::sa_pm::PmBounds;
use rtsync_core::release_guard::{GuardDecision, ReleaseGuard};
use rtsync_core::task::{ProcessorId, SubtaskId, TaskSet};
use rtsync_core::time::Time;

use crate::event::EventKind;
use crate::job::JobId;

/// Dense numbering of every subtask in a task set.
#[derive(Clone, Debug)]
pub struct FlatIndex {
    offsets: Vec<usize>,
    total: usize,
}

impl FlatIndex {
    /// Builds the numbering for `set`.
    pub fn new(set: &TaskSet) -> FlatIndex {
        let mut offsets = Vec::with_capacity(set.num_tasks());
        let mut total = 0;
        for task in set.tasks() {
            offsets.push(total);
            total += task.chain_len();
        }
        FlatIndex { offsets, total }
    }

    /// The dense index of a subtask.
    pub fn of(&self, id: SubtaskId) -> usize {
        self.offsets[id.task().index()] + id.index()
    }

    /// Total number of subtasks.
    pub fn len(&self) -> usize {
        self.total
    }

    /// `true` if the set has no subtasks (impossible for validated sets).
    #[allow(dead_code)] // companion to `len`, exercised by tests
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }
}

/// What to do about the successor of a just-completed job.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum CompletionDirective {
    /// Release the successor instance now.
    ReleaseSuccessor,
    /// The successor was deferred; (re)schedule its guard expiry.
    ScheduleExpiry { due: Time, gen: u64 },
    /// Nothing to do (clock- or timer-driven protocols).
    Nothing,
}

#[derive(Debug)]
pub(crate) struct GuardSlot {
    guard: ReleaseGuard,
    /// Instance numbers of deferred releases, FIFO, in lock-step with the
    /// guard's internal pending queue.
    instances: VecDeque<u64>,
    proc: ProcessorId,
    subtask: SubtaskId,
}

/// Protocol-specific release logic (see module docs).
#[derive(Debug)]
pub(crate) enum Controller {
    Ds,
    Pm,
    Mpm {
        bounds: PmBounds,
    },
    Rg {
        guards: Vec<GuardSlot>,
        flat: FlatIndex,
        slot_of: Vec<Option<usize>>,
        /// Apply rule 2 (idle points reset guards). Disabling it is the
        /// DESIGN.md ablation quantifying how much of RG's short average
        /// EER time comes from rule 2.
        apply_rule2: bool,
    },
}

impl Controller {
    pub(crate) fn ds() -> Controller {
        Controller::Ds
    }

    pub(crate) fn pm() -> Controller {
        Controller::Pm
    }

    pub(crate) fn mpm(bounds: PmBounds) -> Controller {
        Controller::Mpm { bounds }
    }

    pub(crate) fn rg(set: &TaskSet, apply_rule2: bool) -> Controller {
        Controller::rg_with_guard_periods(set, apply_rule2, |_, period| period)
    }

    /// RG with per-subtask guard periods derived from the nominal task
    /// period — the nonideal engine passes the host clock's drift scaling,
    /// so a guard armed for one *local* period elapses correctly in true
    /// time. Guards measure durations only, so clock offsets never appear.
    pub(crate) fn rg_with_guard_periods(
        set: &TaskSet,
        apply_rule2: bool,
        period_of: impl Fn(ProcessorId, rtsync_core::time::Dur) -> rtsync_core::time::Dur,
    ) -> Controller {
        let flat = FlatIndex::new(set);
        let mut guards = Vec::new();
        let mut slot_of = vec![None; flat.len()];
        for task in set.tasks() {
            for sub in task.subtasks().iter().skip(1) {
                slot_of[flat.of(sub.id())] = Some(guards.len());
                guards.push(GuardSlot {
                    guard: ReleaseGuard::new(period_of(sub.processor(), task.period())),
                    instances: VecDeque::new(),
                    proc: sub.processor(),
                    subtask: sub.id(),
                });
            }
        }
        Controller::Rg {
            guards,
            flat,
            slot_of,
            apply_rule2,
        }
    }

    /// The predecessor of `successor` just completed at `now`.
    ///
    /// Degraded releases enter through here too: when the failure
    /// detector declares a predecessor's host dead, the engine offers the
    /// forced release as if the (lost) completion signal had arrived, so
    /// RG's rule-1 spacing still governs releases made from local
    /// information alone.
    pub(crate) fn on_predecessor_complete(
        &mut self,
        successor: JobId,
        now: Time,
    ) -> CompletionDirective {
        match self {
            Controller::Ds => CompletionDirective::ReleaseSuccessor,
            Controller::Pm | Controller::Mpm { .. } => CompletionDirective::Nothing,
            Controller::Rg {
                guards,
                flat,
                slot_of,
                ..
            } => {
                let slot = &mut guards[slot_of[flat.of(successor.subtask())]
                    .expect("non-first subtasks have guards")];
                match slot.guard.offer(now) {
                    GuardDecision::ReleaseNow => CompletionDirective::ReleaseSuccessor,
                    GuardDecision::DeferUntil(_) | GuardDecision::Queued => {
                        slot.instances.push_back(successor.instance());
                        let (due, gen) = slot
                            .guard
                            .next_expiry()
                            .expect("deferred instance has an expiry");
                        CompletionDirective::ScheduleExpiry { due, gen }
                    }
                }
            }
        }
    }

    /// `job` was just released at `now`. Returns the (at most one) event
    /// to schedule: an MPM timer, or a refreshed RG guard expiry. Every
    /// protocol arm produces zero or one event, so an `Option` keeps the
    /// engine's release path allocation-free.
    pub(crate) fn on_release(
        &mut self,
        set: &TaskSet,
        job: JobId,
        now: Time,
    ) -> Option<(Time, EventKind)> {
        match self {
            Controller::Ds | Controller::Pm => None,
            Controller::Mpm { bounds } => {
                // Timer drives the successor; none needed for chain tails.
                let task = set.task(job.task());
                if task.successor_of(job.subtask()).is_some() {
                    Some((
                        now + bounds.response(job.subtask()),
                        EventKind::MpmTimer { job },
                    ))
                } else {
                    None
                }
            }
            Controller::Rg {
                guards,
                flat,
                slot_of,
                ..
            } => {
                let slot_idx = slot_of[flat.of(job.subtask())]?; // first subtasks are unguarded
                let slot = &mut guards[slot_idx];
                slot.guard.on_release(now); // rule 1
                                            // Rule 1 bumped the generation: the queue head (if any)
                                            // needs a fresh expiry.
                slot.guard.next_expiry().map(|(due, gen)| {
                    (
                        due,
                        EventKind::GuardExpiry {
                            subtask: job.subtask(),
                            gen,
                        },
                    )
                })
            }
        }
    }

    /// `now` is an idle point of `proc` (rule 2). Appends deferred jobs
    /// that become releasable right now to `freed`, in deterministic
    /// subtask order. The caller owns (and clears) the buffer so the
    /// engine's idle-point path stays allocation-free in steady state.
    pub(crate) fn on_idle_point(&mut self, proc: ProcessorId, now: Time, freed: &mut Vec<JobId>) {
        if let Controller::Rg {
            guards,
            apply_rule2: true,
            ..
        } = self
        {
            for slot in guards.iter_mut().filter(|s| s.proc == proc) {
                if slot.guard.on_idle_point(now) {
                    let instance = slot
                        .instances
                        .pop_front()
                        .expect("instance queue in lock-step with guard");
                    freed.push(JobId::new(slot.subtask, instance));
                }
            }
        }
    }

    /// Fail-stop crash of `proc` (RG only): every guard hosted there loses
    /// its deferred signals — they lived in the crashed scheduler's memory.
    /// Returns the dropped jobs per guarded subtask, in deterministic
    /// subtask order, so the engine can account each as cancelled. Guard
    /// values are left for [`Controller::on_recovery`] to re-derive.
    pub(crate) fn on_crash(&mut self, proc: ProcessorId) -> Vec<JobId> {
        match self {
            Controller::Rg { guards, .. } => {
                let mut dropped = Vec::new();
                for slot in guards.iter_mut().filter(|s| s.proc == proc) {
                    slot.guard.on_crash();
                    for instance in slot.instances.drain(..) {
                        dropped.push(JobId::new(slot.subtask, instance));
                    }
                }
                dropped
            }
            _ => Vec::new(),
        }
    }

    /// `proc` rejoined at `now` (RG only): re-initialize each hosted guard
    /// from `now` — the recovery instant is an idle point (the node holds
    /// no released-incomplete instances), so rule 2 justifies `g ← now`.
    pub(crate) fn on_recovery(&mut self, proc: ProcessorId, now: Time) {
        if let Controller::Rg { guards, .. } = self {
            for slot in guards.iter_mut().filter(|s| s.proc == proc) {
                slot.guard.reinitialize(now);
                debug_assert!(slot.instances.is_empty(), "cleared at crash");
            }
        }
    }

    /// `true` when `subtask`'s guard (RG only) already queues a deferred
    /// release for `instance`. The degraded-release path checks this
    /// before forcing: when the real signal beat the death verdict and
    /// sits deferred behind rule 1, forcing the same instance would
    /// double-queue it and the duplicate would pop out of order later.
    pub(crate) fn has_deferred(&self, subtask: SubtaskId, instance: u64) -> bool {
        match self {
            Controller::Rg {
                guards,
                flat,
                slot_of,
                ..
            } => slot_of[flat.of(subtask)].is_some_and(|i| guards[i].instances.contains(&instance)),
            _ => false,
        }
    }

    /// A guard-expiry timer fired. Returns the job to release, if the timer
    /// is still current.
    pub(crate) fn on_guard_expiry(
        &mut self,
        subtask: SubtaskId,
        gen: u64,
        now: Time,
    ) -> Option<JobId> {
        match self {
            Controller::Rg {
                guards,
                flat,
                slot_of,
                ..
            } => {
                let slot = &mut guards[slot_of[flat.of(subtask)]?];
                if slot.guard.take_due(now, gen) {
                    let instance = slot
                        .instances
                        .pop_front()
                        .expect("instance queue in lock-step with guard");
                    Some(JobId::new(subtask, instance))
                } else {
                    None
                }
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtsync_core::examples::example2;
    use rtsync_core::task::TaskId;
    use rtsync_core::time::Dur;

    fn t(x: i64) -> Time {
        Time::from_ticks(x)
    }

    fn sid(task: usize, j: usize) -> SubtaskId {
        SubtaskId::new(TaskId::new(task), j)
    }

    /// Out-param wrapper so assertions read naturally.
    fn idle_point(c: &mut Controller, proc: usize, now: Time) -> Vec<JobId> {
        let mut freed = Vec::new();
        c.on_idle_point(ProcessorId::new(proc), now, &mut freed);
        freed
    }

    #[test]
    fn flat_index_is_dense_and_ordered() {
        let set = example2();
        let f = FlatIndex::new(&set);
        assert_eq!(f.len(), 4);
        assert!(!f.is_empty());
        assert_eq!(f.of(sid(0, 0)), 0);
        assert_eq!(f.of(sid(1, 0)), 1);
        assert_eq!(f.of(sid(1, 1)), 2);
        assert_eq!(f.of(sid(2, 0)), 3);
    }

    #[test]
    fn ds_always_releases() {
        let mut c = Controller::ds();
        let succ = JobId::new(sid(1, 1), 0);
        assert_eq!(
            c.on_predecessor_complete(succ, t(4)),
            CompletionDirective::ReleaseSuccessor
        );
        assert!(c.on_release(&example2(), succ, t(4)).is_none());
        assert!(idle_point(&mut c, 1, t(9)).is_empty());
    }

    #[test]
    fn pm_controller_is_inert() {
        let mut c = Controller::pm();
        let succ = JobId::new(sid(1, 1), 0);
        assert_eq!(
            c.on_predecessor_complete(succ, t(4)),
            CompletionDirective::Nothing
        );
        assert!(c.on_release(&example2(), succ, t(4)).is_none());
    }

    #[test]
    fn mpm_schedules_timer_only_for_non_tail_subtasks() {
        use rtsync_core::analysis::{sa_pm::analyze_pm, AnalysisConfig};
        let set = example2();
        let bounds = analyze_pm(&set, &AnalysisConfig::default()).unwrap();
        let mut c = Controller::mpm(bounds);
        // T1.0 has a successor: timer at release + R_{1,0} = 0 + 4.
        let head = JobId::new(sid(1, 0), 0);
        let (at, kind) = c.on_release(&set, head, t(0)).expect("timer scheduled");
        assert_eq!(at, t(4));
        assert!(matches!(kind, EventKind::MpmTimer { job } if job == head));
        // Chain tails schedule nothing.
        let tail = JobId::new(sid(1, 1), 0);
        assert!(c.on_release(&set, tail, t(4)).is_none());
        assert_eq!(
            c.on_predecessor_complete(tail, t(2)),
            CompletionDirective::Nothing
        );
    }

    #[test]
    fn rg_defers_and_frees_at_idle_point() {
        // Figure 7 flow on T1.1 (the paper's T2,2; period 6 on P1).
        let set = example2();
        let mut c = Controller::rg(&set, true);
        let j0 = JobId::new(sid(1, 1), 0);
        // First signal at 4: release immediately.
        assert_eq!(
            c.on_predecessor_complete(j0, t(4)),
            CompletionDirective::ReleaseSuccessor
        );
        assert!(c.on_release(&set, j0, t(4)).is_none()); // rule 1, no pending
                                                         // Second signal at 8: deferred until 10.
        let j1 = JobId::new(sid(1, 1), 1);
        match c.on_predecessor_complete(j1, t(8)) {
            CompletionDirective::ScheduleExpiry { due, .. } => assert_eq!(due, t(10)),
            other => panic!("{other:?}"),
        }
        // Idle point at 9 on P1 frees it.
        assert_eq!(idle_point(&mut c, 1, t(9)), vec![j1]);
        assert!(c.on_release(&set, j1, t(9)).is_none());
        // The stale expiry at 10 must not double-release.
        assert_eq!(c.on_guard_expiry(sid(1, 1), 0, t(10)), None);
    }

    #[test]
    fn rg_guard_expiry_releases_head() {
        let set = example2();
        let mut c = Controller::rg(&set, true);
        let j0 = JobId::new(sid(1, 1), 0);
        assert_eq!(
            c.on_predecessor_complete(j0, t(0)),
            CompletionDirective::ReleaseSuccessor
        );
        let _ = c.on_release(&set, j0, t(0)); // guard = 6
        let j1 = JobId::new(sid(1, 1), 1);
        let (due, gen) = match c.on_predecessor_complete(j1, t(3)) {
            CompletionDirective::ScheduleExpiry { due, gen } => (due, gen),
            other => panic!("{other:?}"),
        };
        assert_eq!(due, t(6));
        assert_eq!(c.on_guard_expiry(sid(1, 1), gen, due), Some(j1));
        // Release re-arms rule 1.
        let _ = c.on_release(&set, j1, t(6));
    }

    #[test]
    fn rg_clumped_signals_release_one_per_window() {
        let set = example2();
        let mut c = Controller::rg(&set, true);
        let sub = sid(1, 1);
        let j = |m| JobId::new(sub, m);
        assert_eq!(
            c.on_predecessor_complete(j(0), t(0)),
            CompletionDirective::ReleaseSuccessor
        );
        let _ = c.on_release(&set, j(0), t(0)); // guard 6
                                                // Three clumped signals.
        let e1 = c.on_predecessor_complete(j(1), t(1));
        let CompletionDirective::ScheduleExpiry { due: d1, gen: g1 } = e1 else {
            panic!("{e1:?}")
        };
        assert_eq!(d1, t(6));
        let e2 = c.on_predecessor_complete(j(2), t(2));
        // Queued behind: expiry rescheduled (new generation, same due).
        let CompletionDirective::ScheduleExpiry { due: d2, gen: g2 } = e2 else {
            panic!("{e2:?}")
        };
        assert_eq!(d2, t(6));
        assert_ne!(g1, g2);
        // Old-generation timer is stale; new one fires.
        assert_eq!(c.on_guard_expiry(sub, g1, t(6)), None);
        assert_eq!(c.on_guard_expiry(sub, g2, t(6)), Some(j(1)));
        // guard 12, one pending
        let (at, kind) = c.on_release(&set, j(1), t(6)).expect("expiry rescheduled");
        assert_eq!(at, t(12));
        let EventKind::GuardExpiry { subtask, gen } = kind else {
            panic!("{kind:?}")
        };
        assert_eq!(subtask, sub);
        assert_eq!(c.on_guard_expiry(sub, gen, t(12)), Some(j(2)));
    }

    #[test]
    fn rg_idle_point_only_touches_its_processor() {
        let set = example2();
        let mut c = Controller::rg(&set, true);
        let j1 = JobId::new(sid(1, 1), 0);
        let _ = c.on_predecessor_complete(j1, t(0));
        let _ = c.on_release(&set, j1, t(0)); // guard 6 on P1
        let j2 = JobId::new(sid(1, 1), 1);
        let _ = c.on_predecessor_complete(j2, t(1)); // deferred
                                                     // Idle point on P0 must not free a P1 deferral.
        assert!(idle_point(&mut c, 0, t(2)).is_empty());
        assert_eq!(idle_point(&mut c, 1, t(2)), vec![j2]);
    }

    #[test]
    fn rg_crash_drops_deferrals_and_recovery_reopens_the_guard() {
        let set = example2();
        let mut c = Controller::rg(&set, true);
        let sub = sid(1, 1); // hosted on P1
        let j = |m| JobId::new(sub, m);
        let _ = c.on_predecessor_complete(j(0), t(0));
        let _ = c.on_release(&set, j(0), t(0)); // guard 6
        let CompletionDirective::ScheduleExpiry { gen, .. } = c.on_predecessor_complete(j(1), t(2))
        else {
            panic!("deferred")
        };
        // Crash on the other processor touches nothing.
        assert!(c.on_crash(ProcessorId::new(0)).is_empty());
        // Crash on P1 drops the deferred instance and stales its timer.
        assert_eq!(c.on_crash(ProcessorId::new(1)), vec![j(1)]);
        assert_eq!(c.on_guard_expiry(sub, gen, t(6)), None);
        // Recovery at 8: guard re-initialized to now, so the next signal
        // releases immediately even though rule 1 had armed g = 6 → the
        // pre-crash guard value is gone.
        c.on_recovery(ProcessorId::new(1), t(8));
        assert_eq!(
            c.on_predecessor_complete(j(2), t(8)),
            CompletionDirective::ReleaseSuccessor
        );
    }

    #[test]
    fn rg_guard_period_matches_task_period() {
        // Guards inherit the parent task's period, exercised indirectly:
        // release at 0 defers the next signal until exactly period 6.
        let set = example2();
        let mut c = Controller::rg(&set, true);
        let j0 = JobId::new(sid(1, 1), 0);
        let _ = c.on_predecessor_complete(j0, t(0));
        let _ = c.on_release(&set, j0, t(0));
        match c.on_predecessor_complete(JobId::new(sid(1, 1), 1), t(5)) {
            CompletionDirective::ScheduleExpiry { due, .. } => {
                assert_eq!(due - t(0), Time::from_ticks(6) - Time::ZERO);
                assert_eq!(due, t(6));
            }
            other => panic!("{other:?}"),
        }
        let _ = Dur::ZERO; // keep the import exercised
    }
}
