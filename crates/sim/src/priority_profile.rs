//! Effective-priority profiles for the Highest Locker protocol.
//!
//! While a job executes a critical section on resource `R` it runs at
//! `R`'s priority ceiling. A [`PriorityProfile`] captures this as a
//! piecewise-constant function of the job's *executed* ticks: ceilings
//! apply on `[cs.start, cs.end)`, the base priority elsewhere. Locks are
//! acquired by *executing* up to the section start — a job that has never
//! run holds nothing and must queue at its **base** priority (queueing
//! fresh jobs at a ceiling would let arbitrarily many lower-priority jobs
//! jump a queue and would break the blocked-at-most-once analysis).

use rtsync_core::task::{Priority, Subtask, TaskSet};
use rtsync_core::time::Dur;

/// Piecewise-constant effective priority over executed ticks.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PriorityProfile {
    /// The subtask's own (no-locks-held) priority — what a never-started
    /// job queues at.
    base: Priority,
    /// `(offset, priority)`: the job runs at `priority` from `offset`
    /// until the next point. The first point is at offset 0.
    points: Vec<(Dur, Priority)>,
}

impl PriorityProfile {
    /// A constant profile (no critical sections).
    pub fn flat(priority: Priority) -> PriorityProfile {
        PriorityProfile {
            base: priority,
            points: vec![(Dur::ZERO, priority)],
        }
    }

    /// Builds the HLP profile of a subtask: its base priority, raised to
    /// each resource's ceiling inside the corresponding critical section
    /// (only where the ceiling is strictly higher than the base).
    pub fn for_subtask(set: &TaskSet, sub: &Subtask) -> PriorityProfile {
        let base = sub.priority();
        let mut points = vec![(Dur::ZERO, base)];
        let mut sections: Vec<_> = sub.critical_sections().to_vec();
        sections.sort_by_key(|cs| cs.start);
        for cs in sections {
            let ceiling = set
                .resource_ceiling(cs.resource)
                .expect("a resource with a section has a ceiling");
            if !ceiling.is_higher_than(base) {
                continue; // the base already dominates; no visible change
            }
            push_point(&mut points, cs.start, ceiling);
            if cs.end() < sub.execution() {
                push_point(&mut points, cs.end(), base);
            }
        }
        PriorityProfile { base, points }
    }

    /// The subtask's own priority with no locks held — the level a job
    /// that has never executed queues at.
    pub fn base(&self) -> Priority {
        self.base
    }

    /// The effective priority after `executed` ticks of execution.
    pub fn at(&self, executed: Dur) -> Priority {
        self.points
            .iter()
            .take_while(|&&(off, _)| off <= executed)
            .last()
            .expect("profiles start at offset 0")
            .1
    }

    /// The next offset strictly beyond `executed` where the effective
    /// priority changes, if any.
    pub fn next_change_after(&self, executed: Dur) -> Option<Dur> {
        self.points
            .iter()
            .map(|&(off, _)| off)
            .find(|&off| off > executed)
    }

    /// `true` if the profile never changes (no effective sections).
    pub fn is_flat(&self) -> bool {
        self.points.len() == 1
    }
}

fn push_point(points: &mut Vec<(Dur, Priority)>, offset: Dur, priority: Priority) {
    if let Some(last) = points.last_mut() {
        if last.0 == offset {
            last.1 = priority;
            // Overwriting may have made this point redundant against the
            // one before it (back-to-back sections on one resource).
            if points.len() >= 2 && points[points.len() - 2].1 == priority {
                points.pop();
            }
            return;
        }
        if last.1 == priority {
            return; // no visible change
        }
    }
    points.push((offset, priority));
}

#[cfg(test)]
impl PriorityProfile {
    /// Test helper: append a change point.
    pub(crate) fn push_change(&mut self, offset: Dur, priority: Priority) {
        push_point(&mut self.points, offset, priority);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtsync_core::task::{SubtaskId, TaskId, TaskSet};

    fn d(x: i64) -> Dur {
        Dur::from_ticks(x)
    }

    fn system() -> TaskSet {
        TaskSet::builder(1)
            .task(d(50))
            .subtask(0, d(5), Priority::new(0))
            .critical_section(0, d(1), d(2))
            .finish_task()
            .task(d(80))
            .subtask(0, d(10), Priority::new(2))
            .critical_section(0, d(2), d(6))
            .finish_task()
            .build()
            .unwrap()
    }

    #[test]
    fn flat_profile() {
        let p = PriorityProfile::flat(Priority::new(3));
        assert!(p.is_flat());
        assert_eq!(p.base(), Priority::new(3));
        assert_eq!(p.at(d(0)), Priority::new(3));
        assert_eq!(p.at(d(100)), Priority::new(3));
        assert_eq!(p.next_change_after(d(0)), None);
    }

    #[test]
    fn low_priority_user_is_raised_inside_its_section() {
        let set = system();
        let low = set.subtask(SubtaskId::new(TaskId::new(1), 0));
        let p = PriorityProfile::for_subtask(&set, low);
        assert_eq!(p.base(), Priority::new(2));
        assert_eq!(p.at(d(0)), Priority::new(2));
        assert_eq!(p.at(d(1)), Priority::new(2));
        // Ceiling (priority 0, from the high-priority user) on [2, 8).
        assert_eq!(p.at(d(2)), Priority::new(0));
        assert_eq!(p.at(d(7)), Priority::new(0));
        assert_eq!(p.at(d(8)), Priority::new(2));
        assert_eq!(p.next_change_after(d(0)), Some(d(2)));
        assert_eq!(p.next_change_after(d(2)), Some(d(8)));
        assert_eq!(p.next_change_after(d(8)), None);
        assert!(!p.is_flat());
    }

    #[test]
    fn ceiling_equal_to_base_is_invisible() {
        // The high-priority subtask IS the ceiling: its own section changes
        // nothing.
        let set = system();
        let high = set.subtask(SubtaskId::new(TaskId::new(0), 0));
        let p = PriorityProfile::for_subtask(&set, high);
        assert!(p.is_flat());
    }

    #[test]
    fn section_at_offset_zero_and_to_the_end() {
        let set = TaskSet::builder(1)
            .task(d(50))
            .subtask(0, d(4), Priority::new(0))
            .critical_section(0, d(1), d(1))
            .finish_task()
            .task(d(80))
            .subtask(0, d(6), Priority::new(1))
            .critical_section(0, d(0), d(6)) // spans the whole execution
            .finish_task()
            .build()
            .unwrap();
        let low = set.subtask(SubtaskId::new(TaskId::new(1), 0));
        let p = PriorityProfile::for_subtask(&set, low);
        // Raised from offset 0, never returns to base (section ends at c).
        assert_eq!(p.at(d(0)), Priority::new(0));
        assert_eq!(p.at(d(5)), Priority::new(0));
        assert_eq!(p.next_change_after(d(0)), None);
        // The base stays the subtask's own priority even though a section
        // overwrites the offset-0 effective level: a never-started job
        // holds no lock and must queue at its base.
        assert_eq!(p.base(), Priority::new(1));
    }

    #[test]
    fn adjacent_sections_merge_cleanly() {
        let set = TaskSet::builder(1)
            .task(d(50))
            .subtask(0, d(2), Priority::new(0))
            .critical_section(0, d(0), d(1))
            .finish_task()
            .task(d(80))
            .subtask(0, d(10), Priority::new(1))
            .critical_section(0, d(2), d(2))
            .critical_section(0, d(4), d(2)) // back-to-back on the same resource
            .finish_task()
            .build()
            .unwrap();
        let low = set.subtask(SubtaskId::new(TaskId::new(1), 0));
        let p = PriorityProfile::for_subtask(&set, low);
        assert_eq!(p.at(d(3)), Priority::new(0));
        assert_eq!(p.at(d(5)), Priority::new(0));
        assert_eq!(p.at(d(6)), Priority::new(1));
        // One raise, one drop: intermediate "drop then raise at the same
        // offset" collapses.
        assert_eq!(p.next_change_after(d(2)), Some(d(6)));
    }
}
