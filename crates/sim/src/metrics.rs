//! Per-task end-to-end response-time statistics collected during a
//! simulation: average/extreme EER times, output jitter, deadline misses.
//!
//! The *EER time* of instance `m` of a task is the completion time of its
//! last subtask's instance `m` minus the release time of its first
//! subtask's instance `m`. The *output jitter* is the difference between
//! the EER times of two consecutive instances (§2 of the paper).

use rtsync_core::task::{SubtaskId, TaskId};
use rtsync_core::time::{Dur, Time};

use crate::histogram::EerHistogram;

/// Accumulated statistics for one task.
#[derive(Clone, Default, Debug)]
pub struct TaskStats {
    released: u64,
    completed: u64,
    measured: u64,
    eer_sum: i128,
    eer_max: Option<Dur>,
    eer_min: Option<Dur>,
    max_output_jitter: Dur,
    deadline_misses: u64,
    orphan_completions: u64,
    lost: u64,
    last_eer: Option<Dur>,
    histogram: EerHistogram,
    /// First-subtask release times, indexed by instance.
    first_release: Vec<Time>,
}

impl TaskStats {
    /// Instances of the first subtask released so far.
    pub fn released(&self) -> u64 {
        self.released
    }

    /// End-to-end completed instances.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Mean EER time over *measured* completions (those past the warm-up
    /// window), `None` before the first one.
    pub fn avg_eer(&self) -> Option<f64> {
        (self.measured > 0).then(|| self.eer_sum as f64 / self.measured as f64)
    }

    /// Completions contributing to the EER statistics (excludes warm-up).
    pub fn measured(&self) -> u64 {
        self.measured
    }

    /// Largest observed EER time.
    pub fn max_eer(&self) -> Option<Dur> {
        self.eer_max
    }

    /// Smallest observed EER time.
    pub fn min_eer(&self) -> Option<Dur> {
        self.eer_min
    }

    /// Largest observed difference between consecutive EER times.
    pub fn max_output_jitter(&self) -> Dur {
        self.max_output_jitter
    }

    /// End-to-end deadline misses among completed instances.
    pub fn deadline_misses(&self) -> u64 {
        self.deadline_misses
    }

    /// Completions of instances whose first subtask was never released —
    /// only possible when a protocol violated precedence (PM under
    /// sporadic sources). Excluded from the EER statistics.
    pub fn orphan_completions(&self) -> u64 {
        self.orphan_completions
    }

    /// End-to-end instances that can never complete: a processor crash
    /// killed (or an overload policy dropped) some subtask instance on the
    /// critical path. Lost instances are excluded from the EER mean — an
    /// instance with no completion has no response time — but are first-
    /// class in availability accounting: see
    /// [`TaskStats::miss_or_loss_ratio`]. Always zero in fault-free runs.
    pub fn lost(&self) -> u64 {
        self.lost
    }

    /// `(deadline misses + lost instances) / (measured + lost)`: the
    /// fraction of accounted instances that failed to produce a timely
    /// result. Equals the plain miss ratio when nothing was lost; `None`
    /// when nothing was accounted at all.
    pub fn miss_or_loss_ratio(&self) -> Option<f64> {
        let denom = self.measured + self.lost;
        (denom > 0).then(|| (self.deadline_misses + self.lost) as f64 / denom as f64)
    }

    /// The recorded release time of instance `instance` of the first
    /// subtask, if it was released.
    pub fn first_release_time(&self, instance: u64) -> Option<Time> {
        self.first_release.get(instance as usize).copied()
    }

    /// An upper bound (within 6.25%) on the `q`-quantile of measured EER
    /// times, `q ∈ (0, 1]` — e.g. `eer_quantile(0.99)` for the p99.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `(0, 1]`.
    pub fn eer_quantile(&self, q: f64) -> Option<Dur> {
        self.histogram.quantile(q)
    }
}

/// Per-subtask response statistics (release of the subtask's own instance
/// to its completion — the paper's `R_{i,j}` observed empirically).
#[derive(Clone, Copy, Default, Debug)]
pub struct SubtaskStats {
    completed: u64,
    response_sum: i128,
    response_max: Option<Dur>,
}

impl SubtaskStats {
    /// Completed instances of this subtask.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Mean observed response time, `None` before the first completion.
    pub fn avg_response(&self) -> Option<f64> {
        (self.completed > 0).then(|| self.response_sum as f64 / self.completed as f64)
    }

    /// Largest observed response time.
    pub fn max_response(&self) -> Option<Dur> {
        self.response_max
    }
}

/// Statistics for every task in a simulated system.
#[derive(Clone, Debug)]
pub struct Metrics {
    tasks: Vec<TaskStats>,
    /// Flat per-subtask rows, `[task][chain index]`.
    subtasks: Vec<Vec<SubtaskStats>>,
}

impl Metrics {
    /// Creates empty metrics with one row per task and the given chain
    /// lengths.
    pub fn with_chains(chain_lens: &[usize]) -> Metrics {
        Metrics {
            tasks: vec![TaskStats::default(); chain_lens.len()],
            subtasks: chain_lens
                .iter()
                .map(|&n| vec![SubtaskStats::default(); n])
                .collect(),
        }
    }

    /// Creates empty metrics for `num_tasks` single-subtask tasks (tests;
    /// the engine uses [`Metrics::with_chains`]).
    pub fn new(num_tasks: usize) -> Metrics {
        Metrics::with_chains(&vec![1; num_tasks])
    }

    /// One subtask's observed response statistics.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn subtask(&self, id: SubtaskId) -> &SubtaskStats {
        &self.subtasks[id.task().index()][id.index()]
    }

    /// Records one subtask instance's response time (its own release to
    /// its own completion).
    pub fn record_subtask_response(&mut self, id: SubtaskId, response: Dur) {
        let s = &mut self.subtasks[id.task().index()][id.index()];
        s.completed += 1;
        s.response_sum += response.ticks() as i128;
        s.response_max = Some(s.response_max.map_or(response, |m| m.max(response)));
    }

    /// One task's statistics.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn task(&self, id: TaskId) -> &TaskStats {
        &self.tasks[id.index()]
    }

    /// All per-task statistics, indexed by [`TaskId::index`].
    pub fn tasks(&self) -> &[TaskStats] {
        &self.tasks
    }

    /// The smallest completed-instance count over all tasks (used by the
    /// engine's stop criterion).
    pub fn min_completed(&self) -> u64 {
        self.tasks.iter().map(|t| t.completed).min().unwrap_or(0)
    }

    /// The smallest *resolved* instance count over all tasks, where an
    /// instance is resolved once it either completed end-to-end or was
    /// declared lost to a crash/overload drop. This is the stop criterion
    /// under faults: a killed instance never completes, and waiting for it
    /// would spin the engine to the horizon. Identical to
    /// [`Metrics::min_completed`] when nothing was lost.
    pub fn min_resolved(&self) -> u64 {
        self.tasks
            .iter()
            .map(|t| t.completed + t.lost)
            .min()
            .unwrap_or(0)
    }

    /// Total deadline misses across tasks.
    pub fn total_deadline_misses(&self) -> u64 {
        self.tasks.iter().map(|t| t.deadline_misses).sum()
    }

    /// Total lost instances across tasks (see [`TaskStats::lost`]).
    pub fn total_lost(&self) -> u64 {
        self.tasks.iter().map(|t| t.lost).sum()
    }

    /// Declares instance `instance` of `task` lost: some subtask instance
    /// on its critical path was killed by a crash or dropped by an
    /// overload policy, so the end-to-end completion will never happen.
    pub fn record_instance_lost(&mut self, task: TaskId) {
        self.tasks[task.index()].lost += 1;
    }

    /// Records the release of instance `instance` of a task's **first**
    /// subtask.
    ///
    /// # Panics
    ///
    /// Panics if instances are recorded out of order (engine bug).
    pub fn record_first_release(&mut self, task: TaskId, instance: u64, time: Time) {
        let stats = &mut self.tasks[task.index()];
        assert_eq!(
            stats.first_release.len() as u64,
            instance,
            "first-subtask releases of {task} out of order"
        );
        stats.first_release.push(time);
        stats.released += 1;
    }

    /// Records the end-to-end completion of instance `instance` of a task
    /// (its **last** subtask completed at `time`); `deadline` is the task's
    /// relative deadline for miss accounting.
    ///
    /// A completion whose first-subtask release was never recorded (only
    /// possible after a precedence violation) is counted as an *orphan*
    /// and excluded from the EER statistics. With `record_stats: false`
    /// (warm-up instances) the completion counts toward `completed` but
    /// not toward the EER/jitter/miss statistics.
    ///
    /// Returns `Some(missed)` for a measured completion — whether this
    /// instance missed its end-to-end deadline — and `None` for orphan or
    /// warm-up completions that carry no miss verdict. The engine's
    /// deadline watchdog feeds on this return value.
    pub fn record_task_completion(
        &mut self,
        task: TaskId,
        instance: u64,
        time: Time,
        deadline: Dur,
        record_stats: bool,
    ) -> Option<bool> {
        let stats = &mut self.tasks[task.index()];
        let Some(&released) = stats.first_release.get(instance as usize) else {
            stats.orphan_completions += 1;
            return None;
        };
        let eer = time - released;
        stats.completed += 1;
        if !record_stats {
            return None;
        }
        stats.measured += 1;
        stats.eer_sum += eer.ticks() as i128;
        stats.histogram.record(eer);
        stats.eer_max = Some(stats.eer_max.map_or(eer, |m| m.max(eer)));
        stats.eer_min = Some(stats.eer_min.map_or(eer, |m| m.min(eer)));
        if let Some(prev) = stats.last_eer {
            let jitter = if eer >= prev { eer - prev } else { prev - eer };
            stats.max_output_jitter = stats.max_output_jitter.max(jitter);
        }
        stats.last_eer = Some(eer);
        let missed = eer > deadline;
        if missed {
            stats.deadline_misses += 1;
        }
        Some(missed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(x: i64) -> Time {
        Time::from_ticks(x)
    }

    fn d(x: i64) -> Dur {
        Dur::from_ticks(x)
    }

    #[test]
    fn eer_accounting() {
        let mut m = Metrics::new(2);
        let task = TaskId::new(0);
        m.record_first_release(task, 0, t(0));
        m.record_first_release(task, 1, t(10));
        m.record_task_completion(task, 0, t(7), d(8), true);
        m.record_task_completion(task, 1, t(13), d(8), true);
        let s = m.task(task);
        assert_eq!(s.released(), 2);
        assert_eq!(s.completed(), 2);
        assert_eq!(s.avg_eer(), Some(5.0)); // (7 + 3) / 2
        assert_eq!(s.max_eer(), Some(d(7)));
        assert_eq!(s.min_eer(), Some(d(3)));
        assert_eq!(s.max_output_jitter(), d(4));
        assert_eq!(s.deadline_misses(), 0);
    }

    #[test]
    fn deadline_misses_counted_strictly() {
        let mut m = Metrics::new(1);
        let task = TaskId::new(0);
        m.record_first_release(task, 0, t(0));
        m.record_first_release(task, 1, t(10));
        let hit = m.record_task_completion(task, 0, t(8), d(8), true); // exactly met
        let miss = m.record_task_completion(task, 1, t(19), d(8), true); // missed
        assert_eq!(hit, Some(false));
        assert_eq!(miss, Some(true));
        assert_eq!(m.task(task).deadline_misses(), 1);
        assert_eq!(m.total_deadline_misses(), 1);
    }

    #[test]
    fn subtask_response_accounting() {
        let mut m = Metrics::with_chains(&[2]);
        let id = SubtaskId::new(TaskId::new(0), 1);
        m.record_subtask_response(id, d(4));
        m.record_subtask_response(id, d(6));
        let s = m.subtask(id);
        assert_eq!(s.completed(), 2);
        assert_eq!(s.avg_response(), Some(5.0));
        assert_eq!(s.max_response(), Some(d(6)));
        let other = m.subtask(SubtaskId::new(TaskId::new(0), 0));
        assert_eq!(other.completed(), 0);
        assert_eq!(other.avg_response(), None);
        assert_eq!(other.max_response(), None);
    }

    #[test]
    fn quantiles_from_measured_completions() {
        let mut m = Metrics::new(1);
        let task = TaskId::new(0);
        for i in 0..10u64 {
            m.record_first_release(task, i, t(i as i64 * 100));
            // EER times 1..=10.
            m.record_task_completion(task, i, t(i as i64 * 100 + i as i64 + 1), d(50), true);
        }
        let s = m.task(task);
        assert_eq!(s.eer_quantile(1.0), Some(d(10)));
        assert_eq!(s.eer_quantile(0.1), Some(d(1)));
        let median = s.eer_quantile(0.5).unwrap();
        assert!(median >= d(5) && median <= d(6), "{median}");
        let empty = Metrics::new(1);
        assert_eq!(empty.task(task).eer_quantile(0.5), None);
    }

    #[test]
    fn warmup_completions_count_but_do_not_measure() {
        let mut m = Metrics::new(1);
        let task = TaskId::new(0);
        m.record_first_release(task, 0, t(0));
        m.record_first_release(task, 1, t(10));
        let warmup = m.record_task_completion(task, 0, t(9), d(5), false); // warm-up, missed
        assert_eq!(warmup, None, "warm-up completions carry no miss verdict");
        m.record_task_completion(task, 1, t(13), d(5), true);
        let s = m.task(task);
        assert_eq!(s.completed(), 2);
        assert_eq!(s.measured(), 1);
        assert_eq!(s.avg_eer(), Some(3.0));
        assert_eq!(s.max_eer(), Some(d(3)));
        // The warm-up miss is not counted.
        assert_eq!(s.deadline_misses(), 0);
    }

    #[test]
    fn min_completed_over_tasks() {
        let mut m = Metrics::new(2);
        m.record_first_release(TaskId::new(0), 0, t(0));
        m.record_task_completion(TaskId::new(0), 0, t(1), d(5), true);
        assert_eq!(m.min_completed(), 0);
        m.record_first_release(TaskId::new(1), 0, t(0));
        m.record_task_completion(TaskId::new(1), 0, t(2), d(5), true);
        assert_eq!(m.min_completed(), 1);
    }

    #[test]
    fn lost_instances_resolve_but_do_not_complete() {
        let mut m = Metrics::new(2);
        let t0 = TaskId::new(0);
        let t1 = TaskId::new(1);
        m.record_first_release(t0, 0, t(0));
        m.record_task_completion(t0, 0, t(7), d(8), true);
        m.record_first_release(t1, 0, t(0));
        m.record_instance_lost(t1);
        assert_eq!(m.min_completed(), 0, "t1 never completed");
        assert_eq!(m.min_resolved(), 1, "but its instance is resolved");
        assert_eq!(m.total_lost(), 1);
        let s = m.task(t1);
        assert_eq!(s.lost(), 1);
        assert_eq!(s.avg_eer(), None, "lost instances carry no EER");
        assert_eq!(s.miss_or_loss_ratio(), Some(1.0));
        // A task with one timely completion and one loss: ratio 1/2.
        m.record_first_release(t1, 1, t(10));
        m.record_task_completion(t1, 1, t(13), d(8), true);
        assert_eq!(m.task(t1).miss_or_loss_ratio(), Some(0.5));
        assert_eq!(m.task(t0).miss_or_loss_ratio(), Some(0.0));
        assert_eq!(m.task(t0).first_release_time(0), Some(t(0)));
        assert_eq!(m.task(t0).first_release_time(9), None);
    }

    #[test]
    fn empty_stats_are_none() {
        let m = Metrics::new(1);
        let s = m.task(TaskId::new(0));
        assert_eq!(s.avg_eer(), None);
        assert_eq!(s.max_eer(), None);
        assert_eq!(s.min_eer(), None);
        assert_eq!(s.max_output_jitter(), Dur::ZERO);
        assert_eq!(m.tasks().len(), 1);
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn out_of_order_release_panics() {
        let mut m = Metrics::new(1);
        m.record_first_release(TaskId::new(0), 1, t(0));
    }

    #[test]
    fn completion_without_release_counts_as_orphan() {
        let mut m = Metrics::new(1);
        let verdict = m.record_task_completion(TaskId::new(0), 0, t(1), d(5), true);
        assert_eq!(verdict, None, "orphans carry no miss verdict");
        let s = m.task(TaskId::new(0));
        assert_eq!(s.orphan_completions(), 1);
        assert_eq!(s.completed(), 0);
        assert_eq!(s.avg_eer(), None);
        assert_eq!(s.deadline_misses(), 0);
    }
}
