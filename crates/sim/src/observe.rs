//! Pluggable run-time observability for the simulation engine.
//!
//! The engine is generic over an [`Observer`] whose hooks fire at every
//! interesting point of a run: event dispatch, releases, completions,
//! executed slices, context switches and preemptions, idle-point
//! detection, Release-Guard decisions (guard blocks, rule-1 updates,
//! rule-2 releases), MPM timer arms/fires, and cross-processor
//! synchronization signals.
//!
//! Every hook has an empty `#[inline]` default, and the no-observer path
//! ([`crate::engine::simulate`]) is statically monomorphized over
//! [`NoopObserver`] — a zero-sized type whose calls compile away — so an
//! unobserved run is bit-for-bit and speed-identical to an engine without
//! this module.
//!
//! Two observers ship with the crate:
//!
//! - [`ProtocolCounters`] tallies what each protocol actually did
//!   (guard blocks and delay, sync interrupts, preemptions, …).
//! - [`EventLogObserver`] records a structured event log exportable as
//!   JSONL ([`EventLogObserver::to_jsonl`]) or Chrome trace-event JSON
//!   ([`EventLogObserver::to_chrome_trace`]) loadable in Perfetto /
//!   `chrome://tracing`, with one track per processor and flow arrows
//!   for cross-processor signals.
//!
//! # Examples
//!
//! ```
//! use rtsync_core::examples::example2;
//! use rtsync_core::protocol::Protocol;
//! use rtsync_core::time::Time;
//! use rtsync_sim::{simulate_observed, ProtocolCounters, SimConfig};
//!
//! let set = example2();
//! let cfg = SimConfig::new(Protocol::ReleaseGuard).with_horizon(Time::from_ticks(24));
//! let mut counters = ProtocolCounters::default();
//! simulate_observed(&set, &cfg, &mut counters)?;
//! println!("{counters}");
//! # Ok::<(), rtsync_sim::SimulateError>(())
//! ```

use std::collections::HashMap;
use std::fmt;
use std::fmt::Write as _;

use rtsync_core::protocol::Protocol;
use rtsync_core::task::{SubtaskId, TaskId, TaskSet};
use rtsync_core::time::{Dur, Time};

use crate::detect::Degradation;
use crate::engine::{Violation, ViolationKind};
use crate::event::EventKind;
use crate::histogram::SignedHistogram;
use crate::job::JobId;
use crate::processor::Processor;

/// End-of-instant engine state handed to [`Observer::on_sample`]: the
/// gauges a windowed telemetry recorder cannot reconstruct from discrete
/// hook events alone. Assembled only when [`Observer::wants_samples`]
/// returns `true`, so the unobserved engine never pays for it.
#[derive(Debug)]
pub struct EngineSample<'a> {
    /// The processors, for per-processor ready-queue backlog
    /// ([`Processor::backlog`]) and idle state.
    pub procs: &'a [Processor],
    /// Events parked in the event queue's near wheel.
    pub queue_near: usize,
    /// Events parked in the far-future overflow heap.
    pub queue_far: usize,
    /// Unacked frames across all transport sender windows (0 when the
    /// endpoint transport is off).
    pub transport_in_flight: usize,
    /// Detector census: ordered observer × subject pairs currently
    /// believed Alive (0 when no detector runs).
    pub peers_alive: u32,
    /// Pairs currently believed Degraded (φ-accrual mode only; the
    /// fixed-cliff detector has no such state and always reports 0).
    pub peers_degraded: u32,
    /// Pairs currently believed Suspect.
    pub peers_suspect: u32,
    /// Pairs currently believed Dead.
    pub peers_dead: u32,
}

/// Engine instrumentation hooks. Every method has an empty default, so an
/// implementation overrides only what it cares about. The engine is
/// monomorphized over the concrete observer type: with [`NoopObserver`]
/// every call site compiles to nothing.
#[allow(unused_variables)]
pub trait Observer {
    /// A run is starting on `set` under `protocol`. Called once, before
    /// any event fires; size per-task/per-processor state here.
    #[inline]
    fn on_run_start(&mut self, set: &TaskSet, protocol: Protocol) {}

    /// An event was popped from the queue and is about to be dispatched.
    #[inline]
    fn on_event(&mut self, now: Time, kind: &EventKind) {}

    /// `job` was released (became eligible to execute) on processor
    /// `proc`.
    #[inline]
    fn on_release(&mut self, now: Time, job: JobId, proc: usize) {}

    /// `job` finished executing on processor `proc`.
    #[inline]
    fn on_completion(&mut self, now: Time, job: JobId, proc: usize) {}

    /// Instance `instance` of `task` completed end to end with EER time
    /// `eer` (last-subtask completion minus first-subtask release).
    /// `measured` is `false` for warm-up instances, which are excluded
    /// from the EER statistics. Not called for orphan completions, whose
    /// first release was never recorded.
    #[inline]
    fn on_task_completion(
        &mut self,
        now: Time,
        task: TaskId,
        instance: u64,
        eer: Dur,
        measured: bool,
    ) {
    }

    /// Whether the engine should assemble end-of-instant
    /// [`EngineSample`]s for [`Observer::on_sample`]. The default `false`
    /// keeps the unobserved hot path from even gathering the sample:
    /// monomorphization folds the constant away, so the telemetry-off
    /// engine stays bit-for-bit (and instruction-for-instruction)
    /// identical.
    #[inline]
    fn wants_samples(&self) -> bool {
        false
    }

    /// End-of-instant state snapshot: queue depths, per-processor ready
    /// backlogs, transport window, detector census. Emitted after the
    /// dispatch flush of each distinct instant, and only when
    /// [`Observer::wants_samples`] returns `true`. The sample is
    /// read-only: observers can record it but never perturb the schedule.
    #[inline]
    fn on_sample(&mut self, now: Time, sample: &EngineSample<'_>) {}

    /// `job` occupied processor `proc` over `[start, end)`. Slices are
    /// maximal: consecutive ticks of the same job arrive merged.
    #[inline]
    fn on_slice(&mut self, proc: usize, job: JobId, start: Time, end: Time) {}

    /// Processor `proc` switched to `to` (from `from`, `None` if it was
    /// idle). Fires for every dispatch, including after a preemption.
    #[inline]
    fn on_context_switch(&mut self, now: Time, proc: usize, from: Option<JobId>, to: JobId) {}

    /// `preempted` was displaced mid-execution by the higher-priority
    /// `by` on processor `proc`.
    #[inline]
    fn on_preemption(&mut self, now: Time, proc: usize, preempted: JobId, by: JobId) {}

    /// Processor `proc` reached an idle point (no job running, no ready
    /// job with a release time at or before `now`) — the trigger for
    /// Release Guard's rule 2.
    #[inline]
    fn on_idle_point(&mut self, now: Time, proc: usize) {}

    /// Release Guard deferred the release of `job`: its guard is set to
    /// `due` and the job waits (rule 1 spacing).
    #[inline]
    fn on_guard_block(&mut self, now: Time, job: JobId, due: Time) {}

    /// Release Guard's rule 1 updated the guard of `subtask` at a
    /// release.
    #[inline]
    fn on_rule1_update(&mut self, now: Time, subtask: SubtaskId) {}

    /// Release Guard's rule 2 released the guard-blocked `job` early at
    /// an idle point.
    #[inline]
    fn on_rule2_release(&mut self, now: Time, job: JobId) {}

    /// The guard of `job` expired and the job was released (rule 1's
    /// deferred release firing on time).
    #[inline]
    fn on_guard_expiry_release(&mut self, now: Time, job: JobId) {}

    /// MPM armed the completion timer of `job`, to fire at `fire_at`.
    #[inline]
    fn on_mpm_timer_armed(&mut self, now: Time, job: JobId, fire_at: Time) {}

    /// MPM's timer for `job` fired; `overrun` is `true` if the job had
    /// not completed by then (the MPM overrun violation).
    #[inline]
    fn on_mpm_timer_fired(&mut self, now: Time, job: JobId, overrun: bool) {}

    /// A completion on processor `from` signalled the successor `job` on
    /// a different processor `to` — a synchronization interrupt in the
    /// §3.3 sense (DS, MPM and RG only; PM is signalless).
    #[inline]
    fn on_sync_interrupt(&mut self, now: Time, from: usize, to: usize, job: JobId) {}

    /// A synchronization signal for `job` entered the (nonideal) channel.
    #[inline]
    fn on_signal_send(&mut self, now: Time, job: JobId) {}

    /// A synchronization signal for `job` left the (nonideal) channel and
    /// was applied.
    #[inline]
    fn on_signal_deliver(&mut self, now: Time, job: JobId) {}

    /// The reliable transport (re)transmitted the frame carrying the
    /// signal for `job` with sequence number `seq`; `retransmit` is `true`
    /// for every copy after the first.
    #[inline]
    fn on_transport_send(&mut self, now: Time, job: JobId, seq: u64, retransmit: bool) {}

    /// An acknowledgement for frame `seq` reached the sender. `rtt` is the
    /// first-transmission-to-ack round trip for a fresh ack; a duplicate
    /// ack (`dup: true`) carries no round trip.
    #[inline]
    fn on_transport_ack(&mut self, now: Time, seq: u64, rtt: Option<Dur>, dup: bool) {}

    /// A heartbeat from processor `from` reached the failure detector on
    /// processor `to`.
    #[inline]
    fn on_heartbeat(&mut self, now: Time, from: usize, to: usize) {}

    /// A network partition opened: `island` marks, per processor, which
    /// side of the cut it landed on (the two truth values are the two
    /// islands). Cross-island traffic is severed until the heal.
    #[inline]
    fn on_partition_start(&mut self, now: Time, island: &[bool]) {}

    /// The current network partition healed; severed signals are replayed
    /// through the per-protocol recovery reconciliation.
    #[inline]
    fn on_partition_heal(&mut self, now: Time) {}

    /// A clock-synchronization round ran on processor `proc`: it settled
    /// the previous round's samples and sent a fresh batch of timestamped
    /// requests. Rounds on crashed processors are skipped and not
    /// reported.
    #[inline]
    fn on_sync_round(&mut self, now: Time, proc: usize) {}

    /// Marzullo intersection on processor `proc` produced an offset
    /// `estimate` (signed, encoded as a [`Dur`]) with half-width
    /// `uncertainty` — the achieved offset bound of that round.
    #[inline]
    fn on_sync_estimate(&mut self, now: Time, proc: usize, estimate: Dur, uncertainty: Dur) {}

    /// Processor `proc` corrected its clock by `step` (signed; clamped by
    /// the slew policy when one is configured). Fires only for nonzero
    /// corrections.
    #[inline]
    fn on_sync_correction(&mut self, now: Time, proc: usize, step: Dur) {}

    /// Oracle check of one settled sync round on processor `proc`: the
    /// Marzullo `estimate ± uncertainty` interval against the processor's
    /// `true_offset` (both signed, encoded as [`Dur`]). The bracket is
    /// honest iff `|estimate - true_offset| <= uncertainty`.
    #[inline]
    fn on_sync_bracket(
        &mut self,
        now: Time,
        proc: usize,
        estimate: Dur,
        uncertainty: Dur,
        true_offset: Dur,
    ) {
    }

    /// A timeserver persona on `responder` corrupted the sync response it
    /// just sent (adversarial mode only; the reference self-exchange is
    /// exempt).
    #[inline]
    fn on_sync_corrupted(&mut self, now: Time, responder: usize) {}

    /// A failure-detector transition or graceful-degradation action (see
    /// [`Degradation`]).
    #[inline]
    fn on_degradation(&mut self, now: Time, kind: &Degradation) {}

    /// Processor `proc` crashed (fail-stop); `killed` are the in-flight
    /// jobs (running or ready) that died with it, in job-id order.
    #[inline]
    fn on_crash(&mut self, now: Time, proc: usize, killed: &[JobId]) {}

    /// Processor `proc` recovered; its outage backlog was resolved into
    /// `released` releases and `dropped` drops under the overload policy.
    #[inline]
    fn on_recovery(&mut self, now: Time, proc: usize, released: u64, dropped: u64) {}

    /// Processor `proc` changed execution rate: `factor > 1` opens a
    /// slowdown window (every tick of service takes `factor` wall ticks),
    /// `factor == 1` restores full speed.
    #[inline]
    fn on_slowdown(&mut self, now: Time, proc: usize, factor: u32) {}

    /// Processor `proc` entered (`stalled: true`) or left a GC-pause-style
    /// stall: a full stop that, unlike a crash, keeps in-flight jobs and
    /// generation-stamped state.
    #[inline]
    fn on_stall(&mut self, now: Time, proc: usize, stalled: bool) {}

    /// The directed link `from → to` entered (`on: true`) or left a
    /// degradation window (inflated latency, jitter and drop rate on a
    /// live wire).
    #[inline]
    fn on_link_degrade(&mut self, now: Time, from: usize, to: usize, on: bool) {}

    /// A violation was recorded.
    #[inline]
    fn on_violation(&mut self, violation: &Violation) {}

    /// The run ended at `now` after dispatching `events` events.
    #[inline]
    fn on_run_end(&mut self, now: Time, events: u64) {}
}

/// The zero-sized do-nothing observer behind [`crate::engine::simulate`].
/// Monomorphization erases every hook call, keeping the unobserved engine
/// identical to one without observability.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NoopObserver;

impl Observer for NoopObserver {}

/// Fans every hook out to two observers, letting a single run feed e.g.
/// a [`ProtocolCounters`] and an [`EventLogObserver`] at once:
///
/// ```
/// use rtsync_core::examples::example2;
/// use rtsync_core::protocol::Protocol;
/// use rtsync_sim::{simulate_observed, EventLogObserver, ProtocolCounters, SimConfig, Tee};
///
/// let mut counters = ProtocolCounters::default();
/// let mut log = EventLogObserver::default();
/// simulate_observed(
///     &example2(),
///     &SimConfig::new(Protocol::DirectSync).with_instances(10),
///     &mut Tee(&mut counters, &mut log),
/// )?;
/// assert!(counters.events > 0 && !log.is_empty());
/// # Ok::<(), rtsync_sim::SimulateError>(())
/// ```
#[derive(Debug)]
pub struct Tee<'a, A, B>(pub &'a mut A, pub &'a mut B);

macro_rules! tee_hooks {
    ($($hook:ident($($arg:ident: $ty:ty),*);)*) => {
        impl<A: Observer, B: Observer> Observer for Tee<'_, A, B> {
            /// A tee wants samples as soon as either side does; a side
            /// that did not ask still receives them (its `on_sample`
            /// default is empty, so that costs nothing).
            #[inline]
            fn wants_samples(&self) -> bool {
                self.0.wants_samples() || self.1.wants_samples()
            }

            $(
                #[inline]
                fn $hook(&mut self, $($arg: $ty),*) {
                    self.0.$hook($($arg),*);
                    self.1.$hook($($arg),*);
                }
            )*
        }
    };
}

tee_hooks! {
    on_run_start(set: &TaskSet, protocol: Protocol);
    on_event(now: Time, kind: &EventKind);
    on_release(now: Time, job: JobId, proc: usize);
    on_completion(now: Time, job: JobId, proc: usize);
    on_task_completion(now: Time, task: TaskId, instance: u64, eer: Dur, measured: bool);
    on_sample(now: Time, sample: &EngineSample<'_>);
    on_slice(proc: usize, job: JobId, start: Time, end: Time);
    on_context_switch(now: Time, proc: usize, from: Option<JobId>, to: JobId);
    on_preemption(now: Time, proc: usize, preempted: JobId, by: JobId);
    on_idle_point(now: Time, proc: usize);
    on_guard_block(now: Time, job: JobId, due: Time);
    on_rule1_update(now: Time, subtask: SubtaskId);
    on_rule2_release(now: Time, job: JobId);
    on_guard_expiry_release(now: Time, job: JobId);
    on_mpm_timer_armed(now: Time, job: JobId, fire_at: Time);
    on_mpm_timer_fired(now: Time, job: JobId, overrun: bool);
    on_sync_interrupt(now: Time, from: usize, to: usize, job: JobId);
    on_signal_send(now: Time, job: JobId);
    on_signal_deliver(now: Time, job: JobId);
    on_transport_send(now: Time, job: JobId, seq: u64, retransmit: bool);
    on_transport_ack(now: Time, seq: u64, rtt: Option<Dur>, dup: bool);
    on_heartbeat(now: Time, from: usize, to: usize);
    on_partition_start(now: Time, island: &[bool]);
    on_partition_heal(now: Time);
    on_sync_round(now: Time, proc: usize);
    on_sync_estimate(now: Time, proc: usize, estimate: Dur, uncertainty: Dur);
    on_sync_correction(now: Time, proc: usize, step: Dur);
    on_sync_bracket(now: Time, proc: usize, estimate: Dur, uncertainty: Dur, true_offset: Dur);
    on_sync_corrupted(now: Time, responder: usize);
    on_degradation(now: Time, kind: &Degradation);
    on_crash(now: Time, proc: usize, killed: &[JobId]);
    on_recovery(now: Time, proc: usize, released: u64, dropped: u64);
    on_slowdown(now: Time, proc: usize, factor: u32);
    on_stall(now: Time, proc: usize, stalled: bool);
    on_link_degrade(now: Time, from: usize, to: usize, on: bool);
    on_violation(violation: &Violation);
    on_run_end(now: Time, events: u64);
}

/// Per-task tallies collected by [`ProtocolCounters`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TaskCounters {
    /// Subtask releases (jobs made eligible).
    pub releases: u64,
    /// Subtask completions.
    pub completions: u64,
    /// Releases deferred by a Release Guard (rule-1 spacing).
    pub guard_blocks: u64,
    /// Total time guard-blocked jobs waited before release.
    pub guard_delay_total: Dur,
    /// Longest single guard delay.
    pub guard_delay_max: Dur,
    /// Rule-1 guard updates (guard set at a release).
    pub rule1_updates: u64,
    /// Rule-2 early releases (guard reset at an idle point).
    pub rule2_releases: u64,
    /// On-time guard-expiry releases.
    pub guard_expiry_releases: u64,
    /// MPM completion timers armed.
    pub mpm_timer_arms: u64,
    /// MPM completion timers fired.
    pub mpm_timer_fires: u64,
    /// MPM timers that fired before their job completed.
    pub mpm_overruns: u64,
    /// Cross-processor synchronization interrupts targeting this task.
    pub sync_interrupts: u64,
}

impl Default for TaskCounters {
    fn default() -> TaskCounters {
        TaskCounters {
            releases: 0,
            completions: 0,
            guard_blocks: 0,
            guard_delay_total: Dur::ZERO,
            guard_delay_max: Dur::ZERO,
            rule1_updates: 0,
            rule2_releases: 0,
            guard_expiry_releases: 0,
            mpm_timer_arms: 0,
            mpm_timer_fires: 0,
            mpm_overruns: 0,
            sync_interrupts: 0,
        }
    }
}

/// Per-processor tallies collected by [`ProtocolCounters`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ProcCounters {
    /// Jobs displaced mid-execution by a higher-priority job.
    pub preemptions: u64,
    /// Dispatches (the processor switched to a different job).
    pub context_switches: u64,
    /// Idle points detected (the rule-2 trigger).
    pub idle_points: u64,
    /// Fail-stop crashes of this processor.
    pub crashes: u64,
    /// Recoveries of this processor.
    pub recoveries: u64,
    /// In-flight jobs killed by this processor's crashes.
    pub killed_jobs: u64,
}

/// An [`Observer`] that tallies what a protocol actually did during a
/// run: per-task release-control decisions and per-processor scheduling
/// churn, plus signal-channel pressure.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ProtocolCounters {
    protocol: Option<Protocol>,
    tasks: Vec<TaskCounters>,
    procs: Vec<ProcCounters>,
    /// Events dispatched.
    pub events: u64,
    /// Signals pushed into the nonideal channel.
    pub signal_sends: u64,
    /// Signals delivered out of the nonideal channel.
    pub signal_delivers: u64,
    /// Reliable-transport frame transmissions (including retransmissions).
    pub transport_sends: u64,
    /// Transport retransmissions alone.
    pub retransmissions: u64,
    /// Transport acknowledgements received by senders.
    pub transport_acks: u64,
    /// Duplicate transport acknowledgements.
    pub dup_acks: u64,
    /// Heartbeats delivered to failure detectors.
    pub heartbeats: u64,
    /// Clock-synchronization rounds run (across all processors).
    pub sync_rounds: u64,
    /// Sync request/response frames delivered out of the channel.
    pub sync_frames: u64,
    /// Sync rounds that produced a Marzullo offset estimate.
    pub sync_estimates: u64,
    /// Worst (largest) uncertainty half-width over all sync estimates —
    /// the achieved offset bound of the run.
    pub sync_max_uncertainty: Dur,
    /// Signed clock-correction magnitudes applied by the sync layer.
    pub sync_corrections: SignedHistogram,
    /// Failure-detector transitions and graceful-degradation actions.
    pub degradations: u64,
    /// Slowdown windows opened (gray faults).
    pub slowdowns: u64,
    /// Stall windows opened (gray faults).
    pub stalls: u64,
    /// Link-degradation windows opened (gray faults).
    pub link_degrades: u64,
    /// Violations recorded.
    pub violations: u64,
    signal_depth: u64,
    signal_depth_hwm: u64,
    blocked_at: HashMap<JobId, Time>,
}

impl ProtocolCounters {
    /// The protocol of the observed run (`None` before a run starts).
    pub fn protocol(&self) -> Option<Protocol> {
        self.protocol
    }

    /// Counters of one task.
    pub fn task(&self, id: TaskId) -> &TaskCounters {
        &self.tasks[id.index()]
    }

    /// All per-task counters, indexed by task.
    pub fn tasks(&self) -> &[TaskCounters] {
        &self.tasks
    }

    /// All per-processor counters, indexed by processor.
    pub fn procs(&self) -> &[ProcCounters] {
        &self.procs
    }

    /// High-water mark of in-flight signals in the nonideal channel.
    pub fn signal_depth_high_water(&self) -> u64 {
        self.signal_depth_hwm
    }

    /// Guard blocks summed over tasks.
    pub fn total_guard_blocks(&self) -> u64 {
        self.tasks.iter().map(|t| t.guard_blocks).sum()
    }

    /// Guard delay summed over tasks.
    pub fn total_guard_delay(&self) -> Dur {
        self.tasks
            .iter()
            .fold(Dur::ZERO, |acc, t| acc + t.guard_delay_total)
    }

    /// Synchronization interrupts summed over tasks.
    pub fn total_sync_interrupts(&self) -> u64 {
        self.tasks.iter().map(|t| t.sync_interrupts).sum()
    }

    /// Preemptions summed over processors.
    pub fn total_preemptions(&self) -> u64 {
        self.procs.iter().map(|p| p.preemptions).sum()
    }

    /// Context switches summed over processors.
    pub fn total_context_switches(&self) -> u64 {
        self.procs.iter().map(|p| p.context_switches).sum()
    }

    /// Fraction of delivered wire traffic that was sync frames:
    /// `sync / (signals + transport frames + heartbeats + sync)`.
    /// `None` when nothing crossed the wire.
    pub fn sync_traffic_share(&self) -> Option<f64> {
        let total = self.signal_sends + self.transport_sends + self.heartbeats + self.sync_frames;
        (total > 0).then(|| self.sync_frames as f64 / total as f64)
    }

    /// Renders the counters as a plain-text table.
    pub fn render(&self) -> String {
        let tag = self.protocol.map_or("?", Protocol::tag);
        let mut out = String::new();
        let _ = writeln!(
            out,
            "protocol {tag}: {} events, {} signals sent / {} delivered (depth hwm {}), {} violations",
            self.events, self.signal_sends, self.signal_delivers, self.signal_depth_hwm,
            self.violations,
        );
        if self.transport_sends + self.heartbeats + self.degradations > 0 {
            let _ = writeln!(
                out,
                "transport: {} frames ({} retx), {} acks ({} dup), {} heartbeats, \
                 {} degradation events",
                self.transport_sends,
                self.retransmissions,
                self.transport_acks,
                self.dup_acks,
                self.heartbeats,
                self.degradations,
            );
        }
        if self.sync_rounds > 0 {
            let share = self.sync_traffic_share().unwrap_or(0.0) * 100.0;
            let tick = |q: Option<Dur>| q.map_or(0, |d| d.ticks());
            let _ = writeln!(
                out,
                "sync: {} rounds, {} estimates (bound {} ticks), {} frames ({share:.1}% of \
                 wire), corrections n={} p50={} max={}",
                self.sync_rounds,
                self.sync_estimates,
                self.sync_max_uncertainty.ticks(),
                self.sync_frames,
                self.sync_corrections.len(),
                tick(self.sync_corrections.quantile(0.5)),
                tick(self.sync_corrections.quantile(1.0)),
            );
        }
        let _ = writeln!(
            out,
            "{:<6}{:>6}{:>6}{:>8}{:>9}{:>7}{:>6}{:>6}{:>8}{:>9}{:>6}",
            "task",
            "rel",
            "done",
            "g.blk",
            "g.delay",
            "g.max",
            "r1",
            "r2",
            "mpm.arm",
            "mpm.fire",
            "sync"
        );
        for (i, t) in self.tasks.iter().enumerate() {
            let _ = writeln!(
                out,
                "T{:<5}{:>6}{:>6}{:>8}{:>9}{:>7}{:>6}{:>6}{:>8}{:>9}{:>6}",
                i,
                t.releases,
                t.completions,
                t.guard_blocks,
                t.guard_delay_total.ticks(),
                t.guard_delay_max.ticks(),
                t.rule1_updates,
                t.rule2_releases,
                t.mpm_timer_arms,
                t.mpm_timer_fires,
                t.sync_interrupts,
            );
        }
        let _ = writeln!(
            out,
            "{:<6}{:>9}{:>7}{:>6}",
            "proc", "preempt", "ctxsw", "idle"
        );
        for (p, c) in self.procs.iter().enumerate() {
            let _ = writeln!(
                out,
                "P{:<5}{:>9}{:>7}{:>6}",
                p, c.preemptions, c.context_switches, c.idle_points
            );
        }
        out
    }

    fn guard_released(&mut self, now: Time, job: JobId) -> &mut TaskCounters {
        if let Some(t0) = self.blocked_at.remove(&job) {
            let delay = now - t0;
            let t = &mut self.tasks[job.task().index()];
            t.guard_delay_total += delay;
            t.guard_delay_max = t.guard_delay_max.max(delay);
        }
        &mut self.tasks[job.task().index()]
    }
}

impl fmt::Display for ProtocolCounters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

impl Observer for ProtocolCounters {
    fn on_run_start(&mut self, set: &TaskSet, protocol: Protocol) {
        self.protocol = Some(protocol);
        self.tasks = vec![TaskCounters::default(); set.num_tasks()];
        self.procs = vec![ProcCounters::default(); set.num_processors()];
    }

    fn on_event(&mut self, _now: Time, kind: &EventKind) {
        self.events += 1;
        if matches!(
            kind,
            EventKind::SyncRequest { .. } | EventKind::SyncResponse { .. }
        ) {
            self.sync_frames += 1;
        }
    }

    fn on_release(&mut self, _now: Time, job: JobId, _proc: usize) {
        self.tasks[job.task().index()].releases += 1;
    }

    fn on_completion(&mut self, _now: Time, job: JobId, _proc: usize) {
        self.tasks[job.task().index()].completions += 1;
    }

    fn on_context_switch(&mut self, _now: Time, proc: usize, _from: Option<JobId>, _to: JobId) {
        self.procs[proc].context_switches += 1;
    }

    fn on_preemption(&mut self, _now: Time, proc: usize, _preempted: JobId, _by: JobId) {
        self.procs[proc].preemptions += 1;
    }

    fn on_idle_point(&mut self, _now: Time, proc: usize) {
        self.procs[proc].idle_points += 1;
    }

    fn on_guard_block(&mut self, now: Time, job: JobId, _due: Time) {
        self.tasks[job.task().index()].guard_blocks += 1;
        self.blocked_at.insert(job, now);
    }

    fn on_rule1_update(&mut self, _now: Time, subtask: SubtaskId) {
        self.tasks[subtask.task().index()].rule1_updates += 1;
    }

    fn on_rule2_release(&mut self, now: Time, job: JobId) {
        self.guard_released(now, job).rule2_releases += 1;
    }

    fn on_guard_expiry_release(&mut self, now: Time, job: JobId) {
        self.guard_released(now, job).guard_expiry_releases += 1;
    }

    fn on_mpm_timer_armed(&mut self, _now: Time, job: JobId, _fire_at: Time) {
        self.tasks[job.task().index()].mpm_timer_arms += 1;
    }

    fn on_mpm_timer_fired(&mut self, _now: Time, job: JobId, overrun: bool) {
        let t = &mut self.tasks[job.task().index()];
        t.mpm_timer_fires += 1;
        if overrun {
            t.mpm_overruns += 1;
        }
    }

    fn on_sync_interrupt(&mut self, _now: Time, _from: usize, _to: usize, job: JobId) {
        self.tasks[job.task().index()].sync_interrupts += 1;
    }

    fn on_signal_send(&mut self, _now: Time, _job: JobId) {
        self.signal_sends += 1;
        self.signal_depth += 1;
        self.signal_depth_hwm = self.signal_depth_hwm.max(self.signal_depth);
    }

    fn on_signal_deliver(&mut self, _now: Time, _job: JobId) {
        self.signal_delivers += 1;
        self.signal_depth = self.signal_depth.saturating_sub(1);
    }

    fn on_transport_send(&mut self, _now: Time, _job: JobId, _seq: u64, retransmit: bool) {
        self.transport_sends += 1;
        if retransmit {
            self.retransmissions += 1;
        }
    }

    fn on_transport_ack(&mut self, _now: Time, _seq: u64, _rtt: Option<Dur>, dup: bool) {
        self.transport_acks += 1;
        if dup {
            self.dup_acks += 1;
        }
    }

    fn on_heartbeat(&mut self, _now: Time, _from: usize, _to: usize) {
        self.heartbeats += 1;
    }

    fn on_sync_round(&mut self, _now: Time, _proc: usize) {
        self.sync_rounds += 1;
    }

    fn on_sync_estimate(&mut self, _now: Time, _proc: usize, _estimate: Dur, uncertainty: Dur) {
        self.sync_estimates += 1;
        self.sync_max_uncertainty = self.sync_max_uncertainty.max(uncertainty);
    }

    fn on_sync_correction(&mut self, _now: Time, _proc: usize, step: Dur) {
        self.sync_corrections.record(step);
    }

    fn on_degradation(&mut self, _now: Time, _kind: &Degradation) {
        self.degradations += 1;
    }

    fn on_crash(&mut self, _now: Time, proc: usize, killed: &[JobId]) {
        let c = &mut self.procs[proc];
        c.crashes += 1;
        c.killed_jobs += killed.len() as u64;
    }

    fn on_recovery(&mut self, _now: Time, proc: usize, _released: u64, _dropped: u64) {
        self.procs[proc].recoveries += 1;
    }

    fn on_slowdown(&mut self, _now: Time, _proc: usize, factor: u32) {
        if factor > 1 {
            self.slowdowns += 1;
        }
    }

    fn on_stall(&mut self, _now: Time, _proc: usize, stalled: bool) {
        if stalled {
            self.stalls += 1;
        }
    }

    fn on_link_degrade(&mut self, _now: Time, _from: usize, _to: usize, on: bool) {
        if on {
            self.link_degrades += 1;
        }
    }

    fn on_violation(&mut self, _violation: &Violation) {
        self.violations += 1;
    }
}

#[derive(Clone, Debug)]
enum LogRecord {
    Release {
        t: i64,
        proc: usize,
        job: JobId,
    },
    Completion {
        t: i64,
        proc: usize,
        job: JobId,
    },
    Slice {
        proc: usize,
        job: JobId,
        start: i64,
        end: i64,
    },
    ContextSwitch {
        t: i64,
        proc: usize,
        from: Option<JobId>,
        to: JobId,
    },
    Preemption {
        t: i64,
        proc: usize,
        preempted: JobId,
        by: JobId,
    },
    IdlePoint {
        t: i64,
        proc: usize,
    },
    GuardBlock {
        t: i64,
        job: JobId,
        due: i64,
    },
    GuardRelease {
        t: i64,
        job: JobId,
        rule: &'static str,
    },
    MpmTimerArmed {
        t: i64,
        job: JobId,
        fire_at: i64,
    },
    MpmTimerFired {
        t: i64,
        job: JobId,
        overrun: bool,
    },
    SyncInterrupt {
        t: i64,
        from: usize,
        to: usize,
        job: JobId,
    },
    SignalSend {
        t: i64,
        job: JobId,
    },
    SignalDeliver {
        t: i64,
        job: JobId,
    },
    TransportSend {
        t: i64,
        job: JobId,
        seq: u64,
        retransmit: bool,
    },
    TransportAck {
        t: i64,
        seq: u64,
        dup: bool,
    },
    Degradation {
        t: i64,
        kind: Degradation,
    },
    Violation {
        t: i64,
        kind: &'static str,
        job: JobId,
    },
    Crash {
        t: i64,
        proc: usize,
        killed: usize,
    },
    Recovery {
        t: i64,
        proc: usize,
        released: u64,
        dropped: u64,
    },
    RunEnd {
        t: i64,
        events: u64,
    },
}

/// An [`Observer`] that records a structured event log and exports it as
/// JSONL or Chrome trace-event JSON (Perfetto / `chrome://tracing`).
#[derive(Clone, Debug, Default)]
pub struct EventLogObserver {
    protocol: Option<Protocol>,
    num_procs: usize,
    num_tasks: usize,
    proc_of: HashMap<SubtaskId, usize>,
    records: Vec<LogRecord>,
}

impl EventLogObserver {
    /// Number of records captured so far.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` if no record was captured.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Serializes the log as JSON Lines: one JSON object per line, each
    /// with a `"type"` discriminator. The first line is always the
    /// `run_start` header. This schema is pinned by a golden test.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        let tag = self.protocol.map_or("?", Protocol::tag);
        let _ = writeln!(
            out,
            "{{\"type\":\"run_start\",\"protocol\":\"{tag}\",\"processors\":{},\"tasks\":{}}}",
            self.num_procs, self.num_tasks
        );
        for r in &self.records {
            let _ = writeln!(out, "{}", jsonl_line(r));
        }
        out
    }

    /// Serializes the log in the Chrome trace-event JSON format, loadable
    /// in Perfetto (<https://ui.perfetto.dev>) or `chrome://tracing`.
    ///
    /// One track (`tid`) per processor; executed slices are `ph:"X"`
    /// complete events (ticks as microseconds), releases and completions
    /// are `ph:"i"` instants, and cross-processor synchronization signals
    /// are `s`/`f` flow pairs from the completing processor's track to
    /// the receiving one — drawn by both viewers as arrows.
    pub fn to_chrome_trace(&self) -> String {
        self.to_chrome_trace_with(&[])
    }

    /// [`EventLogObserver::to_chrome_trace`] with extra pre-serialized
    /// trace events spliced into the `traceEvents` array — the hook the
    /// telemetry layer uses to lay its counter tracks
    /// ([`crate::telemetry::TelemetryReport::chrome_counter_events`])
    /// above the flow arrows of the same run.
    pub fn to_chrome_trace_with(&self, extra: &[String]) -> String {
        let tag = self.protocol.map_or("?", Protocol::tag);
        let mut ev: Vec<String> = Vec::new();
        ev.push(format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\"ts\":0,\
             \"args\":{{\"name\":\"rtsync {tag}\"}}}}"
        ));
        for p in 0..self.num_procs {
            ev.push(format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{p},\"ts\":0,\
                 \"args\":{{\"name\":\"P{p}\"}}}}"
            ));
        }

        // Pair each sync interrupt's flow-finish with the matching channel
        // delivery when one exists (nonideal runs); under an ideal channel
        // the signal is applied at the same instant it is raised.
        let mut deliveries: HashMap<JobId, std::collections::VecDeque<i64>> = HashMap::new();
        for r in &self.records {
            if let LogRecord::SignalDeliver { t, job } = r {
                deliveries.entry(*job).or_default().push_back(*t);
            }
        }

        let mut flow_id = 0u64;
        for r in &self.records {
            match r {
                LogRecord::Slice {
                    proc,
                    job,
                    start,
                    end,
                } => ev.push(format!(
                    "{{\"name\":\"{job}\",\"cat\":\"exec\",\"ph\":\"X\",\"ts\":{start},\
                     \"dur\":{},\"pid\":0,\"tid\":{proc}}}",
                    end - start
                )),
                LogRecord::Release { t, proc, job } => ev.push(format!(
                    "{{\"name\":\"release {job}\",\"cat\":\"release\",\"ph\":\"i\",\"s\":\"t\",\
                     \"ts\":{t},\"pid\":0,\"tid\":{proc}}}"
                )),
                LogRecord::Completion { t, proc, job } => ev.push(format!(
                    "{{\"name\":\"done {job}\",\"cat\":\"completion\",\"ph\":\"i\",\"s\":\"t\",\
                     \"ts\":{t},\"pid\":0,\"tid\":{proc}}}"
                )),
                LogRecord::GuardBlock { t, job, due } => {
                    let proc = self.proc_of.get(&job.subtask()).copied().unwrap_or(0);
                    ev.push(format!(
                        "{{\"name\":\"guard {job} until {due}\",\"cat\":\"guard\",\"ph\":\"i\",\
                         \"s\":\"t\",\"ts\":{t},\"pid\":0,\"tid\":{proc}}}"
                    ));
                }
                LogRecord::Crash { t, proc, killed } => ev.push(format!(
                    "{{\"name\":\"CRASH ({killed} killed)\",\"cat\":\"fault\",\"ph\":\"i\",\
                     \"s\":\"t\",\"ts\":{t},\"pid\":0,\"tid\":{proc}}}"
                )),
                LogRecord::Recovery {
                    t,
                    proc,
                    released,
                    dropped,
                } => ev.push(format!(
                    "{{\"name\":\"RECOVER (+{released}/-{dropped})\",\"cat\":\"fault\",\
                     \"ph\":\"i\",\"s\":\"t\",\"ts\":{t},\"pid\":0,\"tid\":{proc}}}"
                )),
                LogRecord::SyncInterrupt { t, from, to, job } => {
                    flow_id += 1;
                    ev.push(format!(
                        "{{\"name\":\"signal {job}\",\"cat\":\"signal\",\"ph\":\"s\",\
                         \"id\":{flow_id},\"ts\":{t},\"pid\":0,\"tid\":{from}}}"
                    ));
                    let (ft, ftid) = match deliveries.get_mut(job).and_then(|q| q.pop_front()) {
                        Some(dt) => (dt, self.proc_of.get(&job.subtask()).copied().unwrap_or(*to)),
                        None => (*t, *to),
                    };
                    ev.push(format!(
                        "{{\"name\":\"signal {job}\",\"cat\":\"signal\",\"ph\":\"f\",\
                         \"bp\":\"e\",\"id\":{flow_id},\"ts\":{ft},\"pid\":0,\"tid\":{ftid}}}"
                    ));
                }
                _ => {}
            }
        }
        ev.extend(extra.iter().cloned());
        format!(
            "{{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n{}\n]}}\n",
            ev.join(",\n")
        )
    }
}

fn violation_tag(kind: &ViolationKind) -> &'static str {
    match kind {
        ViolationKind::PrecedenceViolated => "precedence",
        ViolationKind::MpmOverrun => "mpm_overrun",
        ViolationKind::SignalLost => "signal_lost",
        ViolationKind::SignalReceiverDown => "signal_receiver_down",
    }
}

fn degradation_json(t: i64, kind: &Degradation) -> String {
    match kind {
        Degradation::PeerDegraded {
            observer,
            subject,
            gray_truth,
        } => format!(
            "{{\"type\":\"degradation\",\"t\":{t},\"kind\":\"peer_degraded\",\
             \"observer\":{observer},\"subject\":{subject},\"gray_truth\":{gray_truth}}}"
        ),
        Degradation::PeerSuspect {
            observer,
            subject,
            false_positive,
        } => format!(
            "{{\"type\":\"degradation\",\"t\":{t},\"kind\":\"peer_suspect\",\
             \"observer\":{observer},\"subject\":{subject},\"false_positive\":{false_positive}}}"
        ),
        Degradation::PeerDead {
            observer,
            subject,
            false_positive,
        } => format!(
            "{{\"type\":\"degradation\",\"t\":{t},\"kind\":\"peer_dead\",\
             \"observer\":{observer},\"subject\":{subject},\"false_positive\":{false_positive}}}"
        ),
        Degradation::PeerRevived { observer, subject } => format!(
            "{{\"type\":\"degradation\",\"t\":{t},\"kind\":\"peer_revived\",\
             \"observer\":{observer},\"subject\":{subject}}}"
        ),
        Degradation::ForcedRelease { job, dead_peer } => format!(
            "{{\"type\":\"degradation\",\"t\":{t},\"kind\":\"forced_release\",\
             \"job\":\"{job}\",\"dead_peer\":{dead_peer}}}"
        ),
        Degradation::StaleSignal { job } => format!(
            "{{\"type\":\"degradation\",\"t\":{t},\"kind\":\"stale_signal\",\"job\":\"{job}\"}}"
        ),
        Degradation::SignalAbandoned { job, attempts } => format!(
            "{{\"type\":\"degradation\",\"t\":{t},\"kind\":\"signal_abandoned\",\
             \"job\":\"{job}\",\"attempts\":{attempts}}}"
        ),
        Degradation::WatchdogTrip { task, streak } => format!(
            "{{\"type\":\"degradation\",\"t\":{t},\"kind\":\"watchdog_trip\",\
             \"task\":{task},\"streak\":{streak}}}"
        ),
    }
}

fn jsonl_line(r: &LogRecord) -> String {
    match r {
        LogRecord::Release { t, proc, job } => {
            format!("{{\"type\":\"release\",\"t\":{t},\"proc\":{proc},\"job\":\"{job}\"}}")
        }
        LogRecord::Completion { t, proc, job } => {
            format!("{{\"type\":\"completion\",\"t\":{t},\"proc\":{proc},\"job\":\"{job}\"}}")
        }
        LogRecord::Slice {
            proc,
            job,
            start,
            end,
        } => format!(
            "{{\"type\":\"slice\",\"proc\":{proc},\"job\":\"{job}\",\"start\":{start},\
             \"end\":{end}}}"
        ),
        LogRecord::ContextSwitch { t, proc, from, to } => {
            let from = match from {
                Some(j) => format!("\"{j}\""),
                None => "null".to_string(),
            };
            format!(
                "{{\"type\":\"context_switch\",\"t\":{t},\"proc\":{proc},\"from\":{from},\
                 \"to\":\"{to}\"}}"
            )
        }
        LogRecord::Preemption {
            t,
            proc,
            preempted,
            by,
        } => format!(
            "{{\"type\":\"preemption\",\"t\":{t},\"proc\":{proc},\"preempted\":\"{preempted}\",\
             \"by\":\"{by}\"}}"
        ),
        LogRecord::IdlePoint { t, proc } => {
            format!("{{\"type\":\"idle_point\",\"t\":{t},\"proc\":{proc}}}")
        }
        LogRecord::GuardBlock { t, job, due } => {
            format!("{{\"type\":\"guard_block\",\"t\":{t},\"job\":\"{job}\",\"due\":{due}}}")
        }
        LogRecord::GuardRelease { t, job, rule } => {
            format!(
                "{{\"type\":\"guard_release\",\"t\":{t},\"job\":\"{job}\",\"rule\":\"{rule}\"}}"
            )
        }
        LogRecord::MpmTimerArmed { t, job, fire_at } => format!(
            "{{\"type\":\"mpm_timer_armed\",\"t\":{t},\"job\":\"{job}\",\"fire_at\":{fire_at}}}"
        ),
        LogRecord::MpmTimerFired { t, job, overrun } => format!(
            "{{\"type\":\"mpm_timer_fired\",\"t\":{t},\"job\":\"{job}\",\"overrun\":{overrun}}}"
        ),
        LogRecord::SyncInterrupt { t, from, to, job } => format!(
            "{{\"type\":\"sync_interrupt\",\"t\":{t},\"from\":{from},\"to\":{to},\
             \"job\":\"{job}\"}}"
        ),
        LogRecord::SignalSend { t, job } => {
            format!("{{\"type\":\"signal_send\",\"t\":{t},\"job\":\"{job}\"}}")
        }
        LogRecord::SignalDeliver { t, job } => {
            format!("{{\"type\":\"signal_deliver\",\"t\":{t},\"job\":\"{job}\"}}")
        }
        LogRecord::TransportSend {
            t,
            job,
            seq,
            retransmit,
        } => format!(
            "{{\"type\":\"transport_send\",\"t\":{t},\"job\":\"{job}\",\"seq\":{seq},\
             \"retransmit\":{retransmit}}}"
        ),
        LogRecord::TransportAck { t, seq, dup } => {
            format!("{{\"type\":\"transport_ack\",\"t\":{t},\"seq\":{seq},\"dup\":{dup}}}")
        }
        LogRecord::Degradation { t, kind } => degradation_json(*t, kind),
        LogRecord::Violation { t, kind, job } => {
            format!("{{\"type\":\"violation\",\"t\":{t},\"kind\":\"{kind}\",\"job\":\"{job}\"}}")
        }
        LogRecord::Crash { t, proc, killed } => {
            format!("{{\"type\":\"crash\",\"t\":{t},\"proc\":{proc},\"killed\":{killed}}}")
        }
        LogRecord::Recovery {
            t,
            proc,
            released,
            dropped,
        } => format!(
            "{{\"type\":\"recovery\",\"t\":{t},\"proc\":{proc},\"released\":{released},\
             \"dropped\":{dropped}}}"
        ),
        LogRecord::RunEnd { t, events } => {
            format!("{{\"type\":\"run_end\",\"t\":{t},\"events\":{events}}}")
        }
    }
}

impl Observer for EventLogObserver {
    fn on_run_start(&mut self, set: &TaskSet, protocol: Protocol) {
        self.protocol = Some(protocol);
        self.num_procs = set.num_processors();
        self.num_tasks = set.num_tasks();
        self.proc_of = set
            .subtasks()
            .map(|s| (s.id(), s.processor().index()))
            .collect();
        self.records.clear();
    }

    fn on_release(&mut self, now: Time, job: JobId, proc: usize) {
        self.records.push(LogRecord::Release {
            t: now.ticks(),
            proc,
            job,
        });
    }

    fn on_completion(&mut self, now: Time, job: JobId, proc: usize) {
        self.records.push(LogRecord::Completion {
            t: now.ticks(),
            proc,
            job,
        });
    }

    fn on_slice(&mut self, proc: usize, job: JobId, start: Time, end: Time) {
        self.records.push(LogRecord::Slice {
            proc,
            job,
            start: start.ticks(),
            end: end.ticks(),
        });
    }

    fn on_context_switch(&mut self, now: Time, proc: usize, from: Option<JobId>, to: JobId) {
        self.records.push(LogRecord::ContextSwitch {
            t: now.ticks(),
            proc,
            from,
            to,
        });
    }

    fn on_preemption(&mut self, now: Time, proc: usize, preempted: JobId, by: JobId) {
        self.records.push(LogRecord::Preemption {
            t: now.ticks(),
            proc,
            preempted,
            by,
        });
    }

    fn on_idle_point(&mut self, now: Time, proc: usize) {
        self.records.push(LogRecord::IdlePoint {
            t: now.ticks(),
            proc,
        });
    }

    fn on_guard_block(&mut self, now: Time, job: JobId, due: Time) {
        self.records.push(LogRecord::GuardBlock {
            t: now.ticks(),
            job,
            due: due.ticks(),
        });
    }

    fn on_rule2_release(&mut self, now: Time, job: JobId) {
        self.records.push(LogRecord::GuardRelease {
            t: now.ticks(),
            job,
            rule: "idle-point",
        });
    }

    fn on_guard_expiry_release(&mut self, now: Time, job: JobId) {
        self.records.push(LogRecord::GuardRelease {
            t: now.ticks(),
            job,
            rule: "expiry",
        });
    }

    fn on_mpm_timer_armed(&mut self, now: Time, job: JobId, fire_at: Time) {
        self.records.push(LogRecord::MpmTimerArmed {
            t: now.ticks(),
            job,
            fire_at: fire_at.ticks(),
        });
    }

    fn on_mpm_timer_fired(&mut self, now: Time, job: JobId, overrun: bool) {
        self.records.push(LogRecord::MpmTimerFired {
            t: now.ticks(),
            job,
            overrun,
        });
    }

    fn on_sync_interrupt(&mut self, now: Time, from: usize, to: usize, job: JobId) {
        self.records.push(LogRecord::SyncInterrupt {
            t: now.ticks(),
            from,
            to,
            job,
        });
    }

    fn on_signal_send(&mut self, now: Time, job: JobId) {
        self.records.push(LogRecord::SignalSend {
            t: now.ticks(),
            job,
        });
    }

    fn on_signal_deliver(&mut self, now: Time, job: JobId) {
        self.records.push(LogRecord::SignalDeliver {
            t: now.ticks(),
            job,
        });
    }

    fn on_transport_send(&mut self, now: Time, job: JobId, seq: u64, retransmit: bool) {
        self.records.push(LogRecord::TransportSend {
            t: now.ticks(),
            job,
            seq,
            retransmit,
        });
    }

    fn on_transport_ack(&mut self, now: Time, seq: u64, _rtt: Option<Dur>, dup: bool) {
        self.records.push(LogRecord::TransportAck {
            t: now.ticks(),
            seq,
            dup,
        });
    }

    // Heartbeats are deliberately not logged: at one per processor pair
    // per period they would dwarf every other record class.

    fn on_degradation(&mut self, now: Time, kind: &Degradation) {
        self.records.push(LogRecord::Degradation {
            t: now.ticks(),
            kind: *kind,
        });
    }

    fn on_crash(&mut self, now: Time, proc: usize, killed: &[JobId]) {
        self.records.push(LogRecord::Crash {
            t: now.ticks(),
            proc,
            killed: killed.len(),
        });
    }

    fn on_recovery(&mut self, now: Time, proc: usize, released: u64, dropped: u64) {
        self.records.push(LogRecord::Recovery {
            t: now.ticks(),
            proc,
            released,
            dropped,
        });
    }

    fn on_violation(&mut self, violation: &Violation) {
        self.records.push(LogRecord::Violation {
            t: violation.time.ticks(),
            kind: violation_tag(&violation.kind),
            job: violation.job,
        });
    }

    fn on_run_end(&mut self, now: Time, events: u64) {
        self.records.push(LogRecord::RunEnd {
            t: now.ticks(),
            events,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_observer_is_zero_sized() {
        assert_eq!(std::mem::size_of::<NoopObserver>(), 0);
    }

    #[test]
    fn counters_track_guard_delay() {
        let mut c = ProtocolCounters::default();
        let set = rtsync_core::examples::example2();
        c.on_run_start(&set, Protocol::ReleaseGuard);
        let job = JobId::new(SubtaskId::new(TaskId::new(1), 1), 0);
        c.on_guard_block(Time::from_ticks(4), job, Time::from_ticks(7));
        c.on_guard_expiry_release(Time::from_ticks(7), job);
        let t = c.task(TaskId::new(1));
        assert_eq!(t.guard_blocks, 1);
        assert_eq!(t.guard_delay_total, Dur::from_ticks(3));
        assert_eq!(t.guard_delay_max, Dur::from_ticks(3));
        assert_eq!(t.guard_expiry_releases, 1);
        assert_eq!(c.total_guard_delay(), Dur::from_ticks(3));
    }

    #[test]
    fn counters_track_signal_depth_high_water() {
        let mut c = ProtocolCounters::default();
        let set = rtsync_core::examples::example2();
        c.on_run_start(&set, Protocol::DirectSync);
        let job = JobId::new(SubtaskId::new(TaskId::new(1), 1), 0);
        c.on_signal_send(Time::from_ticks(1), job);
        c.on_signal_send(Time::from_ticks(2), job);
        c.on_signal_deliver(Time::from_ticks(3), job);
        c.on_signal_send(Time::from_ticks(4), job);
        assert_eq!(c.signal_sends, 3);
        assert_eq!(c.signal_delivers, 1);
        assert_eq!(c.signal_depth_high_water(), 2);
    }

    #[test]
    fn counters_track_sync_rounds_and_corrections() {
        let mut c = ProtocolCounters::default();
        let set = rtsync_core::examples::example2();
        c.on_run_start(&set, Protocol::PhaseModification);
        c.on_sync_round(Time::from_ticks(10), 0);
        c.on_sync_round(Time::from_ticks(10), 1);
        c.on_sync_estimate(
            Time::from_ticks(20),
            0,
            Dur::from_ticks(-3),
            Dur::from_ticks(2),
        );
        c.on_sync_estimate(
            Time::from_ticks(20),
            1,
            Dur::from_ticks(4),
            Dur::from_ticks(5),
        );
        c.on_sync_correction(Time::from_ticks(20), 0, Dur::from_ticks(-3));
        c.on_sync_correction(Time::from_ticks(20), 1, Dur::from_ticks(4));
        assert_eq!(c.sync_rounds, 2);
        assert_eq!(c.sync_estimates, 2);
        assert_eq!(c.sync_max_uncertainty, Dur::from_ticks(5));
        assert_eq!(c.sync_corrections.len(), 2);
        assert_eq!(c.sync_corrections.quantile(0.5), Some(Dur::from_ticks(-3)));
        let rendered = c.render();
        assert!(rendered.contains("sync: 2 rounds"), "{rendered}");
    }

    #[test]
    fn event_log_jsonl_lines_are_objects() {
        let mut o = EventLogObserver::default();
        let set = rtsync_core::examples::example2();
        o.on_run_start(&set, Protocol::DirectSync);
        let job = JobId::new(SubtaskId::new(TaskId::new(0), 0), 0);
        o.on_release(Time::from_ticks(0), job, 0);
        o.on_slice(0, job, Time::from_ticks(0), Time::from_ticks(2));
        o.on_completion(Time::from_ticks(2), job, 0);
        o.on_run_end(Time::from_ticks(24), 10);
        let jsonl = o.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 5);
        for line in &lines {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
            assert!(line.contains("\"type\":\""), "{line}");
        }
        assert!(lines[0].contains("\"protocol\":\"DS\""));
        assert!(lines[4].contains("\"type\":\"run_end\""));
    }
}
