//! Post-hoc schedule validation.
//!
//! [`validate_schedule`] replays a recorded [`Trace`] against its
//! [`TaskSet`] and checks every property a preemptive fixed-priority
//! schedule must have, independent of how the engine produced it:
//!
//! 1. **No overlap** — a processor never runs two jobs at once.
//! 2. **Execution budget** — every completed job executed exactly its
//!    subtask's execution time, entirely between its release and
//!    completion.
//! 3. **Completion honesty** — a job's completion instant equals the end
//!    of its last executed slice.
//! 4. **Priority compliance (work conservation)** — whenever a job
//!    executes, no higher-priority job on the same processor is released,
//!    unfinished and not executing.
//! 5. **Precedence** — no subtask instance is released before the same
//!    instance of its predecessor completes (skipped for protocols that
//!    are *expected* to violate it; the engine reports those as
//!    [`Violation`](crate::engine::Violation)s).
//!
//! This is the simulator auditing itself: the engine upholds these by
//! construction, and the validator proves it from the artifact alone —
//! any future engine bug that slips past the unit tests gets caught by
//! the property suite running this on random systems.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use rtsync_core::task::TaskSet;
use rtsync_core::time::{Dur, Time};

use crate::faults::CrashWindow;
use crate::job::JobId;
use crate::trace::{Segment, Trace};

/// A defect found in a recorded schedule.
#[derive(Clone, PartialEq, Eq, Debug)]
#[non_exhaustive]
pub enum ScheduleDefect {
    /// Two segments on one processor overlap in time.
    Overlap {
        /// The earlier-starting segment.
        first: Segment,
        /// The overlapping segment.
        second: Segment,
    },
    /// A completed job's executed time does not equal its execution budget.
    WrongBudget {
        /// The job.
        job: JobId,
        /// Ticks actually executed.
        executed: Dur,
        /// The subtask's execution time.
        budget: Dur,
    },
    /// A job executed outside its release–completion window.
    OutsideWindow {
        /// The job.
        job: JobId,
        /// The offending segment.
        segment: Segment,
    },
    /// A completion instant does not match the end of the job's last slice.
    DishonestCompletion {
        /// The job.
        job: JobId,
        /// Recorded completion.
        recorded: Time,
        /// End of its last executed slice.
        last_slice_end: Time,
    },
    /// A lower-priority job ran while a higher-priority job was released,
    /// unfinished and idle on the same processor.
    PriorityInversion {
        /// The job that ran.
        running: JobId,
        /// The higher-priority job that should have run.
        waiting: JobId,
        /// When.
        at: Time,
    },
    /// A subtask instance was released before its predecessor's completion.
    PrecedenceViolation {
        /// The prematurely released job.
        job: JobId,
        /// Its release time.
        released: Time,
        /// The predecessor instance's completion (`None` if it never
        /// completed in the trace).
        predecessor_completed: Option<Time>,
    },
    /// A job executed, released or completed on a processor during one of
    /// its crash outages (see [`validate_fault_quiescence`]).
    ActivityWhileDown {
        /// The job.
        job: JobId,
        /// When the activity landed.
        at: Time,
        /// The outage it landed in.
        window: CrashWindow,
    },
    /// A successor was released across an open partition cut although its
    /// predecessor completed after the cut opened — the release signal
    /// could not have crossed (see [`validate_partition_quiescence`]).
    CrossPartitionRelease {
        /// The leaked successor.
        job: JobId,
        /// Its release time (inside the partition window).
        released: Time,
        /// The predecessor's completion (also inside the window).
        predecessor_completed: Time,
    },
}

impl fmt::Display for ScheduleDefect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleDefect::Overlap { first, second } => write!(
                f,
                "segments overlap on {}: {} [{}, {}) and {} [{}, {})",
                first.processor,
                first.job,
                first.start.ticks(),
                first.end.ticks(),
                second.job,
                second.start.ticks(),
                second.end.ticks()
            ),
            ScheduleDefect::WrongBudget {
                job,
                executed,
                budget,
            } => write!(f, "job {job} executed {executed} ticks, budget {budget}"),
            ScheduleDefect::OutsideWindow { job, segment } => write!(
                f,
                "job {job} executed [{}, {}) outside its release-completion window",
                segment.start.ticks(),
                segment.end.ticks()
            ),
            ScheduleDefect::DishonestCompletion {
                job,
                recorded,
                last_slice_end,
            } => write!(
                f,
                "job {job} recorded complete at {} but last ran until {}",
                recorded.ticks(),
                last_slice_end.ticks()
            ),
            ScheduleDefect::PriorityInversion {
                running,
                waiting,
                at,
            } => write!(
                f,
                "{running} ran at {} while higher-priority {waiting} waited",
                at.ticks()
            ),
            ScheduleDefect::PrecedenceViolation {
                job,
                released,
                predecessor_completed,
            } => write!(
                f,
                "{job} released at {} before predecessor completion {:?}",
                released.ticks(),
                predecessor_completed.map(|t| t.ticks())
            ),
            ScheduleDefect::ActivityWhileDown { job, at, window } => write!(
                f,
                "{job} active at {} inside the outage [{}, {})",
                at.ticks(),
                window.at.ticks(),
                window.recovers_at().ticks()
            ),
            ScheduleDefect::CrossPartitionRelease {
                job,
                released,
                predecessor_completed,
            } => write!(
                f,
                "{job} released at {} across an open cut (predecessor completed at {})",
                released.ticks(),
                predecessor_completed.ticks()
            ),
        }
    }
}

impl Error for ScheduleDefect {}

/// Validates a recorded schedule; returns every defect found (empty =
/// valid). `check_precedence` should be `false` for PM/MPM runs with
/// sporadic sources, where precedence violations are the *expected*
/// finding (the engine already reports them).
pub fn validate_schedule(
    set: &TaskSet,
    trace: &Trace,
    check_precedence: bool,
) -> Vec<ScheduleDefect> {
    let mut defects = Vec::new();

    let releases: HashMap<JobId, Time> = trace.releases().iter().copied().collect();
    let completions: HashMap<JobId, Time> = trace.completions().iter().copied().collect();

    // Per-job executed totals and window checks; per-processor overlap.
    let mut executed: HashMap<JobId, Dur> = HashMap::new();
    let mut last_slice_end: HashMap<JobId, Time> = HashMap::new();
    for p in 0..set.num_processors() {
        let proc = rtsync_core::task::ProcessorId::new(p);
        let segs = trace.segments_on(proc);
        for pair in segs.windows(2) {
            if pair[1].start < pair[0].end {
                defects.push(ScheduleDefect::Overlap {
                    first: pair[0],
                    second: pair[1],
                });
            }
        }
        for seg in &segs {
            *executed.entry(seg.job).or_insert(Dur::ZERO) += seg.end - seg.start;
            let entry = last_slice_end.entry(seg.job).or_insert(seg.end);
            *entry = (*entry).max(seg.end);
            let released = releases.get(&seg.job).copied();
            let completed = completions.get(&seg.job).copied();
            let ok_window =
                released.is_some_and(|r| seg.start >= r) && completed.is_none_or(|c| seg.end <= c);
            if !ok_window {
                defects.push(ScheduleDefect::OutsideWindow {
                    job: seg.job,
                    segment: *seg,
                });
            }
        }
    }

    // Budgets and completion honesty for completed jobs.
    for (&job, &completed_at) in &completions {
        let budget = set.subtask(job.subtask()).execution();
        let total = executed.get(&job).copied().unwrap_or(Dur::ZERO);
        if total != budget {
            defects.push(ScheduleDefect::WrongBudget {
                job,
                executed: total,
                budget,
            });
        }
        if let Some(&end) = last_slice_end.get(&job) {
            if end != completed_at {
                defects.push(ScheduleDefect::DishonestCompletion {
                    job,
                    recorded: completed_at,
                    last_slice_end: end,
                });
            }
        }
    }

    // Priority compliance: for every segment, no released, unfinished,
    // higher-priority job on the same processor may be idle during it —
    // unless the segment belongs to a non-preemptive job that started at
    // or before the other job's release (legitimate blocking).
    for seg in trace.segments() {
        let my_sub = set.subtask(seg.job.subtask());
        let my_prio = my_sub.priority();
        for (&other, &rel) in &releases {
            if other == seg.job {
                continue;
            }
            let o_sub = set.subtask(other.subtask());
            if o_sub.processor() != seg.processor || !o_sub.priority().is_higher_than(my_prio) {
                continue;
            }
            // The other job is pending throughout [max(rel, seg.start), min(completion, seg.end)).
            let pend_from = rel.max(seg.start);
            let pend_to = completions
                .get(&other)
                .copied()
                .unwrap_or(Time::MAX)
                .min(seg.end);
            if pend_from >= pend_to {
                continue;
            }
            // A non-preemptive job may keep running past a higher-priority
            // release it had already started before (or at) — a single
            // contiguous segment, since it is never preempted.
            if !my_sub.is_preemptible() && seg.start <= rel {
                continue;
            }
            // A job inside a critical section runs at the resource ceiling
            // (Highest Locker). Without executed-offset bookkeeping the
            // validator accepts any window in which the running subtask
            // *could* hold a ceiling at least as high as the waiter —
            // conservative: it may miss an inversion in a section-bearing
            // system, but never reports a false positive.
            let could_hold_ceiling = my_sub.critical_sections().iter().any(|cs| {
                set.resource_ceiling(cs.resource)
                    .is_some_and(|c| c.is_at_least(o_sub.priority()))
            });
            if could_hold_ceiling {
                continue;
            }
            // Fine only if `other` itself executes for all of [pend_from, pend_to)
            // — impossible on the same processor while seg runs, so any
            // nonempty pending overlap is an inversion.
            defects.push(ScheduleDefect::PriorityInversion {
                running: seg.job,
                waiting: other,
                at: pend_from,
            });
        }
    }

    if check_precedence {
        for (&job, &rel) in &releases {
            if let Some(pred) = job.predecessor() {
                match completions.get(&pred) {
                    Some(&c) if c <= rel => {}
                    other => defects.push(ScheduleDefect::PrecedenceViolation {
                        job,
                        released: rel,
                        predecessor_completed: other.copied(),
                    }),
                }
            }
        }
    }

    defects
}

/// Validates fail-stop quiescence from the artifact alone: during each
/// crash outage `[at, recovers_at)` of `windows[p]`, processor `p` must
/// show no executed slice, no release and no completion in the trace.
/// Slices truncated exactly at the crash instant and backlog released
/// exactly at the recovery instant are legitimate and not flagged. This
/// is the offline counterpart of the engine's down-processor gates — it
/// proves them from the recorded schedule, independent of the engine.
pub fn validate_fault_quiescence(
    set: &TaskSet,
    trace: &Trace,
    windows: &[Vec<CrashWindow>],
) -> Vec<ScheduleDefect> {
    let mut defects = Vec::new();
    let in_outage = |proc: usize, t: Time| -> Option<CrashWindow> {
        windows
            .get(proc)?
            .iter()
            .copied()
            .find(|w| w.at <= t && t < w.recovers_at())
    };
    for p in 0..set.num_processors() {
        let proc = rtsync_core::task::ProcessorId::new(p);
        for seg in trace.segments_on(proc) {
            // A slice overlaps an outage iff some covered instant is down;
            // its half-open span makes `start` and `end - 1` the extremes.
            let overlapping = in_outage(p, seg.start)
                .or_else(|| in_outage(p, seg.end - Dur::from_ticks(1)))
                .or_else(|| {
                    windows.get(p).and_then(|ws| {
                        ws.iter()
                            .copied()
                            .find(|w| seg.start < w.at && w.recovers_at() < seg.end)
                    })
                });
            if let Some(window) = overlapping {
                defects.push(ScheduleDefect::ActivityWhileDown {
                    job: seg.job,
                    at: seg.start.max(window.at),
                    window,
                });
            }
        }
    }
    for &(job, at) in trace.releases().iter().chain(trace.completions()) {
        let p = set.subtask(job.subtask()).processor().index();
        if let Some(window) = in_outage(p, at) {
            defects.push(ScheduleDefect::ActivityWhileDown { job, at, window });
        }
    }
    defects
}

/// Validates partition quiescence from the artifact alone: while a
/// partition window is open, no successor whose predecessor lives across
/// the cut may be released on the strength of a completion that happened
/// *after* the cut opened — the signal carrying it could not have
/// crossed. This is the offline counterpart of the engine's `apply_signal`
/// partition gate and the invariant observer's leak check.
///
/// Meaningful for the signal-driven protocols (DS, RG, MPM). PM releases
/// by clock alone and legitimately "leaks" across any cut — skip it.
pub fn validate_partition_quiescence(
    set: &TaskSet,
    trace: &Trace,
    windows: &[crate::faults::PartitionWindow],
) -> Vec<ScheduleDefect> {
    let mut defects = Vec::new();
    let completions: HashMap<JobId, Time> = trace.completions().iter().copied().collect();
    for &(job, rel) in trace.releases() {
        let Some(pred) = job.predecessor() else {
            continue;
        };
        let Some(w) = windows.iter().find(|w| w.at <= rel && rel < w.heals_at()) else {
            continue;
        };
        let from = set.subtask(pred.subtask()).processor().index();
        let to = set.subtask(job.subtask()).processor().index();
        if w.island.contains(&from) == w.island.contains(&to) {
            continue; // same side — the signal never met the cut
        }
        if let Some(&c) = completions.get(&pred) {
            if w.at <= c && c <= rel {
                defects.push(ScheduleDefect::CrossPartitionRelease {
                    job,
                    released: rel,
                    predecessor_completed: c,
                });
            }
        }
    }
    defects
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{simulate, SimConfig};
    use crate::processor::ExecutedSlice;
    use rtsync_core::examples::{example1, example2};
    use rtsync_core::protocol::Protocol;
    use rtsync_core::task::{ProcessorId, SubtaskId, TaskId};

    fn t(x: i64) -> Time {
        Time::from_ticks(x)
    }

    fn job(task: usize, sub: usize, m: u64) -> JobId {
        JobId::new(SubtaskId::new(TaskId::new(task), sub), m)
    }

    #[test]
    fn engine_schedules_validate_clean() {
        for protocol in Protocol::ALL {
            for set in [example1(), example2()] {
                let out = simulate(
                    &set,
                    &SimConfig::new(protocol).with_instances(10).with_trace(),
                )
                .unwrap();
                let defects = validate_schedule(&set, out.trace.as_ref().unwrap(), true);
                assert!(defects.is_empty(), "{protocol:?}: {defects:?}");
            }
        }
    }

    #[test]
    fn detects_overlap() {
        let set = example2();
        let mut trace = Trace::new(2);
        let p0 = ProcessorId::new(0);
        trace.push_release(job(0, 0, 0), t(0));
        trace.push_release(job(1, 0, 0), t(0));
        trace.push_slice(
            p0,
            ExecutedSlice {
                job: job(0, 0, 0),
                start: t(0),
                end: t(2),
            },
        );
        trace.push_slice(
            p0,
            ExecutedSlice {
                job: job(1, 0, 0),
                start: t(1),
                end: t(3),
            },
        );
        let defects = validate_schedule(&set, &trace, false);
        assert!(
            defects
                .iter()
                .any(|d| matches!(d, ScheduleDefect::Overlap { .. })),
            "{defects:?}"
        );
    }

    #[test]
    fn detects_wrong_budget_and_dishonest_completion() {
        let set = example2();
        let mut trace = Trace::new(2);
        let p0 = ProcessorId::new(0);
        // T0.0 has budget 2 but only runs 1 tick, and "completes" at 5.
        trace.push_release(job(0, 0, 0), t(0));
        trace.push_slice(
            p0,
            ExecutedSlice {
                job: job(0, 0, 0),
                start: t(0),
                end: t(1),
            },
        );
        trace.push_completion(job(0, 0, 0), t(5));
        let defects = validate_schedule(&set, &trace, false);
        assert!(defects
            .iter()
            .any(|d| matches!(d, ScheduleDefect::WrongBudget { .. })));
        assert!(defects
            .iter()
            .any(|d| matches!(d, ScheduleDefect::DishonestCompletion { .. })));
    }

    #[test]
    fn detects_execution_before_release() {
        let set = example2();
        let mut trace = Trace::new(2);
        trace.push_release(job(0, 0, 0), t(3));
        trace.push_slice(
            ProcessorId::new(0),
            ExecutedSlice {
                job: job(0, 0, 0),
                start: t(0),
                end: t(2),
            },
        );
        let defects = validate_schedule(&set, &trace, false);
        assert!(defects
            .iter()
            .any(|d| matches!(d, ScheduleDefect::OutsideWindow { .. })));
    }

    #[test]
    fn detects_priority_inversion() {
        let set = example2();
        let mut trace = Trace::new(2);
        let p0 = ProcessorId::new(0);
        // T1.0 (low prio) runs 0-2 while T0.0 (high prio) is pending.
        trace.push_release(job(0, 0, 0), t(0));
        trace.push_release(job(1, 0, 0), t(0));
        trace.push_slice(
            p0,
            ExecutedSlice {
                job: job(1, 0, 0),
                start: t(0),
                end: t(2),
            },
        );
        trace.push_completion(job(1, 0, 0), t(2));
        let defects = validate_schedule(&set, &trace, false);
        assert!(
            defects
                .iter()
                .any(|d| matches!(d, ScheduleDefect::PriorityInversion { .. })),
            "{defects:?}"
        );
    }

    #[test]
    fn detects_precedence_violation() {
        let set = example2();
        let mut trace = Trace::new(2);
        // T1.1 released at 1 although T1.0 completes at 4.
        trace.push_release(job(1, 0, 0), t(0));
        trace.push_completion(job(1, 0, 0), t(4));
        trace.push_release(job(1, 1, 0), t(1));
        let with = validate_schedule(&set, &trace, true);
        assert!(with
            .iter()
            .any(|d| matches!(d, ScheduleDefect::PrecedenceViolation { .. })));
        let without = validate_schedule(&set, &trace, false);
        assert!(!without
            .iter()
            .any(|d| matches!(d, ScheduleDefect::PrecedenceViolation { .. })));
    }

    #[test]
    fn faulted_engine_schedules_are_quiescent_during_outages() {
        use crate::faults::{CrashWindow, FaultConfig};
        let windows = vec![
            Vec::new(),
            vec![CrashWindow {
                at: t(5),
                restart_delay: Dur::from_ticks(10),
            }],
        ];
        let set = example2();
        for protocol in Protocol::ALL {
            let out = simulate(
                &set,
                &SimConfig::new(protocol)
                    .with_instances(15)
                    .with_trace()
                    .with_faults(FaultConfig::explicit(windows.clone())),
            )
            .unwrap();
            let defects = validate_fault_quiescence(&set, out.trace.as_ref().unwrap(), &windows);
            assert!(defects.is_empty(), "{protocol:?}: {defects:?}");
        }
    }

    #[test]
    fn detects_activity_while_down() {
        use crate::faults::CrashWindow;
        let set = example2();
        let windows = vec![
            Vec::new(),
            vec![CrashWindow {
                at: t(5),
                restart_delay: Dur::from_ticks(10),
            }],
        ];
        let mut trace = Trace::new(2);
        // T1.1 lives on P1, which is down over [5, 15): a release at 7 and
        // a slice [6, 8) are both outage activity.
        trace.push_release(job(1, 1, 0), t(7));
        trace.push_slice(
            ProcessorId::new(1),
            ExecutedSlice {
                job: job(1, 1, 0),
                start: t(6),
                end: t(8),
            },
        );
        let defects = validate_fault_quiescence(&set, &trace, &windows);
        assert_eq!(defects.len(), 2, "{defects:?}");
        assert!(defects
            .iter()
            .all(|d| matches!(d, ScheduleDefect::ActivityWhileDown { .. })));

        // The same activity shifted after recovery is clean.
        let mut trace = Trace::new(2);
        trace.push_release(job(1, 1, 0), t(15));
        trace.push_slice(
            ProcessorId::new(1),
            ExecutedSlice {
                job: job(1, 1, 0),
                start: t(15),
                end: t(17),
            },
        );
        assert!(validate_fault_quiescence(&set, &trace, &windows).is_empty());
    }

    #[test]
    fn partitioned_engine_schedules_show_no_cross_cut_release() {
        use crate::faults::{FaultConfig, PartitionSchedule, PartitionWindow};
        let set = example2();
        let windows = vec![PartitionWindow {
            at: t(8),
            heal_delay: Dur::from_ticks(30),
            island: vec![0],
        }];
        for protocol in [
            Protocol::DirectSync,
            Protocol::ReleaseGuard,
            Protocol::ModifiedPhaseModification,
        ] {
            let out = simulate(
                &set,
                &SimConfig::new(protocol)
                    .with_instances(15)
                    .with_trace()
                    .with_faults(
                        FaultConfig::explicit(vec![Vec::new(), Vec::new()])
                            .with_partitions(PartitionSchedule::Explicit(windows.clone())),
                    ),
            )
            .unwrap();
            let defects =
                validate_partition_quiescence(&set, out.trace.as_ref().unwrap(), &windows);
            assert!(defects.is_empty(), "{protocol:?}: {defects:?}");
        }
    }

    #[test]
    fn detects_cross_partition_release() {
        use crate::faults::PartitionWindow;
        let set = example2();
        let windows = vec![PartitionWindow {
            at: t(8),
            heal_delay: Dur::from_ticks(30),
            island: vec![0],
        }];
        // T1.0 (P0) completes at 10, inside the cut; T1.1 (P1) released at
        // 12 — the signal could not have crossed.
        let mut trace = Trace::new(2);
        trace.push_release(job(1, 0, 0), t(0));
        trace.push_completion(job(1, 0, 0), t(10));
        trace.push_release(job(1, 1, 0), t(12));
        let defects = validate_partition_quiescence(&set, &trace, &windows);
        assert_eq!(defects.len(), 1, "{defects:?}");
        assert!(matches!(
            defects[0],
            ScheduleDefect::CrossPartitionRelease { .. }
        ));
        // A completion before the cut opened is legitimate: the signal was
        // already in flight (or applied) when the partition started.
        let mut trace = Trace::new(2);
        trace.push_release(job(1, 0, 0), t(0));
        trace.push_completion(job(1, 0, 0), t(5));
        trace.push_release(job(1, 1, 0), t(12));
        assert!(validate_partition_quiescence(&set, &trace, &windows).is_empty());
    }

    #[test]
    fn defect_displays_are_informative() {
        let seg = Segment {
            processor: ProcessorId::new(0),
            job: job(0, 0, 0),
            start: t(0),
            end: t(2),
        };
        let samples: Vec<ScheduleDefect> = vec![
            ScheduleDefect::Overlap {
                first: seg,
                second: seg,
            },
            ScheduleDefect::WrongBudget {
                job: job(0, 0, 0),
                executed: Dur::from_ticks(1),
                budget: Dur::from_ticks(2),
            },
            ScheduleDefect::OutsideWindow {
                job: job(0, 0, 0),
                segment: seg,
            },
            ScheduleDefect::DishonestCompletion {
                job: job(0, 0, 0),
                recorded: t(5),
                last_slice_end: t(2),
            },
            ScheduleDefect::PriorityInversion {
                running: job(1, 0, 0),
                waiting: job(0, 0, 0),
                at: t(0),
            },
            ScheduleDefect::PrecedenceViolation {
                job: job(1, 1, 0),
                released: t(1),
                predecessor_completed: Some(t(4)),
            },
            ScheduleDefect::ActivityWhileDown {
                job: job(1, 1, 0),
                at: t(7),
                window: crate::faults::CrashWindow {
                    at: t(5),
                    restart_delay: Dur::from_ticks(10),
                },
            },
            ScheduleDefect::CrossPartitionRelease {
                job: job(1, 1, 0),
                released: t(12),
                predecessor_completed: t(10),
            },
        ];
        for d in samples {
            assert!(!d.to_string().is_empty());
        }
    }
}
