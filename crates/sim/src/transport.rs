//! Endpoint-driven reliable signal transport: sequence numbers, acks,
//! retransmission timers and receive-side deduplication.
//!
//! The channel model ([`crate::nonideal::channel`]) prices the wire; this
//! module prices the *endpoints*. Under the legacy oracle mode a dropped
//! signal is retransmitted by the channel itself after a fixed delay — the
//! protocols never notice. With a [`TransportConfig`] attached
//! ([`SimConfig::with_transport`]) every cross-processor sync signal
//! becomes a numbered frame:
//!
//! * the **sender** keeps the frame in an in-flight window, arms a
//!   retransmission timer (configurable timeout, exponential backoff with
//!   a cap, bounded or unbounded retry budget) and retransmits until the
//!   receiver's ack arrives or the budget is exhausted;
//! * the **receiver** acks every copy it sees and deduplicates payloads by
//!   sequence number, so retransmissions and channel-injected duplicates
//!   release nothing twice;
//! * a frame whose budget runs out is **abandoned**: the engine records a
//!   `SignalLost` violation and resolves the doomed chain instance, so
//!   bounded-budget runs still terminate.
//!
//! [`TransportStats`] surfaces retransmissions, dup-acks, an RTT histogram
//! and the gave-up count; the per-pair failure detector that rides the
//! same endpoints lives in [`crate::detect`].
//!
//! [`SimConfig::with_transport`]: crate::engine::SimConfig::with_transport

use std::collections::{BTreeMap, BTreeSet};

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use rtsync_core::time::{Dur, Time};

use crate::detect::DetectorConfig;
use crate::histogram::EerHistogram;
use crate::job::JobId;

/// Retry rounds assumed when sizing the horizon for an *unbounded* retry
/// budget (the budget itself stays unbounded; this only pads the default
/// horizon so retransmission tails fit before the cutoff).
const UNBOUNDED_SLACK_ROUNDS: u32 = 32;

/// Endpoint transport parameters. Attach with
/// [`SimConfig::with_transport`]; `None` (the default) keeps the engine's
/// signal path bit-for-bit identical to the legacy code.
///
/// [`SimConfig::with_transport`]: crate::engine::SimConfig::with_transport
#[derive(Clone, Debug)]
pub struct TransportConfig {
    /// Initial retransmission timeout: how long the sender waits for an
    /// ack before resending a frame.
    pub timeout: Dur,
    /// Backoff multiplier applied to the timeout after every retry
    /// (`timeout · backoff^attempt`, capped at [`TransportConfig::max_timeout`]).
    pub backoff: u32,
    /// Hard cap on any single retransmission timeout.
    pub max_timeout: Dur,
    /// Retransmissions allowed per frame before the sender gives up;
    /// `None` retries forever (no signal is ever abandoned).
    pub retry_budget: Option<u32>,
    /// Latency of an ack on its way back to the sender.
    pub ack_latency: Dur,
    /// Probability that an ack is lost on the way back (the data frame's
    /// drop probability comes from the channel model).
    pub ack_drop_probability: f64,
    /// Seed of the transport's private generator (ack drops).
    pub seed: u64,
    /// Heartbeat failure detection (and the graceful-degradation
    /// controller it drives); `None` runs the reliable transport alone.
    pub detector: Option<DetectorConfig>,
}

impl TransportConfig {
    /// A transport with the given initial timeout: backoff ×2 capped at
    /// `8 · timeout`, unbounded retries, instantaneous loss-free acks, no
    /// failure detector.
    pub fn new(timeout: Dur) -> TransportConfig {
        assert!(timeout.is_positive(), "transport timeout must be positive");
        TransportConfig {
            timeout,
            backoff: 2,
            max_timeout: Dur::from_ticks(timeout.ticks().saturating_mul(8)),
            retry_budget: None,
            ack_latency: Dur::ZERO,
            ack_drop_probability: 0.0,
            seed: 0,
            detector: None,
        }
    }

    /// Sets the backoff multiplier and the timeout cap.
    pub fn with_backoff(mut self, backoff: u32, max_timeout: Dur) -> TransportConfig {
        assert!(backoff >= 1, "backoff multiplier must be at least 1");
        assert!(max_timeout >= self.timeout, "cap below the initial timeout");
        self.backoff = backoff;
        self.max_timeout = max_timeout;
        self
    }

    /// Bounds the retransmissions per frame (the frame is abandoned — and
    /// its chain instance lost — once the budget is spent).
    pub fn with_retry_budget(mut self, budget: u32) -> TransportConfig {
        self.retry_budget = Some(budget);
        self
    }

    /// Sets the ack return latency.
    pub fn with_ack_latency(mut self, latency: Dur) -> TransportConfig {
        self.ack_latency = latency;
        self
    }

    /// Drops each ack with probability `p` (the sender then retransmits a
    /// frame the receiver already has — a dup-ack follows).
    pub fn with_ack_drops(mut self, p: f64) -> TransportConfig {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.ack_drop_probability = p;
        self
    }

    /// Sets the seed of the transport's generator.
    pub fn with_seed(mut self, seed: u64) -> TransportConfig {
        self.seed = seed;
        self
    }

    /// Enables heartbeat failure detection (and, through it, the
    /// graceful-degradation controller).
    pub fn with_detector(mut self, detector: DetectorConfig) -> TransportConfig {
        self.detector = Some(detector);
        self
    }

    /// The retransmission timeout before attempt `attempt` (0-based):
    /// `timeout · backoff^attempt`, capped, and never below one tick (a
    /// zero timeout would respin the same instant forever).
    pub(crate) fn rto(&self, attempt: u32) -> Dur {
        let mult = (self.backoff as i64).saturating_pow(attempt.min(32));
        let ticks = self.timeout.ticks().saturating_mul(mult);
        Dur::from_ticks(ticks.min(self.max_timeout.ticks()).max(1))
    }

    /// Horizon padding for the retransmission worst case: every round can
    /// wait up to the capped timeout, plus the ack's return trip.
    pub(crate) fn horizon_slack(&self) -> Dur {
        let rounds = self.retry_budget.unwrap_or(UNBOUNDED_SLACK_ROUNDS) as i64 + 1;
        Dur::from_ticks(
            self.max_timeout
                .ticks()
                .saturating_mul(rounds)
                .saturating_add(self.ack_latency.ticks()),
        )
    }
}

/// Counters the endpoint transport accumulates over one run.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct TransportStats {
    /// Frames sent for the first time (one per cross-processor signal).
    pub sent: u64,
    /// Retransmissions (timer firings that resent a frame).
    pub retransmissions: u64,
    /// Unique frames delivered to an up receiver (payload applied).
    pub delivered: u64,
    /// Copies the receiver recognized (by sequence number) as already
    /// delivered — re-acked, payload suppressed.
    pub dup_deliveries: u64,
    /// Copies that reached a crashed receiver: no ack, the sender's timer
    /// covers the loss.
    pub receiver_down: u64,
    /// Acks received that closed an in-flight frame.
    pub acks: u64,
    /// Acks for frames no longer in flight (the first ack won).
    pub dup_acks: u64,
    /// Acks lost on the return path.
    pub acks_dropped: u64,
    /// Frames abandoned after the retry budget ran out.
    pub gave_up: u64,
    /// Send-to-ack round-trip times of closed frames.
    pub rtt: EerHistogram,
}

/// One unacked frame in the sender's window.
#[derive(Clone, Copy, Debug)]
pub(crate) struct InFlight {
    /// The successor release the frame requests.
    pub job: JobId,
    /// The sending processor.
    pub from: usize,
    /// First transmission instant (RTT baseline).
    pub first_sent: Time,
    /// Retransmissions so far (0 = only the original transmission).
    pub attempt: u32,
}

/// Per-run endpoint state: the sender windows, receiver dedup sets and
/// the transport counters.
#[derive(Debug)]
pub(crate) struct TransportState {
    pub(crate) cfg: TransportConfig,
    rng: StdRng,
    next_seq: u64,
    /// Unacked frames by sequence number.
    window: BTreeMap<u64, InFlight>,
    /// Receiver-side dedup: sequence numbers whose payload was applied
    /// (or swallowed by a crash after the ack — see the engine).
    delivered: BTreeSet<u64>,
    /// Last acked frame per flat *successor* index: `(first_sent,
    /// instance)`. Anchors MPM's degraded re-arming cadence.
    last_acked: Vec<Option<(Time, u64)>>,
    pub(crate) stats: TransportStats,
}

impl TransportState {
    pub(crate) fn new(cfg: TransportConfig, flat_len: usize) -> TransportState {
        TransportState {
            rng: StdRng::seed_from_u64(cfg.seed),
            cfg,
            next_seq: 0,
            window: BTreeMap::new(),
            delivered: BTreeSet::new(),
            last_acked: vec![None; flat_len],
            stats: TransportStats::default(),
        }
    }

    /// Frames currently unacked in the sender window — the telemetry
    /// layer's in-flight gauge.
    pub(crate) fn in_flight_count(&self) -> usize {
        self.window.len()
    }

    /// Opens a window entry for a fresh frame and returns its sequence
    /// number.
    pub(crate) fn register_send(&mut self, job: JobId, from: usize, now: Time) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.window.insert(
            seq,
            InFlight {
                job,
                from,
                first_sent: now,
                attempt: 0,
            },
        );
        self.stats.sent += 1;
        seq
    }

    /// The in-flight entry of `seq`, if it is still unacked.
    pub(crate) fn in_flight(&self, seq: u64) -> Option<&InFlight> {
        self.window.get(&seq)
    }

    /// Counts one more retransmission of `seq` and returns the new attempt
    /// number.
    pub(crate) fn bump_attempt(&mut self, seq: u64) -> u32 {
        let entry = self.window.get_mut(&seq).expect("frame in flight");
        entry.attempt += 1;
        self.stats.retransmissions += 1;
        entry.attempt
    }

    /// Abandons `seq` (budget exhausted) and returns the dead entry.
    pub(crate) fn give_up(&mut self, seq: u64) -> InFlight {
        self.stats.gave_up += 1;
        self.window.remove(&seq).expect("frame in flight")
    }

    /// Receiver side: is this copy the first of its frame? Marks the frame
    /// delivered either way (every copy is acked; only the first applies).
    pub(crate) fn on_deliver(&mut self, seq: u64) -> bool {
        if self.delivered.insert(seq) {
            self.stats.delivered += 1;
            true
        } else {
            self.stats.dup_deliveries += 1;
            false
        }
    }

    /// Draws whether the next ack is lost on the return path.
    pub(crate) fn ack_dropped(&mut self) -> bool {
        if self.cfg.ack_drop_probability > 0.0
            && self.rng.random_bool(self.cfg.ack_drop_probability)
        {
            self.stats.acks_dropped += 1;
            true
        } else {
            false
        }
    }

    /// Sender side: an ack for `seq` arrived. Returns the closed entry
    /// (recording its RTT) or `None` for a dup-ack.
    pub(crate) fn on_ack(&mut self, seq: u64, now: Time, fi: usize) -> Option<InFlight> {
        match self.window.remove(&seq) {
            Some(entry) => {
                self.stats.acks += 1;
                self.stats.rtt.record(now - entry.first_sent);
                self.last_acked[fi] = Some((entry.first_sent, entry.job.instance()));
                Some(entry)
            }
            None => {
                self.stats.dup_acks += 1;
                None
            }
        }
    }

    /// The last acked frame of flat successor `fi`: `(first_sent,
    /// instance)`.
    pub(crate) fn last_acked(&self, fi: usize) -> Option<(Time, u64)> {
        self.last_acked[fi]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtsync_core::task::{SubtaskId, TaskId};

    fn d(x: i64) -> Dur {
        Dur::from_ticks(x)
    }

    fn job(task: usize, instance: u64) -> JobId {
        JobId::new(SubtaskId::new(TaskId::new(task), 1), instance)
    }

    #[test]
    fn rto_backs_off_exponentially_under_a_cap() {
        let cfg = TransportConfig::new(d(10)).with_backoff(3, d(100));
        assert_eq!(cfg.rto(0), d(10));
        assert_eq!(cfg.rto(1), d(30));
        assert_eq!(cfg.rto(2), d(90));
        assert_eq!(cfg.rto(3), d(100), "capped");
        assert_eq!(cfg.rto(30), d(100), "stays capped without overflow");
    }

    #[test]
    fn rto_never_reaches_zero() {
        // A pathological 1-tick timeout with multiplier 1 must still move
        // time forward on every retry.
        let cfg = TransportConfig::new(d(1)).with_backoff(1, d(1));
        assert_eq!(cfg.rto(0), d(1));
        assert_eq!(cfg.rto(7), d(1));
    }

    #[test]
    fn window_round_trip_records_rtt_and_dedups() {
        let cfg = TransportConfig::new(d(5));
        let mut st = TransportState::new(cfg, 4);
        let seq = st.register_send(job(0, 3), 0, Time::from_ticks(10));
        assert_eq!(seq, 0);
        assert!(st.in_flight(seq).is_some());
        // First copy applies, a duplicate is recognized.
        assert!(st.on_deliver(seq));
        assert!(!st.on_deliver(seq));
        // The ack closes the window and records the RTT.
        let entry = st.on_ack(seq, Time::from_ticks(17), 2).expect("closed");
        assert_eq!(entry.job, job(0, 3));
        assert_eq!(st.stats.rtt.len(), 1);
        assert!(st.stats.rtt.quantile(1.0).unwrap() >= d(7));
        assert_eq!(st.last_acked(2), Some((Time::from_ticks(10), 3)));
        // A second ack for the same frame is a dup-ack.
        assert!(st.on_ack(seq, Time::from_ticks(18), 2).is_none());
        assert_eq!(st.stats.dup_acks, 1);
    }

    #[test]
    fn give_up_spends_the_budget() {
        let cfg = TransportConfig::new(d(5)).with_retry_budget(2);
        let mut st = TransportState::new(cfg, 1);
        let seq = st.register_send(job(0, 0), 1, Time::ZERO);
        assert_eq!(st.bump_attempt(seq), 1);
        assert_eq!(st.bump_attempt(seq), 2);
        let entry = st.give_up(seq);
        assert_eq!(entry.attempt, 2);
        assert_eq!(st.stats.gave_up, 1);
        assert!(st.in_flight(seq).is_none());
    }

    #[test]
    fn ack_drops_are_seeded() {
        let cfg = TransportConfig::new(d(5)).with_ack_drops(0.5).with_seed(9);
        let mut a = TransportState::new(cfg.clone(), 1);
        let mut b = TransportState::new(cfg, 1);
        let draws_a: Vec<bool> = (0..100).map(|_| a.ack_dropped()).collect();
        let draws_b: Vec<bool> = (0..100).map(|_| b.ack_dropped()).collect();
        assert_eq!(draws_a, draws_b);
        assert!(draws_a.iter().any(|&x| x));
        assert!(draws_a.iter().any(|&x| !x));
        assert_eq!(
            a.stats.acks_dropped,
            draws_a.iter().filter(|&&x| x).count() as u64
        );
    }

    #[test]
    fn horizon_slack_covers_the_budget() {
        let bounded = TransportConfig::new(d(10)).with_retry_budget(3);
        assert_eq!(bounded.horizon_slack(), d(80 * 4));
        let unbounded = TransportConfig::new(d(10)).with_ack_latency(d(5));
        assert_eq!(unbounded.horizon_slack(), d(80 * 33 + 5));
    }
}
