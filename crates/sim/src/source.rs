//! The external release process for first subtasks.
//!
//! The model of the paper: instances of each task's *first* subtask are
//! released by the environment at a minimum separation of one period. Two
//! source models:
//!
//! * [`SourceModel::Periodic`] — strictly periodic releases at
//!   `phase + m·period` (the paper's simulation setting);
//! * [`SourceModel::Sporadic`] — each release slips a deterministic
//!   pseudo-random extra delay after the minimum separation
//!   (`release_m = release_{m−1} + period + extra`). This is the setting
//!   that breaks the PM protocol (§3.1: PM "does not work correctly" when
//!   inter-release times exceed the period) while MPM and RG keep working —
//!   exercised by the jitter-injection tests and example.
//!
//! Extra delays come from a tiny inline SplitMix64 keyed by
//! `(seed, task, instance)`, so runs are reproducible without an RNG
//! dependency.

use rtsync_core::task::TaskId;
use rtsync_core::time::{Dur, Time};

/// How first-subtask releases are generated.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SourceModel {
    /// Strictly periodic: `phase + m·period`.
    Periodic,
    /// Sporadic: consecutive releases separated by
    /// `period + U{0..=max_extra}` ticks (deterministic in `seed`).
    Sporadic {
        /// Largest extra delay added after the minimum separation.
        max_extra: Dur,
        /// Seed for the deterministic delay sequence.
        seed: u64,
    },
}

impl SourceModel {
    /// The release time of instance `instance` (0-based) given the previous
    /// release time (`None` for instance 0).
    ///
    /// # Panics
    ///
    /// Panics if `prev` is inconsistent with `instance` (a previous release
    /// must exist exactly when `instance > 0`).
    pub fn release_time(
        &self,
        task: TaskId,
        period: Dur,
        phase: Time,
        instance: u64,
        prev: Option<Time>,
    ) -> Time {
        assert_eq!(
            instance > 0,
            prev.is_some(),
            "previous release must be given exactly for instances > 0"
        );
        match *self {
            SourceModel::Periodic => phase + period * (instance as i64),
            SourceModel::Sporadic { max_extra, seed } => {
                let extra = extra_delay(seed, task, instance, max_extra);
                match prev {
                    None => phase + extra,
                    Some(p) => p + period + extra,
                }
            }
        }
    }
}

/// Deterministic extra delay in `0..=max_extra`.
fn extra_delay(seed: u64, task: TaskId, instance: u64, max_extra: Dur) -> Dur {
    if !max_extra.is_positive() {
        return Dur::ZERO;
    }
    let h = splitmix64(seed ^ (task.index() as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ instance);
    Dur::from_ticks((h % (max_extra.ticks() as u64 + 1)) as i64)
}

/// SplitMix64 — tiny, well-mixed, dependency-free.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(x: i64) -> Time {
        Time::from_ticks(x)
    }

    fn d(x: i64) -> Dur {
        Dur::from_ticks(x)
    }

    #[test]
    fn periodic_releases() {
        let m = SourceModel::Periodic;
        let task = TaskId::new(0);
        assert_eq!(m.release_time(task, d(6), t(4), 0, None), t(4));
        assert_eq!(m.release_time(task, d(6), t(4), 1, Some(t(4))), t(10));
        assert_eq!(m.release_time(task, d(6), t(4), 3, Some(t(16))), t(22));
    }

    #[test]
    fn sporadic_separation_at_least_period() {
        let m = SourceModel::Sporadic {
            max_extra: d(5),
            seed: 42,
        };
        let task = TaskId::new(1);
        let mut prev = m.release_time(task, d(10), t(0), 0, None);
        assert!(prev >= t(0) && prev <= t(5));
        for i in 1..200 {
            let next = m.release_time(task, d(10), t(0), i, Some(prev));
            let gap = next - prev;
            assert!(gap >= d(10), "gap {gap} below the period at instance {i}");
            assert!(gap <= d(15), "gap {gap} above period + max_extra");
            prev = next;
        }
    }

    #[test]
    fn sporadic_is_deterministic_in_seed() {
        let a = SourceModel::Sporadic {
            max_extra: d(7),
            seed: 1,
        };
        let b = SourceModel::Sporadic {
            max_extra: d(7),
            seed: 1,
        };
        let c = SourceModel::Sporadic {
            max_extra: d(7),
            seed: 2,
        };
        let task = TaskId::new(3);
        let ra: Vec<Time> = (0..20)
            .scan(None, |prev, i| {
                let r = a.release_time(task, d(9), t(0), i, *prev);
                *prev = Some(r);
                Some(r)
            })
            .collect();
        let rb: Vec<Time> = (0..20)
            .scan(None, |prev, i| {
                let r = b.release_time(task, d(9), t(0), i, *prev);
                *prev = Some(r);
                Some(r)
            })
            .collect();
        let rc: Vec<Time> = (0..20)
            .scan(None, |prev, i| {
                let r = c.release_time(task, d(9), t(0), i, *prev);
                *prev = Some(r);
                Some(r)
            })
            .collect();
        assert_eq!(ra, rb);
        assert_ne!(ra, rc);
    }

    #[test]
    fn sporadic_with_zero_extra_is_periodic() {
        let m = SourceModel::Sporadic {
            max_extra: Dur::ZERO,
            seed: 9,
        };
        let task = TaskId::new(0);
        let mut prev = m.release_time(task, d(6), t(2), 0, None);
        assert_eq!(prev, t(2));
        for i in 1..5 {
            let next = m.release_time(task, d(6), t(2), i, Some(prev));
            assert_eq!(next - prev, d(6));
            prev = next;
        }
    }

    #[test]
    #[should_panic(expected = "previous release")]
    fn inconsistent_prev_panics() {
        let m = SourceModel::Periodic;
        let _ = m.release_time(TaskId::new(0), d(5), t(0), 1, None);
    }

    #[test]
    fn extra_delays_cover_the_range() {
        // Sanity: over many draws the extremes 0 and max both occur.
        let max = d(3);
        let mut seen = [false; 4];
        for i in 0..200 {
            let e = extra_delay(7, TaskId::new(0), i, max);
            seen[e.ticks() as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }
}
